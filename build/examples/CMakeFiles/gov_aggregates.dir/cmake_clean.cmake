file(REMOVE_RECURSE
  "CMakeFiles/gov_aggregates.dir/gov_aggregates.cpp.o"
  "CMakeFiles/gov_aggregates.dir/gov_aggregates.cpp.o.d"
  "gov_aggregates"
  "gov_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gov_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
