# Empty dependencies file for gov_aggregates.
# This may be replaced when dependencies are built.
