file(REMOVE_RECURSE
  "CMakeFiles/whynot_shell.dir/whynot_shell.cpp.o"
  "CMakeFiles/whynot_shell.dir/whynot_shell.cpp.o.d"
  "whynot_shell"
  "whynot_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whynot_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
