# Empty dependencies file for whynot_shell.
# This may be replaced when dependencies are built.
