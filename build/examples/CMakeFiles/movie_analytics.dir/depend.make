# Empty dependencies file for movie_analytics.
# This may be replaced when dependencies are built.
