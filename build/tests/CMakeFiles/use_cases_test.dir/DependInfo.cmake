
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/use_cases_test.cpp" "tests/CMakeFiles/use_cases_test.dir/use_cases_test.cpp.o" "gcc" "tests/CMakeFiles/use_cases_test.dir/use_cases_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_canonical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_whynot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
