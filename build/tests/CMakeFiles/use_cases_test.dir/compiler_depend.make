# Empty compiler generated dependencies file for use_cases_test.
# This may be replaced when dependencies are built.
