file(REMOVE_RECURSE
  "CMakeFiles/use_cases_test.dir/use_cases_test.cpp.o"
  "CMakeFiles/use_cases_test.dir/use_cases_test.cpp.o.d"
  "use_cases_test"
  "use_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
