# Empty compiler generated dependencies file for definition_conformance_test.
# This may be replaced when dependencies are built.
