file(REMOVE_RECURSE
  "CMakeFiles/definition_conformance_test.dir/definition_conformance_test.cpp.o"
  "CMakeFiles/definition_conformance_test.dir/definition_conformance_test.cpp.o.d"
  "definition_conformance_test"
  "definition_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/definition_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
