file(REMOVE_RECURSE
  "CMakeFiles/whynot_test.dir/whynot_test.cpp.o"
  "CMakeFiles/whynot_test.dir/whynot_test.cpp.o.d"
  "whynot_test"
  "whynot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whynot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
