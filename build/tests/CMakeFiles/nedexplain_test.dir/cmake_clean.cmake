file(REMOVE_RECURSE
  "CMakeFiles/nedexplain_test.dir/nedexplain_test.cpp.o"
  "CMakeFiles/nedexplain_test.dir/nedexplain_test.cpp.o.d"
  "nedexplain_test"
  "nedexplain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nedexplain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
