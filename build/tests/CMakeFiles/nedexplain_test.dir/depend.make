# Empty dependencies file for nedexplain_test.
# This may be replaced when dependencies are built.
