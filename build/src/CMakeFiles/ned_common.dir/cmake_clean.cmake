file(REMOVE_RECURSE
  "CMakeFiles/ned_common.dir/common/csv.cpp.o"
  "CMakeFiles/ned_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/ned_common.dir/common/rng.cpp.o"
  "CMakeFiles/ned_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/ned_common.dir/common/status.cpp.o"
  "CMakeFiles/ned_common.dir/common/status.cpp.o.d"
  "CMakeFiles/ned_common.dir/common/strings.cpp.o"
  "CMakeFiles/ned_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/ned_common.dir/common/timer.cpp.o"
  "CMakeFiles/ned_common.dir/common/timer.cpp.o.d"
  "libned_common.a"
  "libned_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
