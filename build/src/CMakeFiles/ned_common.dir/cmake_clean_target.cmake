file(REMOVE_RECURSE
  "libned_common.a"
)
