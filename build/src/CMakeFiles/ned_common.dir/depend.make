# Empty dependencies file for ned_common.
# This may be replaced when dependencies are built.
