file(REMOVE_RECURSE
  "CMakeFiles/ned_whynot.dir/whynot/compatible_finder.cpp.o"
  "CMakeFiles/ned_whynot.dir/whynot/compatible_finder.cpp.o.d"
  "CMakeFiles/ned_whynot.dir/whynot/ctuple.cpp.o"
  "CMakeFiles/ned_whynot.dir/whynot/ctuple.cpp.o.d"
  "CMakeFiles/ned_whynot.dir/whynot/unrenaming.cpp.o"
  "CMakeFiles/ned_whynot.dir/whynot/unrenaming.cpp.o.d"
  "libned_whynot.a"
  "libned_whynot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_whynot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
