# Empty dependencies file for ned_whynot.
# This may be replaced when dependencies are built.
