
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/whynot/compatible_finder.cpp" "src/CMakeFiles/ned_whynot.dir/whynot/compatible_finder.cpp.o" "gcc" "src/CMakeFiles/ned_whynot.dir/whynot/compatible_finder.cpp.o.d"
  "/root/repo/src/whynot/ctuple.cpp" "src/CMakeFiles/ned_whynot.dir/whynot/ctuple.cpp.o" "gcc" "src/CMakeFiles/ned_whynot.dir/whynot/ctuple.cpp.o.d"
  "/root/repo/src/whynot/unrenaming.cpp" "src/CMakeFiles/ned_whynot.dir/whynot/unrenaming.cpp.o" "gcc" "src/CMakeFiles/ned_whynot.dir/whynot/unrenaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
