file(REMOVE_RECURSE
  "libned_whynot.a"
)
