# Empty compiler generated dependencies file for ned_relational.
# This may be replaced when dependencies are built.
