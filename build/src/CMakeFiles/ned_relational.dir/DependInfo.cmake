
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/attribute.cpp" "src/CMakeFiles/ned_relational.dir/relational/attribute.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/attribute.cpp.o.d"
  "/root/repo/src/relational/database.cpp" "src/CMakeFiles/ned_relational.dir/relational/database.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/database.cpp.o.d"
  "/root/repo/src/relational/relation.cpp" "src/CMakeFiles/ned_relational.dir/relational/relation.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/relation.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/CMakeFiles/ned_relational.dir/relational/schema.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/schema.cpp.o.d"
  "/root/repo/src/relational/tuple.cpp" "src/CMakeFiles/ned_relational.dir/relational/tuple.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/tuple.cpp.o.d"
  "/root/repo/src/relational/value.cpp" "src/CMakeFiles/ned_relational.dir/relational/value.cpp.o" "gcc" "src/CMakeFiles/ned_relational.dir/relational/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
