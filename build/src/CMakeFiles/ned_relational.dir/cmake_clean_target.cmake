file(REMOVE_RECURSE
  "libned_relational.a"
)
