file(REMOVE_RECURSE
  "CMakeFiles/ned_relational.dir/relational/attribute.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/attribute.cpp.o.d"
  "CMakeFiles/ned_relational.dir/relational/database.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/database.cpp.o.d"
  "CMakeFiles/ned_relational.dir/relational/relation.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/relation.cpp.o.d"
  "CMakeFiles/ned_relational.dir/relational/schema.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/schema.cpp.o.d"
  "CMakeFiles/ned_relational.dir/relational/tuple.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/tuple.cpp.o.d"
  "CMakeFiles/ned_relational.dir/relational/value.cpp.o"
  "CMakeFiles/ned_relational.dir/relational/value.cpp.o.d"
  "libned_relational.a"
  "libned_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
