# Empty compiler generated dependencies file for ned_baseline.
# This may be replaced when dependencies are built.
