file(REMOVE_RECURSE
  "libned_baseline.a"
)
