file(REMOVE_RECURSE
  "CMakeFiles/ned_baseline.dir/baseline/whynot_baseline.cpp.o"
  "CMakeFiles/ned_baseline.dir/baseline/whynot_baseline.cpp.o.d"
  "libned_baseline.a"
  "libned_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
