file(REMOVE_RECURSE
  "CMakeFiles/ned_sql.dir/sql/ast.cpp.o"
  "CMakeFiles/ned_sql.dir/sql/ast.cpp.o.d"
  "CMakeFiles/ned_sql.dir/sql/binder.cpp.o"
  "CMakeFiles/ned_sql.dir/sql/binder.cpp.o.d"
  "CMakeFiles/ned_sql.dir/sql/lexer.cpp.o"
  "CMakeFiles/ned_sql.dir/sql/lexer.cpp.o.d"
  "CMakeFiles/ned_sql.dir/sql/parser.cpp.o"
  "CMakeFiles/ned_sql.dir/sql/parser.cpp.o.d"
  "libned_sql.a"
  "libned_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
