# Empty compiler generated dependencies file for ned_sql.
# This may be replaced when dependencies are built.
