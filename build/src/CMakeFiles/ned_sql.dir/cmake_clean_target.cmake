file(REMOVE_RECURSE
  "libned_sql.a"
)
