
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cpp" "src/CMakeFiles/ned_sql.dir/sql/ast.cpp.o" "gcc" "src/CMakeFiles/ned_sql.dir/sql/ast.cpp.o.d"
  "/root/repo/src/sql/binder.cpp" "src/CMakeFiles/ned_sql.dir/sql/binder.cpp.o" "gcc" "src/CMakeFiles/ned_sql.dir/sql/binder.cpp.o.d"
  "/root/repo/src/sql/lexer.cpp" "src/CMakeFiles/ned_sql.dir/sql/lexer.cpp.o" "gcc" "src/CMakeFiles/ned_sql.dir/sql/lexer.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/CMakeFiles/ned_sql.dir/sql/parser.cpp.o" "gcc" "src/CMakeFiles/ned_sql.dir/sql/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_canonical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
