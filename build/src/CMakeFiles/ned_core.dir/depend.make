# Empty dependencies file for ned_core.
# This may be replaced when dependencies are built.
