
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/answers.cpp" "src/CMakeFiles/ned_core.dir/core/answers.cpp.o" "gcc" "src/CMakeFiles/ned_core.dir/core/answers.cpp.o.d"
  "/root/repo/src/core/nedexplain.cpp" "src/CMakeFiles/ned_core.dir/core/nedexplain.cpp.o" "gcc" "src/CMakeFiles/ned_core.dir/core/nedexplain.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/ned_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/ned_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/suggest.cpp" "src/CMakeFiles/ned_core.dir/core/suggest.cpp.o" "gcc" "src/CMakeFiles/ned_core.dir/core/suggest.cpp.o.d"
  "/root/repo/src/core/tabq.cpp" "src/CMakeFiles/ned_core.dir/core/tabq.cpp.o" "gcc" "src/CMakeFiles/ned_core.dir/core/tabq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_whynot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
