file(REMOVE_RECURSE
  "libned_core.a"
)
