file(REMOVE_RECURSE
  "CMakeFiles/ned_core.dir/core/answers.cpp.o"
  "CMakeFiles/ned_core.dir/core/answers.cpp.o.d"
  "CMakeFiles/ned_core.dir/core/nedexplain.cpp.o"
  "CMakeFiles/ned_core.dir/core/nedexplain.cpp.o.d"
  "CMakeFiles/ned_core.dir/core/report.cpp.o"
  "CMakeFiles/ned_core.dir/core/report.cpp.o.d"
  "CMakeFiles/ned_core.dir/core/suggest.cpp.o"
  "CMakeFiles/ned_core.dir/core/suggest.cpp.o.d"
  "CMakeFiles/ned_core.dir/core/tabq.cpp.o"
  "CMakeFiles/ned_core.dir/core/tabq.cpp.o.d"
  "libned_core.a"
  "libned_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
