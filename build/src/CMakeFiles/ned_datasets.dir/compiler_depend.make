# Empty compiler generated dependencies file for ned_datasets.
# This may be replaced when dependencies are built.
