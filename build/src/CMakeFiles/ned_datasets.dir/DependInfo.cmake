
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/crime.cpp" "src/CMakeFiles/ned_datasets.dir/datasets/crime.cpp.o" "gcc" "src/CMakeFiles/ned_datasets.dir/datasets/crime.cpp.o.d"
  "/root/repo/src/datasets/gov.cpp" "src/CMakeFiles/ned_datasets.dir/datasets/gov.cpp.o" "gcc" "src/CMakeFiles/ned_datasets.dir/datasets/gov.cpp.o.d"
  "/root/repo/src/datasets/imdb.cpp" "src/CMakeFiles/ned_datasets.dir/datasets/imdb.cpp.o" "gcc" "src/CMakeFiles/ned_datasets.dir/datasets/imdb.cpp.o.d"
  "/root/repo/src/datasets/running_example.cpp" "src/CMakeFiles/ned_datasets.dir/datasets/running_example.cpp.o" "gcc" "src/CMakeFiles/ned_datasets.dir/datasets/running_example.cpp.o.d"
  "/root/repo/src/datasets/use_cases.cpp" "src/CMakeFiles/ned_datasets.dir/datasets/use_cases.cpp.o" "gcc" "src/CMakeFiles/ned_datasets.dir/datasets/use_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_whynot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_canonical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
