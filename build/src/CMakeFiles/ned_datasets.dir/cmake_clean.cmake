file(REMOVE_RECURSE
  "CMakeFiles/ned_datasets.dir/datasets/crime.cpp.o"
  "CMakeFiles/ned_datasets.dir/datasets/crime.cpp.o.d"
  "CMakeFiles/ned_datasets.dir/datasets/gov.cpp.o"
  "CMakeFiles/ned_datasets.dir/datasets/gov.cpp.o.d"
  "CMakeFiles/ned_datasets.dir/datasets/imdb.cpp.o"
  "CMakeFiles/ned_datasets.dir/datasets/imdb.cpp.o.d"
  "CMakeFiles/ned_datasets.dir/datasets/running_example.cpp.o"
  "CMakeFiles/ned_datasets.dir/datasets/running_example.cpp.o.d"
  "CMakeFiles/ned_datasets.dir/datasets/use_cases.cpp.o"
  "CMakeFiles/ned_datasets.dir/datasets/use_cases.cpp.o.d"
  "libned_datasets.a"
  "libned_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
