file(REMOVE_RECURSE
  "libned_datasets.a"
)
