file(REMOVE_RECURSE
  "CMakeFiles/ned_exec.dir/exec/evaluator.cpp.o"
  "CMakeFiles/ned_exec.dir/exec/evaluator.cpp.o.d"
  "CMakeFiles/ned_exec.dir/exec/lineage.cpp.o"
  "CMakeFiles/ned_exec.dir/exec/lineage.cpp.o.d"
  "libned_exec.a"
  "libned_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
