file(REMOVE_RECURSE
  "libned_exec.a"
)
