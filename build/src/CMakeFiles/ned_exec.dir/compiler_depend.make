# Empty compiler generated dependencies file for ned_exec.
# This may be replaced when dependencies are built.
