
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/condition.cpp" "src/CMakeFiles/ned_expr.dir/expr/condition.cpp.o" "gcc" "src/CMakeFiles/ned_expr.dir/expr/condition.cpp.o.d"
  "/root/repo/src/expr/expression.cpp" "src/CMakeFiles/ned_expr.dir/expr/expression.cpp.o" "gcc" "src/CMakeFiles/ned_expr.dir/expr/expression.cpp.o.d"
  "/root/repo/src/expr/satisfiability.cpp" "src/CMakeFiles/ned_expr.dir/expr/satisfiability.cpp.o" "gcc" "src/CMakeFiles/ned_expr.dir/expr/satisfiability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ned_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ned_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
