# Empty compiler generated dependencies file for ned_expr.
# This may be replaced when dependencies are built.
