file(REMOVE_RECURSE
  "CMakeFiles/ned_expr.dir/expr/condition.cpp.o"
  "CMakeFiles/ned_expr.dir/expr/condition.cpp.o.d"
  "CMakeFiles/ned_expr.dir/expr/expression.cpp.o"
  "CMakeFiles/ned_expr.dir/expr/expression.cpp.o.d"
  "CMakeFiles/ned_expr.dir/expr/satisfiability.cpp.o"
  "CMakeFiles/ned_expr.dir/expr/satisfiability.cpp.o.d"
  "libned_expr.a"
  "libned_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
