file(REMOVE_RECURSE
  "libned_expr.a"
)
