# Empty compiler generated dependencies file for ned_algebra.
# This may be replaced when dependencies are built.
