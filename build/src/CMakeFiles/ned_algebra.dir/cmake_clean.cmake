file(REMOVE_RECURSE
  "CMakeFiles/ned_algebra.dir/algebra/operator.cpp.o"
  "CMakeFiles/ned_algebra.dir/algebra/operator.cpp.o.d"
  "CMakeFiles/ned_algebra.dir/algebra/query_tree.cpp.o"
  "CMakeFiles/ned_algebra.dir/algebra/query_tree.cpp.o.d"
  "CMakeFiles/ned_algebra.dir/algebra/renaming.cpp.o"
  "CMakeFiles/ned_algebra.dir/algebra/renaming.cpp.o.d"
  "libned_algebra.a"
  "libned_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
