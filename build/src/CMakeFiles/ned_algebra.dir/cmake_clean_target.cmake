file(REMOVE_RECURSE
  "libned_algebra.a"
)
