file(REMOVE_RECURSE
  "libned_canonical.a"
)
