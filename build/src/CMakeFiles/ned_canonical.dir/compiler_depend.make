# Empty compiler generated dependencies file for ned_canonical.
# This may be replaced when dependencies are built.
