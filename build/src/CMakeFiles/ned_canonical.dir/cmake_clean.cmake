file(REMOVE_RECURSE
  "CMakeFiles/ned_canonical.dir/canonical/canonicalizer.cpp.o"
  "CMakeFiles/ned_canonical.dir/canonical/canonicalizer.cpp.o.d"
  "CMakeFiles/ned_canonical.dir/canonical/query_spec.cpp.o"
  "CMakeFiles/ned_canonical.dir/canonical/query_spec.cpp.o.d"
  "libned_canonical.a"
  "libned_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
