# Empty dependencies file for bench_scaling_dbsize.
# This may be replaced when dependencies are built.
