file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_dbsize.dir/bench_scaling_dbsize.cpp.o"
  "CMakeFiles/bench_scaling_dbsize.dir/bench_scaling_dbsize.cpp.o.d"
  "bench_scaling_dbsize"
  "bench_scaling_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
