file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_canonical.dir/bench_ablation_canonical.cpp.o"
  "CMakeFiles/bench_ablation_canonical.dir/bench_ablation_canonical.cpp.o.d"
  "bench_ablation_canonical"
  "bench_ablation_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
