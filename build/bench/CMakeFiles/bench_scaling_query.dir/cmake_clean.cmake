file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_query.dir/bench_scaling_query.cpp.o"
  "CMakeFiles/bench_scaling_query.dir/bench_scaling_query.cpp.o.d"
  "bench_scaling_query"
  "bench_scaling_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
