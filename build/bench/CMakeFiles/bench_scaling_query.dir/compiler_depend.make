# Empty compiler generated dependencies file for bench_scaling_query.
# This may be replaced when dependencies are built.
