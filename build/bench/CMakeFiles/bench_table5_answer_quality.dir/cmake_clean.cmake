file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_answer_quality.dir/bench_table5_answer_quality.cpp.o"
  "CMakeFiles/bench_table5_answer_quality.dir/bench_table5_answer_quality.cpp.o.d"
  "bench_table5_answer_quality"
  "bench_table5_answer_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_answer_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
