/// \file exec_limits_test.cpp
/// \brief Resource-governed execution: deadlines, budgets, cancellation,
/// deterministic fault injection and graceful partial answers.
///
/// The fault-injection sweep is the core of the robustness story: it probes how
/// many checkpoints a full run passes, then re-runs the engine failing each
/// checkpoint in turn, asserting every run still returns a sound (if
/// partial) result. Built with -DNED_SANITIZE=ON, ASan additionally proves
/// that no interruption point leaks.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/running_example.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;

// ---- ExecContext unit behaviour --------------------------------------------

TEST(ExecContext, UnconfiguredContextNeverTrips) {
  ExecContext ctx;
  for (int i = 0; i < 1000; ++i) NED_EXPECT_OK(ctx.CheckPoint());
  EXPECT_EQ(ctx.steps(), 1000u);
}

TEST(ExecContext, ExpiredDeadlineTrips) {
  ExecContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  Status st = ctx.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsResourceLimit(st));
}

TEST(ExecContext, RowBudgetTrips) {
  ExecContext ctx;
  ctx.set_row_budget(10);
  ctx.ChargeRows(10);
  NED_EXPECT_OK(ctx.CheckPoint());  // at the budget is still fine
  ctx.ChargeRows(1);
  Status st = ctx.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("row"), std::string::npos);
}

TEST(ExecContext, MemoryBudgetTrips) {
  ExecContext ctx;
  ctx.set_memory_budget(1024);
  ctx.ChargeBytes(2048);
  Status st = ctx.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("memory"), std::string::npos);
}

TEST(ExecContext, CancellationTrips) {
  ExecContext ctx;
  NED_EXPECT_OK(ctx.CheckPoint());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kCancelled);
}

TEST(ExecContext, InjectionIsDeterministic) {
  ExecContext ctx;
  ctx.InjectFailureAt(3);
  for (int round = 0; round < 2; ++round) {
    NED_EXPECT_OK(ctx.CheckPoint());
    NED_EXPECT_OK(ctx.CheckPoint());
    EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(ctx.steps(), 3u);
    ctx.ResetCounters();
  }
}

TEST(ExecContext, CheckEveryAmortizesTheFullCheck) {
  ExecContext ctx;
  ctx.RequestCancel();
  // The tick path only runs the full check every kCheckInterval calls, so
  // the pending cancellation is noticed exactly at the interval boundary.
  for (uint64_t i = 1; i < kCheckInterval; ++i) NED_EXPECT_OK(ctx.CheckEvery());
  EXPECT_EQ(ctx.CheckEvery().code(), StatusCode::kCancelled);
}

TEST(ExecContext, IsResourceLimitClassification) {
  EXPECT_TRUE(IsResourceLimit(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsResourceLimit(Status::ResourceExhausted("x")));
  EXPECT_TRUE(IsResourceLimit(Status::Cancelled("x")));
  EXPECT_FALSE(IsResourceLimit(Status::OK()));
  EXPECT_FALSE(IsResourceLimit(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsResourceLimit(Status::Internal("x")));
}

// ---- governed evaluation ---------------------------------------------------

/// Two `n`-row relations whose cross join has n*n rows: the pathological
/// workload early termination cannot save (every row is compatible).
Database MakeCrossJoinDb(int n) {
  Database db;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < n; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  return db;
}

TEST(ExecLimits, EvaluatorPropagatesDeadline) {
  Database db = MakeCrossJoinDb(200);
  QueryTree tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  ExecContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now());
  auto input = QueryInput::Build(tree, db, &ctx);
  if (input.ok()) {
    Evaluator evaluator(&tree, &*input, &ctx);
    auto out = evaluator.EvalAll();
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_EQ(input.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ExecLimits, PathologicalCrossJoinMeetsDeadline) {
  // 2000 x 2000 = 4M joined rows: far more work than 50 ms allows. The
  // governed run must come back quickly with a flagged partial answer, not
  // an error and not a multi-second stall.
  Database db = MakeCrossJoinDb(2000);
  QueryTree tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  // A compatible tuple exists, so early termination cannot skip the join:
  // the traversal has to materialise it -- until the deadline stops it.
  tc.Add("R.a", Value::Int(0));

  ExecContext ctx;
  ctx.set_deadline_after_ms(50);
  auto start = std::chrono::steady_clock::now();
  auto result = engine->Explain(WhyNotQuestion(tc), &ctx);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result->completeness.detail.empty());
  // Well under a second: the deadline plus at most kCheckInterval rows of
  // overshoot per loop (generous slack for sanitizer builds).
  EXPECT_LT(elapsed.count(), 1000);
}

TEST(ExecLimits, RowBudgetOnAggregateGivesPartial) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  ExecContext ctx;
  ctx.set_row_budget(5);  // the instance alone has 9 tuples
  auto result = engine->Explain(RunningExampleQuestionHomer(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kResourceExhausted);
  EXPECT_EQ(result->completeness.ctuples_finished, 0u);
}

TEST(ExecLimits, MemoryBudgetGivesPartial) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  ExecContext ctx;
  ctx.set_memory_budget(64);  // a single tuple estimate exceeds this
  auto result = engine->Explain(RunningExampleQuestionHomer(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kResourceExhausted);
}

TEST(ExecLimits, PreCancelledRunFinishesNothing) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  ExecContext ctx;
  ctx.RequestCancel();
  auto result = engine->Explain(RunningExampleQuestion(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kCancelled);
  EXPECT_EQ(result->completeness.ctuples_finished, 0u);
  EXPECT_TRUE(result->answer.empty());
}

TEST(ExecLimits, UngovernedAndUnlimitedRunsAgree) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  auto plain = engine->Explain(RunningExampleQuestion());
  ASSERT_TRUE(plain.ok());
  ExecContext ctx;  // installed but unlimited: must not change the answer
  auto governed = engine->Explain(RunningExampleQuestion(), &ctx);
  ASSERT_TRUE(governed.ok());

  EXPECT_TRUE(governed->completeness.complete);
  EXPECT_EQ(governed->completeness.ctuples_finished,
            governed->completeness.ctuples_total);
  EXPECT_EQ(governed->answer.ToString(engine->last_input()),
            plain->answer.ToString(engine->last_input()));
  EXPECT_GT(ctx.steps(), 0u);
  EXPECT_GT(ctx.rows_charged(), 0u);
}

TEST(ExecLimits, PartialReportRendersDegradation) {
  Database db = MakeCrossJoinDb(400);
  QueryTree tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("R.a", Value::Int(-1));
  WhyNotQuestion question{tc};

  ExecContext ctx;
  ctx.set_row_budget(50);
  auto result = engine->Explain(question, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->completeness.complete);
  std::string report = RenderExplainReport(*engine, question, *result);
  EXPECT_NE(report.find("PARTIAL RESULT"), std::string::npos);
  EXPECT_NE(report.find("Answer (partial):"), std::string::npos);
  std::string summary = result->completeness.ToString();
  EXPECT_NE(summary.find("partial"), std::string::npos);
  EXPECT_NE(summary.find("ResourceExhausted"), std::string::npos);
}

TEST(ExecLimits, BaselineHonoursLimits) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R, S WHERE R.k = S.k", db);
  auto baseline = WhyNotBaseline::Create(&tree, &db);
  ASSERT_TRUE(baseline.ok());
  CTuple tc;
  tc.Add("R.v", Value::Str("zzz"));

  ExecContext ctx;
  ctx.RequestCancel();
  auto result = baseline->Explain(WhyNotQuestion(tc), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->limit_status.code(), StatusCode::kCancelled);

  // Without limits the same context-carrying call completes normally.
  ExecContext free_ctx;
  auto full = baseline->Explain(WhyNotQuestion(tc), &free_ctx);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->complete);
}

// ---- deterministic fault-injection sweep -----------------------------------

/// Runs the engine with a failure injected at every checkpoint a clean run
/// passes, proving (a) no interruption point crashes or corrupts the result,
/// (b) partial answers are always subsets of the complete answer, and -- in
/// sanitizer builds -- (c) no interruption point leaks memory.
TEST(ExecLimits, FaultInjectionSweepNeverCorrupts) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  WhyNotQuestion question = RunningExampleQuestion();

  // Probe: learn the step space and the golden answer of a clean run.
  ExecContext probe;
  auto golden = engine->Explain(question, &probe);
  ASSERT_TRUE(golden.ok());
  ASSERT_TRUE(golden->completeness.complete);
  const uint64_t total_steps = probe.steps();
  ASSERT_GT(total_steps, 0u);
  std::set<std::string> golden_condensed;
  for (const OperatorNode* node : golden->answer.condensed) {
    golden_condensed.insert(node->name);
  }

  for (uint64_t step = 1; step <= total_steps; ++step) {
    SCOPED_TRACE("injected failure at checkpoint " + std::to_string(step));
    ExecContext ctx;
    ctx.InjectFailureAt(step);
    auto result = engine->Explain(question, &ctx);
    // Graceful degradation everywhere: an injected limit must never surface
    // as an error or crash.
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->completeness.complete);
    EXPECT_EQ(result->completeness.tripped, StatusCode::kResourceExhausted);
    EXPECT_NE(result->completeness.detail.find("injected"),
              std::string::npos);
    EXPECT_LE(result->completeness.ctuples_finished,
              result->completeness.ctuples_total);
    // Soundness: everything reported was genuinely established -- condensed
    // entries must be a subset of the complete run's, and every pointer must
    // be a live node of the tree.
    for (const OperatorNode* node : result->answer.condensed) {
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(golden_condensed.count(node->name), 1u)
          << "partial answer invented subquery " << node->name;
    }
    for (const auto& entry : result->answer.detailed) {
      ASSERT_NE(entry.subquery, nullptr);
    }
    for (const auto& part : result->per_ctuple) {
      if (!part.complete) {
        EXPECT_TRUE(IsResourceLimit(part.limit_status));
      }
    }
  }

  // Determinism: the same injection point yields the same partial answer.
  const uint64_t mid = (total_steps + 1) / 2;
  ExecContext a, b;
  a.InjectFailureAt(mid);
  b.InjectFailureAt(mid);
  auto ra = engine->Explain(question, &a);
  auto rb = engine->Explain(question, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->answer.detailed.size(), rb->answer.detailed.size());
  EXPECT_EQ(ra->completeness.ToString(), rb->completeness.ToString());
  EXPECT_EQ(a.steps(), b.steps());
}

// ---- fault injection under intra-query parallelism -------------------------

// The deterministic-injection contract must survive parallel evaluation:
// worker checkpoints never consume injection steps (injection is decided at
// coordinator fold points, in partition order), so the parallel step space is
// itself deterministic and every injected point still yields a sound partial
// answer with the same error surface as serial runs.
TEST(ExecLimits, ParallelFaultInjectionSweepNeverCorrupts) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  WhyNotQuestion question = RunningExampleQuestion();
  TaskPool pool(3);
  auto configure = [&pool](ExecContext* ctx) {
    ctx->set_parallelism(&pool, 4);
    ctx->set_parallel_min_rows(2);
  };

  // Probe the *parallel* step space (fold-point checkpoints make it differ
  // from the serial one) and the golden answer of a clean parallel run.
  ExecContext probe;
  configure(&probe);
  auto golden = engine->Explain(question, &probe);
  ASSERT_TRUE(golden.ok());
  ASSERT_TRUE(golden->completeness.complete);
  const uint64_t total_steps = probe.steps();
  ASSERT_GT(total_steps, 0u);
  std::set<std::string> golden_condensed;
  for (const OperatorNode* node : golden->answer.condensed) {
    golden_condensed.insert(node->name);
  }

  for (uint64_t step = 1; step <= total_steps; ++step) {
    SCOPED_TRACE("parallel run, injected failure at checkpoint " +
                 std::to_string(step));
    ExecContext ctx;
    configure(&ctx);
    ctx.InjectFailureAt(step);
    auto result = engine->Explain(question, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->completeness.complete);
    EXPECT_EQ(result->completeness.tripped, StatusCode::kResourceExhausted);
    EXPECT_NE(result->completeness.detail.find("injected"), std::string::npos);
    for (const OperatorNode* node : result->answer.condensed) {
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(golden_condensed.count(node->name), 1u)
          << "partial parallel answer invented subquery " << node->name;
    }
    for (const auto& entry : result->answer.detailed) {
      ASSERT_NE(entry.subquery, nullptr);
    }
    // Determinism at partition granularity: the same injection point yields
    // the same partial answer and the same step count, every time.
    ExecContext again;
    configure(&again);
    again.InjectFailureAt(step);
    auto replay = engine->Explain(question, &again);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay->answer.detailed.size(), result->answer.detailed.size());
    EXPECT_EQ(replay->completeness.ToString(),
              result->completeness.ToString());
    EXPECT_EQ(again.steps(), ctx.steps());
  }
}

// The governed cross-join: a parallel run under the same deadline must also
// come back quickly with a flagged partial answer, and an *unlimited*
// parallel run must match the serial answer on a join big enough that every
// morsel path (scan slices, probe partitions) genuinely engages.
TEST(ExecLimits, ParallelCrossJoinMatchesSerialAndHonoursDeadline) {
  Database db = MakeCrossJoinDb(300);  // 90k joined rows
  QueryTree tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("R.a", Value::Int(-1));
  WhyNotQuestion question{tc};
  TaskPool pool(3);

  auto serial = engine->Explain(question);
  ASSERT_TRUE(serial.ok());
  const std::string serial_report =
      RenderExplainReport(*engine, question, *serial);

  ExecContext ctx;
  ctx.set_parallelism(&pool, 4);
  auto par = engine->Explain(question, &ctx);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(par->completeness.complete);
  EXPECT_EQ(RenderExplainReport(*engine, question, *par), serial_report);

  Database big = MakeCrossJoinDb(2000);
  QueryTree big_tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", big);
  auto big_engine = NedExplainEngine::Create(&big_tree, &big);
  ASSERT_TRUE(big_engine.ok());
  CTuple hit;
  hit.Add("R.a", Value::Int(0));
  ExecContext limited;
  limited.set_parallelism(&pool, 4);
  limited.set_deadline_after_ms(50);
  auto start = std::chrono::steady_clock::now();
  auto governed = big_engine->Explain(WhyNotQuestion(hit), &limited);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_FALSE(governed->completeness.complete);
  EXPECT_EQ(governed->completeness.tripped, StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 2000);
}

}  // namespace
}  // namespace ned
