/// \file property_test.cpp
/// \brief Randomized property tests: random chain/star queries over random
/// databases with random why-not questions, checking the framework's
/// invariants (Property 2.1, answer well-formedness, Alg. 2 neutrality,
/// evaluator lineage laws) across many seeds.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "core/nedexplain.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MustExplain;

/// A randomly generated workload: database, query tree, question.
struct Workload {
  std::shared_ptr<Database> db;
  std::shared_ptr<QueryTree> tree;
  WhyNotQuestion question;
};

/// Builds a random chain query R0 -> R1 -> ... with random selections and an
/// optional aggregation, plus a random why-not question over the output.
Workload MakeWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.db = std::make_shared<Database>();

  int n_relations = static_cast<int>(rng.UniformInt(1, 4));
  int rows = static_cast<int>(rng.UniformInt(5, 40));
  int domain = static_cast<int>(rng.UniformInt(2, 8));

  QueryBlock block;
  for (int i = 0; i < n_relations; ++i) {
    std::string name = "T" + std::to_string(i);
    Relation rel(name, Schema({{name, "id"},
                               {name, "k" + std::to_string(i)},
                               {name, "k" + std::to_string(i + 1)},
                               {name, "v"}}));
    for (int r = 0; r < rows; ++r) {
      rel.AddRow({Value::Int(r), Value::Int(rng.UniformInt(0, domain)),
                  Value::Int(rng.UniformInt(0, domain)),
                  Value::Int(rng.UniformInt(0, 5))});
    }
    NED_CHECK(w.db->AddRelation(std::move(rel)).ok());
    block.tables.push_back({name, name});
    if (i > 0) {
      std::string prev = "T" + std::to_string(i - 1);
      std::string key = "k" + std::to_string(i);
      block.joins.push_back(
          {Attribute(prev, key), Attribute(name, key), key + "j"});
    }
    if (rng.Chance(0.5)) {
      block.selections.push_back(
          Cmp(Col(name, "v"), rng.Chance(0.5) ? CompareOp::kGt : CompareOp::kLe,
              Lit(rng.UniformInt(0, 4))));
    }
  }
  std::string last = "T" + std::to_string(n_relations - 1);
  bool aggregate = rng.Chance(0.3);
  if (aggregate) {
    AggSpec agg;
    agg.group_by = {Attribute("T0", "v")};
    agg.calls.push_back({AggFn::kCount, Attribute(last, "id"), "cnt"});
    block.agg = agg;
    block.projection = {Attribute("T0", "v"), Attribute::Unqualified("cnt")};
  } else {
    block.projection = {Attribute("T0", "v"), Attribute(last, "id")};
  }
  auto tree = Canonicalize(QuerySpec{{block}, {}, {}}, *w.db);
  NED_CHECK_MSG(tree.ok(), tree.status().ToString());
  w.tree = std::make_shared<QueryTree>(std::move(tree).value());

  // Random question over the target type.
  CTuple tc;
  tc.Add("T0.v", Value::Int(rng.UniformInt(0, 5)));
  if (aggregate && rng.Chance(0.5)) {
    tc.AddVar("cnt", "x").Where("x", CompareOp::kGt,
                                Value::Int(rng.UniformInt(0, 3)));
  } else if (!aggregate && rng.Chance(0.5)) {
    tc.Add(last + ".id", Value::Int(rng.UniformInt(0, rows)));
  }
  w.question = WhyNotQuestion(std::move(tc));
  return w;
}

/// Every property failure must name its seed and how to rerun exactly that
/// workload (the gtest param suffix is the Range index, i.e. seed - 1).
std::string ReproNote(uint64_t seed) {
  std::ostringstream os;
  os << "failing seed " << seed
     << "; rerun only this workload with: build/tests/property_test "
        "--gtest_filter='Seeds/RandomWorkload.*/"
     << (seed - 1) << "'";
  return os.str();
}

class RandomWorkload : public ::testing::TestWithParam<uint64_t> {
 protected:
  RandomWorkload() { repro_trace_ = std::make_unique<::testing::ScopedTrace>(
      __FILE__, __LINE__, ReproNote(GetParam())); }

 private:
  std::unique_ptr<::testing::ScopedTrace> repro_trace_;
};

TEST_P(RandomWorkload, Property21EachDirTupleBlamedAtMostOnce) {
  Workload w = MakeWorkload(GetParam());
  auto result = MustExplain(*w.tree, *w.db, w.question);
  for (const auto& part : result.per_ctuple) {
    std::map<TupleId, const OperatorNode*> blamed;
    for (const auto& entry : part.answer.detailed) {
      if (entry.is_bottom()) continue;
      auto [it, inserted] = blamed.emplace(entry.dir_tuple, entry.subquery);
      EXPECT_TRUE(inserted || it->second == entry.subquery);
    }
  }
}

TEST_P(RandomWorkload, BlamedTuplesAreCompatibleAndNodesInTree) {
  Workload w = MakeWorkload(GetParam());
  auto result = MustExplain(*w.tree, *w.db, w.question);
  std::set<const OperatorNode*> nodes(w.tree->bottom_up().begin(),
                                      w.tree->bottom_up().end());
  for (const auto& part : result.per_ctuple) {
    for (const auto& entry : part.answer.detailed) {
      EXPECT_EQ(nodes.count(entry.subquery), 1u);
      if (!entry.is_bottom()) {
        EXPECT_EQ(part.compat.dir.count(entry.dir_tuple), 1u);
      }
    }
    for (const OperatorNode* node : part.answer.secondary) {
      EXPECT_EQ(nodes.count(node), 1u);
    }
  }
}

TEST_P(RandomWorkload, EarlyTerminationDoesNotChangeAnswers) {
  Workload w = MakeWorkload(GetParam());
  NedExplainOptions off;
  off.enable_early_termination = false;
  auto with = MustExplain(*w.tree, *w.db, w.question);
  auto without = MustExplain(*w.tree, *w.db, w.question, off);
  // Compare detailed answers as sets of (tuple, node-name) pairs.
  auto as_set = [](const NedExplainResult& r) {
    std::set<std::pair<TupleId, std::string>> out;
    for (const auto& e : r.answer.detailed) {
      out.emplace(e.dir_tuple, e.subquery->name);
    }
    return out;
  };
  EXPECT_EQ(as_set(with), as_set(without));
}

TEST_P(RandomWorkload, SurvivorsIffQuestionDataPresent) {
  // If compatible successors reach the root, the question's data must be
  // derivable -- i.e. there is a result tuple compatible with the c-tuple.
  Workload w = MakeWorkload(GetParam());
  auto engine = NedExplainEngine::Create(w.tree.get(), w.db.get());
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(w.question);
  ASSERT_TRUE(result.ok());

  auto input = QueryInput::Build(*w.tree, *w.db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(w.tree.get(), &*input);
  auto out = evaluator.EvalAll();
  ASSERT_TRUE(out.ok());

  for (const auto& part : result->per_ctuple) {
    if (part.survivors_at_root == 0) continue;
    // Some root tuple must carry only compatible lineage.
    std::unordered_set<TupleId> all = part.compat.all;
    bool found = false;
    for (const TraceTuple& t : **out) {
      if (BaseSetSubsetOf(t.lineage, all) &&
          BaseSetIntersects(t.lineage, part.compat.dir)) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(RandomWorkload, EvaluatorLineageLaws) {
  Workload w = MakeWorkload(GetParam());
  auto input = QueryInput::Build(*w.tree, *w.db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(w.tree.get(), &*input);
  ASSERT_TRUE(evaluator.EvalAll().ok());
  for (const OperatorNode* node : w.tree->bottom_up()) {
    const std::vector<TraceTuple>* out = evaluator.TryGetOutput(node);
    ASSERT_NE(out, nullptr);
    // Collect child rids for predecessor validation.
    std::unordered_set<Rid> child_rids;
    if (node->is_leaf()) {
      for (const TraceTuple& t : **input->AliasTuples(node->alias)) {
        child_rids.insert(t.rid);
      }
    } else {
      for (const auto& child : node->children) {
        for (const TraceTuple& t : *evaluator.TryGetOutput(child.get())) {
          child_rids.insert(t.rid);
        }
      }
    }
    std::unordered_set<Rid> seen_rids;
    for (const TraceTuple& t : *out) {
      EXPECT_TRUE(seen_rids.insert(t.rid).second) << "duplicate rid";
      EXPECT_FALSE(t.lineage.empty());
      EXPECT_TRUE(std::is_sorted(t.lineage.begin(), t.lineage.end()));
      if (!node->is_leaf()) {
        EXPECT_FALSE(t.preds.empty());
        for (Rid pred : t.preds) {
          EXPECT_EQ(child_rids.count(pred), 1u)
              << "predecessor not in child output";
        }
      }
      EXPECT_EQ(t.values.size(), node->output_schema.size());
    }
  }
}

TEST_P(RandomWorkload, UnrenamedQuestionsAreFullyQualified) {
  Workload w = MakeWorkload(GetParam());
  auto unrenamed = UnrenameQuestion(*w.tree, w.question);
  ASSERT_TRUE(unrenamed.ok());
  for (const CTuple& tc : unrenamed->ctuples()) {
    for (const auto& [attr, _] : tc.fields()) {
      // After unrenaming, every field is qualified or an aggregate output.
      if (!attr.qualified()) {
        EXPECT_EQ(attr.name, "cnt");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace ned
