/// \file expr_test.cpp
/// \brief Unit + property tests for expressions and condition satisfiability.

#include <gtest/gtest.h>

#include "expr/condition.h"
#include "expr/expression.h"
#include "expr/satisfiability.h"

namespace ned {
namespace {

Schema TestSchema() {
  return Schema({{"A", "name"}, {"A", "dob"}, {"B", "price"}});
}

Tuple Homer() {
  return Tuple({Value::Str("Homer"), Value::Int(-800), Value::Int(45)});
}

// ---- expression evaluation ------------------------------------------------------

TEST(Expression, ColumnRefResolves) {
  auto v = Col("A", "dob")->Eval(Homer(), TestSchema());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int(), -800);
}

TEST(Expression, ColumnRefUnknownAttributeErrors) {
  EXPECT_FALSE(Col("A", "zzz")->Eval(Homer(), TestSchema()).ok());
}

TEST(Expression, ComparisonEvaluatesToBooleanInt) {
  auto expr = Gt(Col("A", "dob"), Lit(static_cast<int64_t>(-800)));
  auto v = expr->Eval(Homer(), TestSchema());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int(), 0);  // -800 > -800 is false (the running example!)
}

TEST(Expression, ConjunctionShortCircuitsToFalse) {
  auto expr = And(Eq(Col("A", "name"), Lit("Homer")),
                  Gt(Col("B", "price"), Lit(static_cast<int64_t>(100))));
  auto b = expr->EvalBool(Homer(), TestSchema());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

TEST(Expression, DisjunctionAndNot) {
  auto expr = Or({Eq(Col("A", "name"), Lit("Nobody")),
                  Negate(Lt(Col("B", "price"), Lit(static_cast<int64_t>(10))))});
  auto b = expr->EvalBool(Homer(), TestSchema());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
}

TEST(Expression, EmptyConnectives) {
  EXPECT_TRUE(*And(std::vector<ExprPtr>{})->EvalBool(Homer(), TestSchema()));
  EXPECT_FALSE(*Or(std::vector<ExprPtr>{})->EvalBool(Homer(), TestSchema()));
}

TEST(Expression, CollectAttributes) {
  auto expr = And(Eq(Col("A", "name"), Lit("X")),
                  Lt(Col("B", "price"), Col("A", "dob")));
  std::vector<Attribute> attrs;
  expr->CollectAttributes(&attrs);
  EXPECT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].FullName(), "A.name");
}

TEST(Expression, ToStringIsReadable) {
  auto expr = Gt(Col("A", "dob"), Lit(static_cast<int64_t>(-800)));
  EXPECT_EQ(expr->ToString(), "A.dob > -800");
  EXPECT_EQ(Lit("Homer")->ToString(), "'Homer'");
}

TEST(Expression, NullComparesFalse) {
  Schema schema({{"R", "x"}});
  Tuple with_null({Value::Null()});
  auto b = Eq(Col("R", "x"), Lit(static_cast<int64_t>(1)))
               ->EvalBool(with_null, schema);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

// ---- condition rendering ----------------------------------------------------------

TEST(Condition, ToString) {
  std::vector<CPred> cond = {
      CPred::VsConst("x1", CompareOp::kGt, Value::Int(25)),
      CPred::VsVar("x1", CompareOp::kNe, "x2")};
  EXPECT_EQ(ConditionToString(cond), "x1 > 25 AND x1 != x2");
  EXPECT_EQ(ConditionToString({}), "true");
}

// ---- satisfiability ---------------------------------------------------------------

std::map<std::string, Value> Bind(
    std::initializer_list<std::pair<const char*, Value>> pairs) {
  std::map<std::string, Value> out;
  for (const auto& [k, v] : pairs) out.emplace(k, v);
  return out;
}

TEST(Satisfiability, EmptyConditionAlwaysHolds) {
  EXPECT_TRUE(SatisfiableWith({}, {}));
  EXPECT_TRUE(SatisfiableWith({}, Bind({{"x", Value::Int(1)}})));
}

TEST(Satisfiability, GroundPredicatesChecked) {
  std::vector<CPred> cond = {CPred::VsConst("x", CompareOp::kGt, Value::Int(25))};
  EXPECT_TRUE(SatisfiableWith(cond, Bind({{"x", Value::Int(30)}})));
  EXPECT_FALSE(SatisfiableWith(cond, Bind({{"x", Value::Int(25)}})));
}

TEST(Satisfiability, FreeVariableExistential) {
  // Ex. 2.3: "there exists a value for x1 satisfying x1 > 25".
  std::vector<CPred> cond = {CPred::VsConst("x1", CompareOp::kGt, Value::Int(25))};
  EXPECT_TRUE(SatisfiableWith(cond, {}));
}

TEST(Satisfiability, FreeVariableIntervalContradiction) {
  std::vector<CPred> cond = {
      CPred::VsConst("x", CompareOp::kGt, Value::Int(10)),
      CPred::VsConst("x", CompareOp::kLt, Value::Int(5))};
  EXPECT_FALSE(SatisfiableWith(cond, {}));
}

TEST(Satisfiability, OpenIntervalFeasibleOnDenseDomain) {
  // 5 < x < 6 has solutions over a dense domain.
  std::vector<CPred> cond = {
      CPred::VsConst("x", CompareOp::kGt, Value::Int(5)),
      CPred::VsConst("x", CompareOp::kLt, Value::Int(6))};
  EXPECT_TRUE(SatisfiableWith(cond, {}));
}

TEST(Satisfiability, PointIntervalRespectsDisequality) {
  std::vector<CPred> cond = {
      CPred::VsConst("x", CompareOp::kGe, Value::Int(5)),
      CPred::VsConst("x", CompareOp::kLe, Value::Int(5)),
      CPred::VsConst("x", CompareOp::kNe, Value::Int(5))};
  EXPECT_FALSE(SatisfiableWith(cond, {}));
  // Without the pinch, the disequality is harmless.
  EXPECT_TRUE(SatisfiableWith({cond[0], cond[2]}, {}));
}

TEST(Satisfiability, EqualityBindsAndPropagates) {
  std::vector<CPred> cond = {
      CPred::VsConst("x", CompareOp::kEq, Value::Int(7)),
      CPred::VsConst("x", CompareOp::kGt, Value::Int(5))};
  EXPECT_TRUE(SatisfiableWith(cond, {}));
  cond[1] = CPred::VsConst("x", CompareOp::kGt, Value::Int(7));
  EXPECT_FALSE(SatisfiableWith(cond, {}));
}

TEST(Satisfiability, VariableEqualityUnification) {
  std::vector<CPred> cond = {
      CPred::VsVar("x", CompareOp::kEq, "y"),
      CPred::VsConst("y", CompareOp::kGt, Value::Int(10))};
  EXPECT_TRUE(SatisfiableWith(cond, Bind({{"x", Value::Int(11)}})));
  EXPECT_FALSE(SatisfiableWith(cond, Bind({{"x", Value::Int(9)}})));
}

TEST(Satisfiability, ConflictingBindingsInOneClass) {
  std::vector<CPred> cond = {CPred::VsVar("x", CompareOp::kEq, "y")};
  EXPECT_FALSE(SatisfiableWith(
      cond, Bind({{"x", Value::Int(1)}, {"y", Value::Int(2)}})));
  EXPECT_TRUE(SatisfiableWith(
      cond, Bind({{"x", Value::Int(1)}, {"y", Value::Int(1)}})));
}

TEST(Satisfiability, FreeVarVarInequalityChains) {
  // x < y with y bound: x gets an upper bound.
  std::vector<CPred> cond = {
      CPred::VsVar("x", CompareOp::kLt, "y"),
      CPred::VsConst("x", CompareOp::kGt, Value::Int(10))};
  EXPECT_TRUE(SatisfiableWith(cond, Bind({{"y", Value::Int(12)}})));
  EXPECT_FALSE(SatisfiableWith(cond, Bind({{"y", Value::Int(10)}})));
}

TEST(Satisfiability, TransitiveBoundPropagation) {
  // a < b, b < c, c bound to 5, a > 5 -> unsat.
  std::vector<CPred> cond = {
      CPred::VsVar("a", CompareOp::kLt, "b"),
      CPred::VsVar("b", CompareOp::kLt, "c"),
      CPred::VsConst("a", CompareOp::kGt, Value::Int(5))};
  EXPECT_FALSE(SatisfiableWith(cond, Bind({{"c", Value::Int(5)}})));
  EXPECT_TRUE(SatisfiableWith(cond, Bind({{"c", Value::Int(100)}})));
}

TEST(Satisfiability, DisequalityBetweenFreeVariablesIsFree) {
  std::vector<CPred> cond = {CPred::VsVar("x", CompareOp::kNe, "y")};
  EXPECT_TRUE(SatisfiableWith(cond, {}));
}

TEST(Satisfiability, StringConditions) {
  // Ex. 2.1's second c-tuple: x2 != Homer AND x2 != Sophocles.
  std::vector<CPred> cond = {
      CPred::VsConst("x2", CompareOp::kNe, Value::Str("Homer")),
      CPred::VsConst("x2", CompareOp::kNe, Value::Str("Sophocles"))};
  EXPECT_TRUE(SatisfiableWith(cond, {}));
  EXPECT_FALSE(SatisfiableWith(cond, Bind({{"x2", Value::Str("Homer")}})));
  EXPECT_TRUE(SatisfiableWith(cond, Bind({{"x2", Value::Str("Euripides")}})));
}

TEST(Satisfiability, MixedTypeBoundsAreContradictory) {
  std::vector<CPred> cond = {
      CPred::VsConst("x", CompareOp::kGt, Value::Int(5)),
      CPred::VsConst("x", CompareOp::kLt, Value::Str("zzz"))};
  EXPECT_FALSE(SatisfiableWith(cond, {}));
}

TEST(EvaluateGround, RequiresFullBinding) {
  std::vector<CPred> cond = {CPred::VsConst("x", CompareOp::kGt, Value::Int(5))};
  EXPECT_FALSE(EvaluateGround(cond, {}));  // unbound: not existential here
  EXPECT_TRUE(EvaluateGround(cond, Bind({{"x", Value::Int(6)}})));
  EXPECT_FALSE(EvaluateGround(cond, Bind({{"x", Value::Int(5)}})));
}

// ---- parameterized: evaluation agrees with satisfiability on full bindings ----

class GroundVsSatisfiable
    : public ::testing::TestWithParam<std::tuple<int, int, CompareOp>> {};

TEST_P(GroundVsSatisfiable, FullBindingMakesThemAgree) {
  auto [x, c, op] = GetParam();
  std::vector<CPred> cond = {CPred::VsConst("x", op, Value::Int(c))};
  auto binding = Bind({{"x", Value::Int(x)}});
  EXPECT_EQ(SatisfiableWith(cond, binding), EvaluateGround(cond, binding));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroundVsSatisfiable,
    ::testing::Combine(::testing::Values(-1, 0, 1, 5),
                       ::testing::Values(0, 5),
                       ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe)));

}  // namespace
}  // namespace ned
