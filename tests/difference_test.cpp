/// \file difference_test.cpp
/// \brief Tests for the set-difference extension (the paper's Sec. 5 future
/// work): evaluation semantics, unrenaming through the left operand,
/// NedExplain pickiness at the difference node, and baseline gating.

#include <gtest/gtest.h>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "tests/test_util.h"
#include "whynot/unrenaming.h"

namespace ned {
namespace {

using testing::MustCompile;
using testing::MustEvaluate;
using testing::MustExplain;

Database MakeMembershipDb() {
  Database db;
  // All registered users vs banned users.
  NED_CHECK(db.LoadCsv("Users", "name\nalice\nbob\ncarol\n").ok());
  NED_CHECK(db.LoadCsv("Banned", "who\nbob\n").ok());
  return db;
}

TEST(Difference, EvaluatesAntiSemantics) {
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  EXPECT_EQ(tree.root()->kind, OpKind::kDifference);
  auto out = MustEvaluate(tree, db);
  EXPECT_EQ(testing::Column(out, tree.target_type(), "name"),
            (std::vector<std::string>{"alice", "carol"}));
}

TEST(Difference, OutputLineageComesFromTheLeft) {
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  auto out = evaluator.EvalAll();
  ASSERT_TRUE(out.ok());
  for (const TraceTuple& t : **out) {
    ASSERT_EQ(t.lineage.size(), 1u);
    EXPECT_EQ(input->AliasOfId(t.lineage[0]), "Users");
  }
}

TEST(Difference, ValueEqualLeftTuplesMerge) {
  Database db;
  NED_CHECK(db.LoadCsv("L", "v\nx\nx\ny\n").ok());
  NED_CHECK(db.LoadCsv("R", "v\ny\n").ok());
  QueryTree tree = MustCompile(
      "SELECT L.v FROM L EXCEPT SELECT R.v FROM R", db);
  auto out = MustEvaluate(tree, db);
  ASSERT_EQ(out.size(), 1u);  // both x rows merge; y eliminated
  EXPECT_EQ(out[0].lineage.size(), 2u);
}

TEST(Difference, SchemaRequiresAlignedTypes) {
  Database db;
  NED_CHECK(db.LoadCsv("L", "a,b\n1,2\n").ok());
  NED_CHECK(db.LoadCsv("R", "c\n1\n").ok());
  EXPECT_FALSE(
      CompileSql("SELECT L.a, L.b FROM L EXCEPT SELECT R.c FROM R", db).ok());
}

TEST(Difference, UnrenamingDescendsLeftOnly) {
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  CTuple tc;
  tc.Add("name", Value::Str("bob"));
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("Users.name")), nullptr);
  EXPECT_EQ((*out)[0].Find(Attribute::Parse("Banned.who")), nullptr);
}

TEST(Difference, NedExplainBlamesTheDifferenceNode) {
  // Why is bob not in the result? He exists in Users but is eliminated by a
  // Banned counterpart: the difference node is picky for him.
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  CTuple tc;
  tc.Add("name", Value::Str("bob"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kDifference);
  EXPECT_FALSE(result.answer.detailed[0].is_bottom());
}

TEST(Difference, SurvivingQuestionYieldsNoAnswer) {
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  CTuple tc;
  tc.Add("name", Value::Str("alice"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.detailed.empty());
  EXPECT_GT(result.per_ctuple[0].survivors_at_root, 0u);
}

TEST(Difference, BlockedBelowTheDifferenceIsStillLocalised) {
  // bob is filtered on the left side before the difference: the selection is
  // blamed, not the difference.
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users WHERE Users.name != 'bob' "
      "EXCEPT SELECT Banned.who FROM Banned",
      db);
  CTuple tc;
  tc.Add("name", Value::Str("bob"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kSelect);
}

TEST(Difference, RightOperandIsNotASecondaryTerminator) {
  // The Banned data "dies" at the difference node by design; that must not
  // surface as a secondary answer.
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  CTuple tc;
  tc.Add("name", Value::Str("bob"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.secondary.empty());
}

TEST(Difference, BaselineReportsUnsupported) {
  Database db = MakeMembershipDb();
  QueryTree tree = MustCompile(
      "SELECT Users.name FROM Users EXCEPT SELECT Banned.who FROM Banned", db);
  auto baseline = WhyNotBaseline::Create(&tree, &db);
  ASSERT_TRUE(baseline.ok());
  CTuple tc;
  tc.Add("name", Value::Str("bob"));
  auto result = baseline->Explain(WhyNotQuestion(tc));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->supported);
  EXPECT_EQ(result->AnswerToString(), "n.a.");
}

TEST(Difference, ChainedSetOperations) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "v\n1\n2\n").ok());
  NED_CHECK(db.LoadCsv("B", "w\n3\n").ok());
  NED_CHECK(db.LoadCsv("C", "u\n2\n3\n").ok());
  // (A union B) except C = {1}.
  QueryTree tree = MustCompile(
      "SELECT A.v FROM A UNION SELECT B.w FROM B EXCEPT SELECT C.u FROM C",
      db);
  auto out = MustEvaluate(tree, db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.at(0).as_int(), 1);
  // Why-not for 2: the difference eliminated it.
  CTuple tc;
  tc.Add("v", Value::Int(2));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_FALSE(result.answer.detailed.empty());
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kDifference);
}

}  // namespace
}  // namespace ned
