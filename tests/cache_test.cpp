/// \file cache_test.cpp
/// \brief The snapshot-versioned provenance caches (src/cache/): key
/// normalization, byte-budget LRU eviction, fingerprint distinctness,
/// bit-identical warm replay, reload invalidation, the partial-answer
/// completeness gate, and a multi-client reload-never-stale race.
///
/// Built with -DNED_TSAN=ON the multi-client tests double as the
/// ThreadSanitizer audit of the cache mutexes and the Submit-path
/// answer-cache lookups racing catalog reloads.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "algebra/fingerprint.h"
#include "cache/answer_cache.h"
#include "cache/lru.h"
#include "cache/subtree_cache.h"
#include "canonical/canonicalizer.h"
#include "core/report.h"
#include "relational/catalog.h"
#include "service/service.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;

constexpr char kTinySql[] = "SELECT R.v FROM R, S WHERE R.k = S.k";

CTuple TinyQuestion() {
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  return tc;
}

/// MakeTinyDb with R's third row joining S (k=10 instead of 20), so the
/// why-not tuple R.v='c' *does* reach the root: the answer flips from "the
/// join is picky" to "survivors at root". Distinguishable content for the
/// staleness tests.
Database MakeTinyDbJoined() {
  Database db = MakeTinyDb();
  NED_CHECK(db.RemoveRelation("R").ok());
  NED_CHECK(db.LoadCsv("R", "id,k,v\n1,10,a\n2,10,b\n3,10,c\n").ok());
  return db;
}

/// CSV bodies matching MakeTinyDb's R and MakeTinyDbJoined's R, for
/// Catalog::ReloadCsv round trips.
constexpr char kTinyRCsv[] = "id,k,v\n1,10,a\n2,10,b\n3,20,c\n";
constexpr char kJoinedRCsv[] = "id,k,v\n1,10,a\n2,10,b\n3,10,c\n";

/// Ground-truth answer for kTinySql / TinyQuestion over `db`, computed
/// cache-free (the reference the cached paths must reproduce).
AnswerSummary ExpectedTinyAnswer(const Database& db) {
  QueryTree tree = MustCompile(kTinySql, db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  NED_CHECK_MSG(engine.ok(), engine.status().ToString());
  auto result = engine->Explain(TinyQuestion());
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  return SummarizeResult(*engine, *result);
}

/// Compares every answer-content field -- deliberately NOT the subtree-cache
/// counters, which describe the computation, not the answer.
void ExpectSameAnswer(const AnswerSummary& a, const AnswerSummary& b) {
  EXPECT_EQ(a.detailed, b.detailed);
  EXPECT_EQ(a.condensed, b.condensed);
  EXPECT_EQ(a.secondary, b.secondary);
  EXPECT_EQ(a.dir_total, b.dir_total);
  EXPECT_EQ(a.indir_total, b.indir_total);
  EXPECT_EQ(a.survivors_at_root, b.survivors_at_root);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completeness, b.completeness);
}

void ExpectBitIdentical(const std::vector<TraceTuple>& a,
                        const std::vector<TraceTuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rid, b[i].rid) << "row " << i;
    EXPECT_EQ(a[i].lineage, b[i].lineage) << "row " << i;
    EXPECT_EQ(a[i].preds, b[i].preds) << "row " << i;
    EXPECT_TRUE(a[i].values == b[i].values)
        << "row " << i << ": " << a[i].values.ToString() << " vs "
        << b[i].values.ToString();
  }
}

// ---- SQL normalization -----------------------------------------------------

TEST(NormalizeSql, CollapsesWhitespaceCaseAndTrailingSemicolon) {
  EXPECT_EQ(NormalizeSqlText("SELECT  R.v\n\tFROM R ;"),
            NormalizeSqlText("select r.v from r"));
  EXPECT_EQ(NormalizeSqlText("select r.v from r"), "select r.v from r");
}

TEST(NormalizeSql, StringLiteralsKeepCaseAndSpacing) {
  const std::string upper = NormalizeSqlText("SELECT R.v FROM R WHERE R.v = 'AB  c'");
  const std::string lower = NormalizeSqlText("SELECT R.v FROM R WHERE R.v = 'ab  c'");
  EXPECT_NE(upper, lower);
  EXPECT_NE(upper.find("'AB  c'"), std::string::npos);
}

TEST(NormalizeSql, DifferentQueriesStayDifferent) {
  EXPECT_NE(NormalizeSqlText("SELECT R.v FROM R"),
            NormalizeSqlText("SELECT R.k FROM R"));
}

// ---- byte-budget LRU -------------------------------------------------------

TEST(ByteBudgetLru, EvictsLeastRecentlyUsedUnderBytePressure) {
  // Each entry costs 1 (key) + 100 (value) + 64 (overhead) = 165; budget
  // fits exactly two.
  ByteBudgetLru<int> lru(2 * 165);
  lru.Put("a", 1, 100);
  lru.Put("b", 2, 100);
  ASSERT_TRUE(lru.Get("a").has_value());  // refresh: "b" is now the LRU
  lru.Put("c", 3, 100);
  EXPECT_FALSE(lru.Get("b").has_value());
  EXPECT_TRUE(lru.Get("a").has_value());
  EXPECT_TRUE(lru.Get("c").has_value());
  const LruStats s = lru.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, s.byte_budget);
}

TEST(ByteBudgetLru, RejectsValuesLargerThanTheWholeBudget) {
  ByteBudgetLru<int> lru(200);
  lru.Put("small", 1, 10);
  lru.Put("huge", 2, 10'000);  // must not flush "small" to fail anyway
  EXPECT_FALSE(lru.Get("huge").has_value());
  EXPECT_TRUE(lru.Get("small").has_value());
  EXPECT_EQ(lru.stats().rejected_oversized, 1u);
  EXPECT_EQ(lru.stats().evictions, 0u);
}

TEST(ByteBudgetLru, ZeroBudgetDisables) {
  ByteBudgetLru<int> lru(0);
  lru.Put("a", 1, 1);
  EXPECT_FALSE(lru.Get("a").has_value());
  EXPECT_EQ(lru.stats().entries, 0u);
  EXPECT_EQ(lru.stats().rejected_oversized, 1u);
}

TEST(ByteBudgetLru, ReplacingAKeyReleasesItsOldBytes) {
  ByteBudgetLru<int> lru(1 << 10);
  lru.Put("a", 1, 100);
  const size_t after_first = lru.bytes();
  lru.Put("a", 2, 100);
  EXPECT_EQ(lru.bytes(), after_first);
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.Get("a").value(), 2);
}

// ---- fingerprints: collisions by construction ------------------------------

TEST(Fingerprint, TypeTagsKeepIntAndStringLiteralsApart) {
  // Value::ToString renders both as "800"; the fingerprint must not.
  EXPECT_NE(FingerprintValue(Value::Int(800)), FingerprintValue(Value::Str("800")));
  EXPECT_NE(FingerprintValue(Value::Int(1)), FingerprintValue(Value::Real(1.0)));
  // Length prefix: no string payload can forge the separators.
  EXPECT_EQ(FingerprintValue(Value::Str("a")), "s:1:a");
}

TEST(Fingerprint, SameShapeDifferentConditionDiffer) {
  Database db = MakeTinyDb();
  auto fp = [&db](const std::string& sql) {
    auto ast = ParseSql(sql);
    NED_CHECK_MSG(ast.ok(), ast.status().ToString());
    auto spec = BindSql(*ast, db);
    NED_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto print = CanonicalFingerprint(*spec, db);
    NED_CHECK_MSG(print.ok(), print.status().ToString());
    return *print;
  };
  // Identical queries spelled differently: one fingerprint.
  EXPECT_EQ(fp("SELECT R.v FROM R WHERE R.k = 10"),
            fp("select  R.v  from R where R.k = 10"));
  // Same tree shape, different selection constant: distinct fingerprints.
  EXPECT_NE(fp("SELECT R.v FROM R WHERE R.k = 10"),
            fp("SELECT R.v FROM R WHERE R.k = 20"));
  // Same shape, different comparison op.
  EXPECT_NE(fp("SELECT R.v FROM R WHERE R.k = 10"),
            fp("SELECT R.v FROM R WHERE R.k > 10"));
  // Same shape, different projected attribute.
  EXPECT_NE(fp("SELECT R.v FROM R WHERE R.k = 10"),
            fp("SELECT R.id FROM R WHERE R.k = 10"));
}

// ---- subtree cache: warm replay is bit-identical ---------------------------

TEST(SubtreeCache, WarmEvaluationReplaysBitIdenticalRows) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(kTinySql, db);
  NED_ASSERT_OK_AND_MOVE(QueryInput input, QueryInput::Build(tree, db));

  // Reference: no cache at all.
  Evaluator off(&tree, &input);
  NED_ASSERT_OK_AND_MOVE(const std::vector<TraceTuple>* out_off, off.EvalAll());

  SubtreeCache cache(1 << 20);
  Evaluator cold(&tree, &input, nullptr, &cache);
  NED_ASSERT_OK_AND_MOVE(const std::vector<TraceTuple>* out_cold,
                         cold.EvalAll());
  EXPECT_EQ(cold.cache_hits(), 0u);
  EXPECT_GT(cold.cache_misses(), 0u);

  Evaluator warm(&tree, &input, nullptr, &cache);
  NED_ASSERT_OK_AND_MOVE(const std::vector<TraceTuple>* out_warm,
                         warm.EvalAll());
  EXPECT_EQ(warm.cache_misses(), 0u);
  EXPECT_GT(warm.cache_hits(), 0u);

  ExpectBitIdentical(*out_off, *out_cold);
  ExpectBitIdentical(*out_off, *out_warm);
}

TEST(SubtreeCache, RecompiledQuerySharesEntries) {
  // A second compilation of the same SQL is a different tree object with the
  // same structure; the fingerprint keys must line up.
  Database db = MakeTinyDb();
  QueryTree tree1 = MustCompile(kTinySql, db);
  QueryTree tree2 = MustCompile(kTinySql, db);
  SubtreeCache cache(1 << 20);

  NED_ASSERT_OK_AND_MOVE(QueryInput input1, QueryInput::Build(tree1, db));
  Evaluator cold(&tree1, &input1, nullptr, &cache);
  NED_EXPECT_OK(cold.EvalAll().status());

  NED_ASSERT_OK_AND_MOVE(QueryInput input2, QueryInput::Build(tree2, db));
  Evaluator warm(&tree2, &input2, nullptr, &cache);
  NED_ASSERT_OK_AND_MOVE(const std::vector<TraceTuple>* out_warm,
                         warm.EvalAll());
  EXPECT_EQ(warm.cache_misses(), 0u);
  EXPECT_GT(warm.cache_hits(), 0u);

  // Cache-free reference for the content check.
  NED_ASSERT_OK_AND_MOVE(QueryInput input_ref, QueryInput::Build(tree1, db));
  Evaluator ref(&tree1, &input_ref);
  NED_ASSERT_OK_AND_MOVE(const std::vector<TraceTuple>* out_ref, ref.EvalAll());
  ExpectBitIdentical(*out_ref, *out_warm);
}

TEST(SubtreeCache, TinyBudgetRejectsOversizedOutputs) {
  SubtreeCache cache(10);  // smaller than any entry's fixed overhead
  auto rows = std::make_shared<const std::vector<TraceTuple>>(
      std::vector<TraceTuple>(1));
  cache.Insert("k", rows);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().rejected_oversized, 1u);
}

TEST(SubtreeCache, EvictsUnderBytePressureAndClearDropsEverything) {
  SubtreeCache probe(1 << 20);
  auto one_row = std::make_shared<const std::vector<TraceTuple>>(
      std::vector<TraceTuple>(1));
  probe.Insert("k1", one_row);
  const size_t entry_cost = probe.stats().bytes;

  // Budget for exactly two such entries: the third insert evicts the oldest.
  SubtreeCache cache(2 * entry_cost);
  cache.Insert("k1", one_row);
  cache.Insert("k2", one_row);
  cache.Insert("k3", one_row);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_NE(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, cache.stats().byte_budget);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
}

// ---- engine-level warm repeat ----------------------------------------------

TEST(SubtreeCacheEngine, WarmRepeatProducesTheSameAnswerWithZeroMisses) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(kTinySql, db);
  SubtreeCache cache(1 << 20);
  NedExplainOptions opts;
  opts.subtree_cache = &cache;
  NED_ASSERT_OK_AND_MOVE(auto engine, NedExplainEngine::Create(&tree, &db, opts));

  NED_ASSERT_OK_AND_MOVE(NedExplainResult cold, engine.Explain(TinyQuestion()));
  AnswerSummary s_cold = SummarizeResult(engine, cold);
  EXPECT_GT(cold.subtree_cache_misses, 0u);

  NED_ASSERT_OK_AND_MOVE(NedExplainResult warm, engine.Explain(TinyQuestion()));
  AnswerSummary s_warm = SummarizeResult(engine, warm);
  EXPECT_EQ(warm.subtree_cache_misses, 0u);
  EXPECT_GT(warm.subtree_cache_hits, 0u);

  ExpectSameAnswer(s_cold, s_warm);
  ExpectSameAnswer(ExpectedTinyAnswer(db), s_warm);
}

TEST(SubtreeCacheEngine, GovernedChargesAreIndependentOfCacheLuck) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(kTinySql, db);
  NED_ASSERT_OK_AND_MOVE(QueryInput input, QueryInput::Build(tree, db));

  // Drive every node bottom-up, the way NedExplain's traversal does: each
  // node is then either computed or hit-replayed, and a hit charges exactly
  // what recomputation would have.
  auto eval_bottom_up = [&tree](Evaluator& e) {
    for (const OperatorNode* node : tree.bottom_up()) {
      NED_EXPECT_OK(e.EvalNode(node).status());
    }
  };

  ExecContext ctx_off;
  Evaluator off(&tree, &input, &ctx_off);
  eval_bottom_up(off);

  SubtreeCache cache(1 << 20);
  Evaluator cold(&tree, &input, nullptr, &cache);
  eval_bottom_up(cold);

  ExecContext ctx_warm;
  Evaluator warm(&tree, &input, &ctx_warm, &cache);
  eval_bottom_up(warm);
  EXPECT_EQ(warm.cache_misses(), 0u);
  EXPECT_EQ(ctx_warm.rows_charged(), ctx_off.rows_charged());
  EXPECT_EQ(ctx_warm.bytes_charged(), ctx_off.bytes_charged());

  // Root-only evaluation is the one place warm legitimately charges less:
  // a root hit never materializes the children at all.
  ExecContext ctx_root;
  Evaluator root_only(&tree, &input, &ctx_root, &cache);
  NED_EXPECT_OK(root_only.EvalAll().status());
  EXPECT_LE(ctx_root.rows_charged(), ctx_off.rows_charged());
}

TEST(SubtreeCacheEngine, TightBudgetTripsWarmAndColdAlike) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(kTinySql, db);
  NED_ASSERT_OK_AND_MOVE(QueryInput input, QueryInput::Build(tree, db));

  SubtreeCache cache(1 << 20);
  Evaluator prime(&tree, &input, nullptr, &cache);
  NED_EXPECT_OK(prime.EvalAll().status());

  ExecContext ctx_cold;
  ctx_cold.set_row_budget(1);
  Evaluator cold(&tree, &input, &ctx_cold);
  const Status cold_st = cold.EvalAll().status();

  ExecContext ctx_warm;
  ctx_warm.set_row_budget(1);
  Evaluator warm(&tree, &input, &ctx_warm, &cache);
  const Status warm_st = warm.EvalAll().status();

  EXPECT_EQ(cold_st.code(), StatusCode::kResourceExhausted)
      << cold_st.ToString();
  EXPECT_EQ(warm_st.code(), cold_st.code()) << warm_st.ToString();
}

// ---- reload invalidation ---------------------------------------------------

TEST(SubtreeCacheInvalidation, ReloadBumpsOnlyTheReloadedRelationsVersion) {
  auto catalog = std::make_shared<Catalog>();
  NED_EXPECT_OK(catalog->Register("tiny", MakeTinyDb()));
  NED_ASSERT_OK_AND_MOVE(Catalog::Snapshot snap1, catalog->GetSnapshot("tiny"));
  NED_EXPECT_OK(catalog->ReloadCsv("tiny", "R", kJoinedRCsv));
  NED_ASSERT_OK_AND_MOVE(Catalog::Snapshot snap2, catalog->GetSnapshot("tiny"));

  NED_ASSERT_OK_AND_MOVE(const Relation* r1, snap1.db->GetRelation("R"));
  NED_ASSERT_OK_AND_MOVE(const Relation* r2, snap2.db->GetRelation("R"));
  NED_ASSERT_OK_AND_MOVE(const Relation* s1, snap1.db->GetRelation("S"));
  NED_ASSERT_OK_AND_MOVE(const Relation* s2, snap2.db->GetRelation("S"));
  // The copy-on-write reload restamps R but carries S's stamp across the
  // copy: untouched relations keep their cache entries valid.
  EXPECT_NE(r1->data_version(), r2->data_version());
  EXPECT_EQ(s1->data_version(), s2->data_version());
}

TEST(SubtreeCacheInvalidation, ReloadedDataIsNeverServedStale) {
  auto catalog = std::make_shared<Catalog>();
  NED_EXPECT_OK(catalog->Register("tiny", MakeTinyDb()));
  SubtreeCache cache(1 << 20);
  NedExplainOptions opts;
  opts.subtree_cache = &cache;

  auto run = [&opts](const Database& db) {
    QueryTree tree = MustCompile(kTinySql, db);
    auto engine = NedExplainEngine::Create(&tree, &db, opts);
    NED_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto result = engine->Explain(TinyQuestion());
    NED_CHECK_MSG(result.ok(), result.status().ToString());
    AnswerSummary summary = SummarizeResult(*engine, *result);
    summary.subtree_cache_hits = result->subtree_cache_hits;
    summary.subtree_cache_misses = result->subtree_cache_misses;
    return summary;
  };

  NED_ASSERT_OK_AND_MOVE(Catalog::Snapshot snap1, catalog->GetSnapshot("tiny"));
  const AnswerSummary before = run(*snap1.db);
  // Original data: R.v='c' has k=20, no S partner -- the join is picky.
  EXPECT_EQ(before.survivors_at_root, 0u);
  EXPECT_FALSE(before.condensed.empty());

  NED_EXPECT_OK(catalog->ReloadCsv("tiny", "R", kJoinedRCsv));
  NED_ASSERT_OK_AND_MOVE(Catalog::Snapshot snap2, catalog->GetSnapshot("tiny"));
  const AnswerSummary after = run(*snap2.db);
  // Reloaded data joins row 3 through: a stale cache hit would still report
  // the join as picky. The version-stamped keys force recomputation instead.
  EXPECT_GE(after.survivors_at_root, 1u);
  EXPECT_GT(after.subtree_cache_misses, 0u);
  ExpectSameAnswer(ExpectedTinyAnswer(MakeTinyDbJoined()), after);

  // And the new entries are themselves warm now.
  const AnswerSummary again = run(*snap2.db);
  EXPECT_EQ(again.subtree_cache_misses, 0u);
  ExpectSameAnswer(after, again);
}

// ---- answer cache: key semantics -------------------------------------------

TEST(AnswerCacheKey, SeparatesEveryKeyedDimension) {
  const std::string base =
      MakeAnswerCacheKey("db", 1, "SELECT R.v FROM R", "q", 0, 0, 0);
  EXPECT_EQ(base, MakeAnswerCacheKey("db", 1, "select  r.v  from r;", "q", 0,
                                     0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db2", 1, "SELECT R.v FROM R", "q", 0, 0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 2, "SELECT R.v FROM R", "q", 0, 0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 1, "SELECT R.k FROM R", "q", 0, 0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 1, "SELECT R.v FROM R", "q2", 0, 0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 1, "SELECT R.v FROM R", "q", 100, 0, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 1, "SELECT R.v FROM R", "q", 0, 100, 0));
  EXPECT_NE(base, MakeAnswerCacheKey("db", 1, "SELECT R.v FROM R", "q", 0, 0, 1));
}

// ---- answer cache through the service --------------------------------------

WhyNotRequest TinyRequest(const std::string& key) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "tiny";
  req.sql = kTinySql;
  req.question = WhyNotQuestion(TinyQuestion());
  return req;
}

std::shared_ptr<Catalog> TinyCatalog() {
  auto catalog = std::make_shared<Catalog>();
  NED_CHECK(catalog->Register("tiny", MakeTinyDb()).ok());
  return catalog;
}

TEST(AnswerCacheService, SecondAskIsServedAtSubmitWithoutExecution) {
  WhyNotService service(TinyCatalog());
  auto first = service.Submit(TinyRequest("k1"));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  WhyNotResponse r1 = first.response.get();
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r1.answer.complete);
  EXPECT_FALSE(r1.served_from_answer_cache);
  EXPECT_EQ(r1.attempt, 1);

  // Same content, brand-new idempotency key: answered at Submit.
  auto second = service.Submit(TinyRequest("k2"));
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  WhyNotResponse r2 = second.response.get();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_TRUE(r2.served_from_answer_cache);
  EXPECT_EQ(r2.attempt, 0);
  EXPECT_EQ(r2.snapshot_version, r1.snapshot_version);
  ExpectSameAnswer(r1.answer, r2.answer);

  service.Shutdown();
  const WhyNotService::Stats stats = service.stats();
  EXPECT_EQ(stats.answer_cache_hits, 1u);
  EXPECT_EQ(stats.answer_cache_inserts, 1u);
  // Hits are neither accepted nor completed: exactly-once books still hold.
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.accepted, stats.completed + stats.transient_failures);
  EXPECT_GE(service.answer_cache_stats().entries, 1u);
}

TEST(AnswerCacheService, BypassFlagForcesExecution) {
  WhyNotService service(TinyCatalog());
  service.Submit(TinyRequest("k1")).response.get();

  WhyNotRequest req = TinyRequest("k2");
  req.bypass_answer_cache = true;
  WhyNotResponse resp = service.Submit(std::move(req)).response.get();
  EXPECT_FALSE(resp.served_from_answer_cache);
  EXPECT_EQ(resp.attempt, 1);
  service.Shutdown();
  EXPECT_EQ(service.stats().answer_cache_hits, 0u);
  EXPECT_GE(service.stats().answer_cache_bypass, 1u);
}

TEST(AnswerCacheService, BudgetClassesNeverShareAnEntry) {
  ServiceOptions options;
  WhyNotService service(TinyCatalog(), options);

  WhyNotRequest a = TinyRequest("k1");
  a.row_budget = 10'000;
  ASSERT_TRUE(service.Submit(std::move(a)).response.get().answer.complete);

  // Same query, different row budget: a larger budget can turn a partial
  // answer into a complete one, so the classes must not alias.
  WhyNotRequest b = TinyRequest("k2");
  b.row_budget = 20'000;
  WhyNotResponse rb = service.Submit(std::move(b)).response.get();
  EXPECT_FALSE(rb.served_from_answer_cache);
  EXPECT_EQ(rb.attempt, 1);

  // Same class as the first: hit.
  WhyNotRequest c = TinyRequest("k3");
  c.row_budget = 10'000;
  WhyNotResponse rc = service.Submit(std::move(c)).response.get();
  EXPECT_TRUE(rc.served_from_answer_cache);

  service.Shutdown();
  EXPECT_EQ(service.stats().answer_cache_hits, 1u);
  EXPECT_EQ(service.stats().answer_cache_inserts, 2u);
}

TEST(AnswerCacheService, PartialAnswersAreNeverCached) {
  // A cross join far too large for its deadline: the service answers with an
  // honest partial, which must not be replayed as authoritative.
  auto catalog = std::make_shared<Catalog>();
  Database big;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < 1500; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(big.LoadCsv("R", r).ok());
  NED_CHECK(big.LoadCsv("S", s).ok());
  NED_EXPECT_OK(catalog->Register("big", std::move(big)));

  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(catalog, options);

  auto slow = [](const std::string& key) {
    WhyNotRequest req;
    req.key = key;
    req.db_name = "big";
    req.sql = "SELECT R.a FROM R, S WHERE R.a >= 0";
    CTuple tc;
    tc.Add("R.a", Value::Int(0));
    req.question = WhyNotQuestion(tc);
    req.deadline_ms = 50;
    return req;
  };

  WhyNotResponse r1 = service.Submit(slow("p1")).response.get();
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_FALSE(r1.answer.complete);

  WhyNotResponse r2 = service.Submit(slow("p2")).response.get();
  EXPECT_FALSE(r2.served_from_answer_cache);
  EXPECT_EQ(r2.attempt, 1);

  service.Shutdown();
  const WhyNotService::Stats stats = service.stats();
  EXPECT_EQ(stats.answer_cache_inserts, 0u);
  EXPECT_EQ(stats.answer_cache_hits, 0u);
  EXPECT_GE(stats.partial_not_cached, 2u);
  EXPECT_EQ(service.answer_cache_stats().entries, 0u);
}

// ---- multi-client staleness race -------------------------------------------

TEST(AnswerCacheService, ConcurrentReloadsNeverServeAStaleAnswer) {
  // Clients hammer the same question while a reloader flips R between two
  // contents with distinguishable answers. Every response -- executed or
  // cache-served -- must match the content of the snapshot version it
  // reports, or the cache leaked an answer across a reload.
  const AnswerSummary expect_picky = ExpectedTinyAnswer(MakeTinyDb());
  const AnswerSummary expect_joined = ExpectedTinyAnswer(MakeTinyDbJoined());
  ASSERT_EQ(expect_picky.survivors_at_root, 0u);
  ASSERT_GE(expect_joined.survivors_at_root, 1u);

  auto catalog = TinyCatalog();  // version 1 = original (picky) content
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 512;
  WhyNotService service(catalog, options);

  constexpr int kReloads = 12;
  std::thread reloader([&] {
    for (int i = 1; i <= kReloads; ++i) {
      // Reload i publishes version 1 + i: odd i -> joined, even i -> picky.
      // So across the run, odd versions carry picky content, even joined.
      NED_EXPECT_OK(catalog->ReloadCsv("tiny", "R",
                                       i % 2 == 1 ? kJoinedRCsv : kTinyRCsv));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto sub = service.Submit(
            TinyRequest("c" + std::to_string(c) + "-" + std::to_string(i)));
        if (!sub.status.ok()) continue;  // shed under load: fine, retry-free
        WhyNotResponse resp = sub.response.get();
        ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
        ASSERT_TRUE(resp.answer.complete);
        const AnswerSummary& expected =
            resp.snapshot_version % 2 == 1 ? expect_picky : expect_joined;
        ExpectSameAnswer(expected, resp.answer);
      }
    });
  }
  for (auto& t : clients) t.join();
  reloader.join();
  service.Shutdown();

  const WhyNotService::Stats stats = service.stats();
  // The cache must actually have been exercised for this to prove anything.
  EXPECT_GT(stats.answer_cache_hits, 0u);
  EXPECT_EQ(stats.accepted, stats.completed + stats.transient_failures);
}

}  // namespace
}  // namespace ned
