/// \file scheduler_test.cpp
/// \brief Units for the overload-resilience building blocks: the priority/
/// EDF scheduler with fair-share quotas, the per-key circuit breaker state
/// machine, and the brownout degradation ladder. All time-driven behaviour
/// runs against a ManualClock, so every expiry/probe/hysteresis assertion
/// is on an exact instant -- no sleeps, no flakes.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/use_cases.h"
#include "service/breaker.h"
#include "service/brownout.h"
#include "service/scheduler.h"

namespace ned {
namespace {

using std::chrono::milliseconds;

// ---- PriorityScheduler ------------------------------------------------------

using IntScheduler = PriorityScheduler<int>;

IntScheduler::Entry Entry(int item, Priority priority,
                          Clock::TimePoint deadline,
                          const std::string& client = "") {
  IntScheduler::Entry entry;
  entry.item = item;
  entry.priority = priority;
  entry.deadline = deadline;
  entry.client = client;
  return entry;
}

TEST(PriorityScheduler, StrictClassPriorityThenEdfThenFifo) {
  ManualClock clock;
  const Clock::TimePoint now = clock.Now();
  IntScheduler sched(SchedulerOptions{16, 0});
  // Admission order scrambles classes and deadlines on purpose.
  ASSERT_EQ(sched.TryAdmit(Entry(1, Priority::kBackground, now + milliseconds(10))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(2, Priority::kBatch, now + milliseconds(500))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(3, Priority::kInteractive, now + milliseconds(900))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(4, Priority::kInteractive, now + milliseconds(100))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(5, Priority::kBatch, now + milliseconds(100))),
            IntScheduler::Admit::kOk);
  // FIFO tiebreak: same class, same deadline as #4.
  ASSERT_EQ(sched.TryAdmit(Entry(6, Priority::kInteractive, now + milliseconds(100))),
            IntScheduler::Admit::kOk);
  std::vector<int> order;
  while (auto e = sched.Pop()) order.push_back(e->item);
  // Interactive (EDF: 4 before 6 by FIFO, then 3) > batch (5 then 2) >
  // background -- an earlier background deadline never beats a stronger
  // class.
  EXPECT_EQ(order, (std::vector<int>{4, 6, 3, 5, 2, 1}));
  EXPECT_TRUE(sched.empty());
}

TEST(PriorityScheduler, QueueCapacityAndPerClientQuota) {
  ManualClock clock;
  const Clock::TimePoint deadline = clock.Now() + milliseconds(100);
  IntScheduler sched(SchedulerOptions{3, 2});
  EXPECT_EQ(sched.TryAdmit(Entry(1, Priority::kInteractive, deadline, "hot")),
            IntScheduler::Admit::kOk);
  EXPECT_EQ(sched.TryAdmit(Entry(2, Priority::kInteractive, deadline, "hot")),
            IntScheduler::Admit::kOk);
  // Third from the same client: quota, not capacity.
  EXPECT_EQ(sched.TryAdmit(Entry(3, Priority::kInteractive, deadline, "hot")),
            IntScheduler::Admit::kClientQuota);
  EXPECT_EQ(sched.occupancy("hot"), 2u);
  // A different client still fits.
  EXPECT_EQ(sched.TryAdmit(Entry(4, Priority::kInteractive, deadline, "cold")),
            IntScheduler::Admit::kOk);
  // Now the queue itself is full for everyone.
  EXPECT_EQ(sched.TryAdmit(Entry(5, Priority::kInteractive, deadline, "other")),
            IntScheduler::Admit::kQueueFull);
  // The occupancy slot outlives Pop (queued + running) and frees on
  // Release, re-opening the quota.
  (void)sched.Pop();
  EXPECT_EQ(sched.occupancy("hot"), 2u);
  sched.Release("hot");
  EXPECT_EQ(sched.occupancy("hot"), 1u);
  EXPECT_EQ(sched.TryAdmit(Entry(6, Priority::kInteractive, deadline, "hot")),
            IntScheduler::Admit::kOk);
}

TEST(PriorityScheduler, TakeExpiredExtractsExactlyTheExpired) {
  ManualClock clock;
  const Clock::TimePoint now = clock.Now();
  IntScheduler sched(SchedulerOptions{16, 0});
  ASSERT_EQ(sched.TryAdmit(Entry(1, Priority::kInteractive, now + milliseconds(5))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(2, Priority::kInteractive, now + milliseconds(50))),
            IntScheduler::Admit::kOk);
  ASSERT_EQ(sched.TryAdmit(Entry(3, Priority::kBackground, now + milliseconds(5))),
            IntScheduler::Admit::kOk);
  EXPECT_TRUE(sched.TakeExpired(clock.Now()).empty());
  clock.AdvanceMs(10);
  std::vector<int> expired;
  for (auto& e : sched.TakeExpired(clock.Now())) expired.push_back(e.item);
  // Both 5ms entries, across classes; the 50ms one stays.
  EXPECT_EQ(expired, (std::vector<int>{1, 3}));
  EXPECT_EQ(sched.size(), 1u);
  auto next = sched.Pop();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->item, 2);
}

TEST(PriorityScheduler, DrainAllEmptiesEveryLane) {
  ManualClock clock;
  const Clock::TimePoint deadline = clock.Now() + milliseconds(100);
  IntScheduler sched(SchedulerOptions{16, 0});
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(sched.TryAdmit(Entry(i, static_cast<Priority>(i % 3), deadline)),
              IntScheduler::Admit::kOk);
  }
  EXPECT_EQ(sched.DrainAll().size(), 6u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.depth(Priority::kInteractive), 0u);
}

// ---- CircuitBreaker ---------------------------------------------------------

BreakerOptions TestBreaker() {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.probe_interval_ms = 100;
  return options;
}

/// Runs one full execute-and-fail cycle through the breaker.
void FailOnce(CircuitBreaker& breaker, const std::string& key) {
  const auto decision = breaker.TryBegin(key);
  ASSERT_NE(decision.gate, CircuitBreaker::Gate::kFastFail);
  breaker.End(key, Status::InvalidArgument("poison"));
}

TEST(CircuitBreaker, OpensAfterThresholdAndFastFailsWithCachedError) {
  ManualClock clock;
  CircuitBreaker breaker(TestBreaker(), &clock);
  for (int i = 0; i < 3; ++i) FailOnce(breaker, "k");
  EXPECT_EQ(breaker.stats().opens, 1u);
  // Both gates fast-fail with the recorded error, no execution admitted.
  const auto check = breaker.Check("k");
  EXPECT_EQ(check.gate, CircuitBreaker::Gate::kFastFail);
  EXPECT_EQ(check.cached_error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  EXPECT_EQ(breaker.stats().fast_fails, 2u);
  // Unrelated keys are untouched.
  EXPECT_EQ(breaker.Check("other").gate, CircuitBreaker::Gate::kAllow);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  ManualClock clock;
  CircuitBreaker breaker(TestBreaker(), &clock);
  for (int i = 0; i < 3; ++i) FailOnce(breaker, "k");
  clock.AdvanceMs(99);
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  clock.AdvanceMs(1);
  // Probe due: exactly one execution is admitted; a concurrent duplicate
  // still fast-fails while the probe is in flight.
  const auto probe = breaker.TryBegin("k");
  EXPECT_EQ(probe.gate, CircuitBreaker::Gate::kProbe);
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  breaker.End("k", Status::OK());
  // Healed: the key is forgotten entirely.
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kAllow);
  breaker.End("k", Status::OK());
  const auto stats = breaker.stats();
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.reopens, 0u);
  EXPECT_EQ(stats.tracked_keys, 0u);
}

TEST(CircuitBreaker, FailedProbeReArmsTheOpenBreaker) {
  ManualClock clock;
  CircuitBreaker breaker(TestBreaker(), &clock);
  for (int i = 0; i < 3; ++i) FailOnce(breaker, "k");
  clock.AdvanceMs(100);
  const auto probe = breaker.TryBegin("k");
  ASSERT_EQ(probe.gate, CircuitBreaker::Gate::kProbe);
  breaker.End("k", Status::InvalidArgument("still poison"));
  EXPECT_EQ(breaker.stats().reopens, 1u);
  // Still open: the probe timer restarted from the failed probe.
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  clock.AdvanceMs(100);
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kProbe);
  breaker.End("k", Status::OK());
  EXPECT_EQ(breaker.Check("k").gate, CircuitBreaker::Gate::kAllow);
}

TEST(CircuitBreaker, SuspectSerializationBoundsConcurrentPoison) {
  ManualClock clock;
  CircuitBreaker breaker(TestBreaker(), &clock);
  // One recorded failure turns the key into a suspect: only a single
  // execution may be in flight, so the consecutive-failure count -- and the
  // "poison costs at most threshold + probes" bound -- stays exact even
  // when many workers hold duplicates of the key.
  FailOnce(breaker, "k");
  const auto first = breaker.TryBegin("k");
  EXPECT_EQ(first.gate, CircuitBreaker::Gate::kAllow);
  EXPECT_EQ(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  EXPECT_EQ(breaker.Check("k").gate, CircuitBreaker::Gate::kFastFail);
  breaker.End("k", Status::InvalidArgument("poison"));
  // Healthy keys run fully parallel: no failure recorded, no tracking.
  EXPECT_EQ(breaker.TryBegin("fresh").gate, CircuitBreaker::Gate::kAllow);
  EXPECT_EQ(breaker.TryBegin("fresh").gate, CircuitBreaker::Gate::kAllow);
}

TEST(CircuitBreaker, TransientsAndResourceLimitsAreNotPoison) {
  EXPECT_FALSE(IsBreakerFailure(Status::OK()));
  EXPECT_FALSE(IsBreakerFailure(Status::Unavailable("shed")));
  EXPECT_FALSE(IsBreakerFailure(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsBreakerFailure(Status::ResourceExhausted("budget")));
  EXPECT_FALSE(IsBreakerFailure(Status::Cancelled("watchdog")));
  EXPECT_TRUE(IsBreakerFailure(Status::InvalidArgument("bad sql")));
  EXPECT_TRUE(IsBreakerFailure(Status::NotFound("no relation")));
  ManualClock clock;
  CircuitBreaker breaker(TestBreaker(), &clock);
  // Two failures then a transient: the transient proves the key executes,
  // resetting the streak -- the breaker never opens.
  FailOnce(breaker, "k");
  FailOnce(breaker, "k");
  ASSERT_NE(breaker.TryBegin("k").gate, CircuitBreaker::Gate::kFastFail);
  breaker.End("k", Status::Unavailable("transient"));
  FailOnce(breaker, "k");
  FailOnce(breaker, "k");
  EXPECT_EQ(breaker.stats().opens, 0u);
  EXPECT_EQ(breaker.Check("k").gate, CircuitBreaker::Gate::kAllow);
}

TEST(CircuitBreaker, KeyIsContentNotRequestIdentity) {
  // Same db + SQL (modulo whitespace/case normalization) + question -> same
  // breaker key; any content difference -> different key.
  const std::string base = MakeBreakerKey("db", "SELECT R.v FROM R", "(R.v:c)");
  EXPECT_EQ(MakeBreakerKey("db", "select   r.v  from r", "(R.v:c)"), base);
  EXPECT_NE(MakeBreakerKey("db2", "SELECT R.v FROM R", "(R.v:c)"), base);
  EXPECT_NE(MakeBreakerKey("db", "SELECT R.w FROM R", "(R.v:c)"), base);
  EXPECT_NE(MakeBreakerKey("db", "SELECT R.v FROM R", "(R.v:d)"), base);
}

// ---- BrownoutController -----------------------------------------------------

BrownoutOptions TestBrownout() {
  BrownoutOptions options;
  options.enabled = true;
  options.p99_target_ms = 100;
  options.step_down_hold_ms = 50;
  return options;
}

TEST(Brownout, LevelForPressureIsMonotone) {
  const BrownoutOptions options = TestBrownout();
  int last = 0;
  for (double p = 0.0; p <= 1.5; p += 0.01) {
    const int level = BrownoutController::LevelForPressure(p, options);
    EXPECT_GE(level, last) << "ladder regressed at pressure " << p;
    last = level;
  }
  EXPECT_EQ(BrownoutController::LevelForPressure(0.49, options), 0);
  EXPECT_EQ(BrownoutController::LevelForPressure(0.50, options), 1);
  EXPECT_EQ(BrownoutController::LevelForPressure(0.75, options), 2);
  EXPECT_EQ(BrownoutController::LevelForPressure(0.90, options), 3);
  EXPECT_EQ(last, 3);
}

TEST(Brownout, StepsUpImmediatelyAndDownOneRungAfterHold) {
  ManualClock clock;
  BrownoutController controller(TestBrownout(), &clock);
  EXPECT_EQ(controller.Update(0.0, 0.0), 0);
  // Pressure spike: straight to L3, no hold.
  EXPECT_EQ(controller.Update(0.95, 0.0), 3);
  // Pressure gone, but the level holds until step_down_hold_ms passes...
  EXPECT_EQ(controller.Update(0.0, 0.0), 3);
  clock.AdvanceMs(49);
  EXPECT_EQ(controller.Update(0.0, 0.0), 3);
  clock.AdvanceMs(1);
  // ...then recovery walks down one rung per hold period, re-arming each
  // time -- never a cliff from L3 to L0.
  EXPECT_EQ(controller.Update(0.0, 0.0), 2);
  clock.AdvanceMs(50);
  EXPECT_EQ(controller.Update(0.0, 0.0), 2);
  clock.AdvanceMs(50);
  EXPECT_EQ(controller.Update(0.0, 0.0), 1);
  // A fresh spike mid-recovery jumps straight back up.
  EXPECT_EQ(controller.Update(0.80, 0.0), 2);
}

TEST(Brownout, RecentLatencyP99DrivesPressure) {
  ManualClock clock;
  BrownoutController controller(TestBrownout(), &clock);
  // A window of completions at 2x the p99 target saturates the latency
  // signal even with an empty queue and no memory pressure.
  for (int i = 0; i < 128; ++i) controller.RecordCompletion(200);
  EXPECT_EQ(controller.RecentP99Ms(), 200);
  EXPECT_EQ(controller.Update(0.0, 0.0), 3);
  EXPECT_GE(controller.pressure(), 2.0);
}

TEST(Brownout, DisabledControllerNeverLeavesL0) {
  ManualClock clock;
  BrownoutOptions options = TestBrownout();
  options.enabled = false;
  BrownoutController controller(options, &clock);
  for (int i = 0; i < 128; ++i) controller.RecordCompletion(10'000);
  EXPECT_EQ(controller.Update(1.0, 1.0), 0);
  EXPECT_EQ(controller.level(), 0);
}

// ---- degradation application ------------------------------------------------

AnswerSummary SampleSummary() {
  AnswerSummary summary;
  summary.condensed = {"m0", "m2"};
  summary.detailed = {"(P.id:604, m0)", "(P.id:605, m0)", "(P.id:606, m2)",
                      "(P.id:607, m2)"};
  summary.secondary = {"m1"};
  summary.complete = true;
  return summary;
}

TEST(Brownout, OptionCutsPerLevel) {
  NedExplainOptions base;
  base.compute_secondary = true;
  base.keep_tabq_dump = true;
  NedExplainOptions l0 = base;
  ApplyBrownoutToOptions(0, &l0);
  EXPECT_TRUE(l0.compute_secondary);
  EXPECT_TRUE(l0.keep_tabq_dump);
  NedExplainOptions l1 = base;
  ApplyBrownoutToOptions(1, &l1);
  EXPECT_FALSE(l1.compute_secondary);
  EXPECT_TRUE(l1.keep_tabq_dump);
  NedExplainOptions l2 = base;
  ApplyBrownoutToOptions(2, &l2);
  EXPECT_FALSE(l2.compute_secondary);
  EXPECT_FALSE(l2.keep_tabq_dump);
}

TEST(Brownout, SummaryRenderingIsGoldenPinnedPerLevel) {
  // L0: byte-identical to the pre-brownout rendering -- the golden files
  // pinned before brownout existed must never change.
  AnswerSummary l0 = SampleSummary();
  ApplyBrownoutToSummary(0, 8, &l0);
  EXPECT_EQ(l0.ToString(),
            "condensed=[m0,m2] detailed=4 secondary=[m1] (complete)");
  EXPECT_EQ(l0.degradation_level, 0);
  // L1: flagged, nothing truncated.
  AnswerSummary l1 = SampleSummary();
  l1.secondary.clear();  // as computed with compute_secondary = false
  ApplyBrownoutToSummary(1, 8, &l1);
  EXPECT_EQ(l1.ToString(),
            "condensed=[m0,m2] detailed=4 secondary=[] (complete) "
            "degraded=L1:no-secondary");
  // L2: detailed capped at 2 entries + an honest elision marker.
  AnswerSummary l2 = SampleSummary();
  l2.secondary.clear();
  ApplyBrownoutToSummary(2, 2, &l2);
  EXPECT_EQ(l2.detailed.size(), 3u);
  EXPECT_EQ(l2.detailed[2], "... 2 more entries elided (brownout L2)");
  EXPECT_EQ(l2.ToString(),
            "condensed=[m0,m2] detailed=3 secondary=[] (complete) "
            "degraded=L2:condensed-focus");
  // A cap wider than the listing truncates nothing.
  AnswerSummary wide = SampleSummary();
  ApplyBrownoutToSummary(2, 8, &wide);
  EXPECT_EQ(wide.detailed.size(), 4u);
  EXPECT_EQ(wide.degradation, "L2:condensed-focus");
}

// ---- degraded answers vs. full answers on the paper workload ----------------

/// Differential contract of the ladder on all 19 use cases: an L1/L2 answer
/// is a *projection* of the full answer -- identical condensed and detailed
/// content (modulo the L2 rendering cap, which must be a prefix plus an
/// elision marker), with only the secondary answer dropped. Brownout may
/// never change which subqueries are blamed.
TEST(BrownoutDifferential, DegradedAnswersAreProjectionsOfFullAnswers) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  constexpr size_t kDetailedCap = 4;
  for (const UseCase& uc : registry->use_cases()) {
    SCOPED_TRACE(uc.name);
    const Database& db = registry->database(uc.db_name);
    auto tree_full = registry->BuildTree(uc);
    ASSERT_TRUE(tree_full.ok());

    NedExplainOptions full_options;
    full_options.compute_secondary = true;
    auto full_engine = NedExplainEngine::Create(&*tree_full, &db, full_options);
    ASSERT_TRUE(full_engine.ok());
    auto full_result = full_engine->Explain(uc.question, nullptr);
    ASSERT_TRUE(full_result.ok()) << full_result.status().ToString();
    const AnswerSummary full = SummarizeResult(*full_engine, *full_result);

    for (int level = 1; level <= 2; ++level) {
      auto tree = registry->BuildTree(uc);
      ASSERT_TRUE(tree.ok());
      NedExplainOptions options = full_options;
      ApplyBrownoutToOptions(level, &options);
      auto engine = NedExplainEngine::Create(&*tree, &db, options);
      ASSERT_TRUE(engine.ok());
      auto result = engine->Explain(uc.question, nullptr);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      AnswerSummary degraded = SummarizeResult(*engine, *result);
      ApplyBrownoutToSummary(level, kDetailedCap, &degraded);

      EXPECT_EQ(degraded.degradation_level, level);
      // The blame set survives every rung.
      EXPECT_EQ(degraded.condensed, full.condensed);
      EXPECT_EQ(degraded.dir_total, full.dir_total);
      EXPECT_EQ(degraded.indir_total, full.indir_total);
      // Secondary answers are the cut.
      EXPECT_TRUE(degraded.secondary.empty());
      if (level == 1) {
        EXPECT_EQ(degraded.detailed, full.detailed);
      } else if (full.detailed.size() <= kDetailedCap) {
        EXPECT_EQ(degraded.detailed, full.detailed);
      } else {
        // Capped rendering: a strict prefix of the full listing plus the
        // elision marker, which states exactly how much was dropped.
        ASSERT_EQ(degraded.detailed.size(), kDetailedCap + 1);
        for (size_t i = 0; i < kDetailedCap; ++i) {
          EXPECT_EQ(degraded.detailed[i], full.detailed[i]);
        }
        EXPECT_NE(degraded.detailed.back().find("elided"), std::string::npos);
      }
    }
  }
}

}  // namespace
}  // namespace ned
