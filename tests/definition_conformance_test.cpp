/// \file definition_conformance_test.cpp
/// \brief Cross-validates the NedExplain engine against an independent,
/// brute-force implementation of the paper's definitions.
///
/// The oracle recomputes, for each compatible (Dir) tuple t_I, the sets
/// S_m(t_I) = { o in m.Output : t_I in lineage(o), lineage(o) subseteq D }
/// for every subquery m, directly from a full evaluation -- no TabQ, no
/// early termination, no successor bookkeeping. Per Defs. 2.9-2.11, the
/// picky subquery of t_I is the unique node whose *input* still carries a
/// valid successor of t_I while its output does not. The engine's detailed
/// answer must coincide with the oracle on every use case and on randomized
/// workloads.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MustExplain;

/// Oracle: (Dir tuple -> picky node) computed from first principles.
/// `nullptr` value means the tuple's valid successors reach the root.
std::map<TupleId, const OperatorNode*> OraclePickyNodes(
    const QueryTree& tree, const Database& db, const CompatibleSets& compat) {
  auto input = QueryInput::Build(tree, db);
  NED_CHECK(input.ok());
  Evaluator evaluator(&tree, &*input);
  NED_CHECK(evaluator.EvalAll().ok());

  // S_m(t): valid successors of t in m's output.
  auto valid_successors_at = [&](const OperatorNode* m, TupleId t)
      -> size_t {
    size_t n = 0;
    for (const TraceTuple& o : *evaluator.TryGetOutput(m)) {
      bool contains_t = false;
      for (TupleId id : o.lineage) {
        if (id == t) contains_t = true;
      }
      if (contains_t && BaseSetSubsetOf(o.lineage, compat.all)) ++n;
    }
    return n;
  };

  std::map<TupleId, const OperatorNode*> picky;
  for (TupleId t : compat.dir) {
    // Walk every node bottom-up; the picky node is where the count drops to
    // zero while some child (or the tuple's own scan) still carried it.
    const OperatorNode* blamed = nullptr;
    for (const OperatorNode* m : tree.bottom_up()) {
      if (m->is_leaf()) continue;
      size_t at_m = valid_successors_at(m, t);
      if (at_m > 0) continue;
      size_t feeding = 0;
      for (const auto& child : m->children) {
        feeding += valid_successors_at(child.get(), t);
      }
      if (feeding > 0) {
        // Def. 2.11: every valid successor of t dies at m.
        NED_CHECK_MSG(blamed == nullptr,
                      "oracle found two picky nodes (Property 2.1 violated)");
        blamed = m;
      }
    }
    if (blamed == nullptr) {
      // Either the tuple survives to the root or it never had a valid
      // successor anywhere above its scan (leaf-level starvation cannot
      // happen: scans are identity).
      blamed = nullptr;
    }
    picky[t] = blamed;
  }
  return picky;
}

/// Compares engine answer vs oracle for one (tree, question) pair. Only the
/// (t_I, Q') pairs are compared (the ⊥ entries cover cond-alpha, which the
/// oracle does not model); use cases without aggregation are exact.
void ExpectConformance(const QueryTree& tree, const Database& db,
                       const WhyNotQuestion& question,
                       const std::string& label) {
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(question);
  ASSERT_TRUE(result.ok()) << label;

  for (const auto& part : result->per_ctuple) {
    std::map<TupleId, const OperatorNode*> oracle =
        OraclePickyNodes(tree, db, part.compat);

    std::map<TupleId, const OperatorNode*> engine_answer;
    for (const auto& entry : part.answer.detailed) {
      if (!entry.is_bottom()) {
        engine_answer[entry.dir_tuple] = entry.subquery;
      }
    }
    for (const auto& [t, blamed] : oracle) {
      auto it = engine_answer.find(t);
      if (blamed == nullptr) {
        EXPECT_EQ(it, engine_answer.end())
            << label << ": engine blames a surviving tuple";
      } else {
        ASSERT_NE(it, engine_answer.end())
            << label << ": engine misses a picked tuple (completeness)";
        EXPECT_EQ(it->second, blamed)
            << label << ": engine blames " << it->second->name
            << " but the definitions give " << blamed->name;
      }
    }
    for (const auto& [t, node] : engine_answer) {
      EXPECT_EQ(oracle.count(t), 1u) << label;
    }
  }
}

// ---- over the paper's use cases -------------------------------------------------

class DefinitionConformance : public ::testing::TestWithParam<std::string> {
 protected:
  static const UseCaseRegistry& Registry() {
    static const UseCaseRegistry* registry = [] {
      auto r = UseCaseRegistry::Build();
      NED_CHECK(r.ok());
      return new UseCaseRegistry(std::move(r).value());
    }();
    return *registry;
  }
};

TEST_P(DefinitionConformance, EngineMatchesBruteForceDefinitions) {
  auto uc = Registry().Find(GetParam());
  ASSERT_TRUE(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  ExpectConformance(*tree, Registry().database((*uc)->db_name),
                    (*uc)->question, GetParam());
}

// SPJ(U) use cases: exact conformance. (SPJA cases add the cond-alpha layer
// above the definitions the oracle models; their tuple-level pairs are
// covered by Crime10/Gov4-style cases below where blocking happens inside V.)
INSTANTIATE_TEST_SUITE_P(SpjUseCases, DefinitionConformance,
                         ::testing::Values("Crime1", "Crime2", "Crime3",
                                           "Crime4", "Crime5", "Crime6",
                                           "Crime7", "Crime8", "Imdb1",
                                           "Imdb2", "Gov1", "Gov2", "Gov3",
                                           "Gov4", "Gov5", "Gov7"));

// ---- over randomized workloads ----------------------------------------------------

class RandomConformance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomConformance, EngineMatchesBruteForceDefinitions) {
  Rng rng(GetParam() * 7919 + 3);
  Database db;
  int rows = static_cast<int>(rng.UniformInt(5, 30));
  int domain = static_cast<int>(rng.UniformInt(2, 6));
  Relation r("R", Schema({{"R", "id"}, {"R", "k"}, {"R", "v"}}));
  Relation s("S", Schema({{"S", "id"}, {"S", "k"}, {"S", "w"}}));
  for (int i = 0; i < rows; ++i) {
    r.AddRow({Value::Int(i), Value::Int(rng.UniformInt(0, domain)),
              Value::Int(rng.UniformInt(0, 4))});
    s.AddRow({Value::Int(i), Value::Int(rng.UniformInt(0, domain)),
              Value::Int(rng.UniformInt(0, 4))});
  }
  NED_CHECK(db.AddRelation(std::move(r)).ok());
  NED_CHECK(db.AddRelation(std::move(s)).ok());

  QueryTree tree = testing::MustCompile(
      StrCat("SELECT R.id, S.id FROM R, S WHERE R.k = S.k AND R.v > ",
             rng.UniformInt(0, 3), " AND S.w <= ", rng.UniformInt(1, 4)),
      db);
  CTuple tc;
  tc.Add("R.id", Value::Int(rng.UniformInt(0, rows - 1)));
  if (rng.Chance(0.5)) {
    tc.Add("S.id", Value::Int(rng.UniformInt(0, rows - 1)));
  }
  ExpectConformance(tree, db, WhyNotQuestion(tc),
                    "seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConformance,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace ned
