/// \file parallel_test.cpp
/// \brief Units for the intra-query parallelism layer: the TaskPool, the
/// deterministic MorselPlan partitioner, worker-shard governance on
/// ExecContext, and evaluator/engine-level serial-equivalence on small
/// hand-built queries. The statistical bit-identity evidence lives in
/// differential_test.cpp (1000-seed parallel-vs-serial sweep) and
/// use_cases_test.cpp (golden thread-invariance); this file pins the
/// mechanisms those sweeps rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/running_example.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;

// ---- TaskPool --------------------------------------------------------------

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(3);
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.RunAndWait(tasks);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.pool_tasks_run() + pool.inline_tasks_run(),
            static_cast<size_t>(kTasks));
}

TEST(TaskPool, ZeroThreadPoolRunsEverythingInline) {
  TaskPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back([&ran] { ran.fetch_add(1); });
  pool.RunAndWait(tasks);
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(pool.pool_tasks_run(), 0u);
  EXPECT_EQ(pool.inline_tasks_run(), 10u);
  EXPECT_EQ(pool.peak_active(), 0u);
}

TEST(TaskPool, EmptyAndSingletonSectionsAreInline) {
  TaskPool pool(2);
  std::vector<std::function<void()>> none;
  pool.RunAndWait(none);  // must not hang or crash
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> one;
  one.emplace_back([&ran] { ran.fetch_add(1); });
  pool.RunAndWait(one);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.pool_tasks_run(), 0u);  // a single task never dispatches
}

TEST(TaskPool, PeakActiveNeverExceedsThreadCount) {
  TaskPool pool(2);
  // Many concurrent callers, each fanning out more tasks than the pool has
  // threads: the caller-helps design must complete everything while the
  // high-watermark of *pool-thread* concurrency stays within the bound --
  // the invariant ned_stress re-checks against the live service.
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<std::function<void()>> tasks;
        for (int t = 0; t < 8; ++t) {
          tasks.emplace_back([&total] { total.fetch_add(1); });
        }
        pool.RunAndWait(tasks);
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(total.load(), kCallers * kRounds * 8);
  EXPECT_LE(pool.peak_active(), static_cast<size_t>(pool.thread_count()));
}

TEST(TaskPool, NestedSectionsDoNotDeadlock) {
  TaskPool pool(1);  // one worker: nested waits must degrade, not deadlock
  std::atomic<int> inner_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&pool, &inner_runs] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.emplace_back([&inner_runs] { inner_runs.fetch_add(1); });
      }
      pool.RunAndWait(inner);
    });
  }
  pool.RunAndWait(outer);
  EXPECT_EQ(inner_runs.load(), 16);
}

// ---- MorselPlan ------------------------------------------------------------

TEST(MorselPlan, StaysSerialBelowTheActivationThreshold) {
  // Fewer than two full morsels of input: partitioning buys nothing.
  EXPECT_FALSE(MorselPlan::For(0, 4, 8).active());
  EXPECT_FALSE(MorselPlan::For(15, 4, 8).active());
  EXPECT_TRUE(MorselPlan::For(16, 4, 8).active());
  // Parallelism off (threads <= 1) is always serial, whatever the size.
  EXPECT_FALSE(MorselPlan::For(1 << 20, 1, 8).active());
  EXPECT_FALSE(MorselPlan::For(1 << 20, 0, 8).active());
}

TEST(MorselPlan, PartitionsExactlyCoverTheInput) {
  for (size_t n : {16u, 17u, 100u, 1000u, 4096u, 4097u}) {
    for (int threads : {2, 3, 4, 8}) {
      for (size_t min_rows : {1u, 8u, 64u}) {
        MorselPlan plan = MorselPlan::For(n, threads, min_rows);
        ASSERT_EQ(plan.total, n);
        size_t covered = 0;
        for (size_t p = 0; p < plan.partitions; ++p) {
          EXPECT_EQ(plan.begin(p), covered)
              << "gap or overlap at partition " << p << " (n=" << n
              << " threads=" << threads << " min=" << min_rows << ")";
          EXPECT_GE(plan.end(p), plan.begin(p));
          covered = plan.end(p);
        }
        EXPECT_EQ(covered, n);
        // Fan-out is bounded: never an absurd number of tiny morsels.
        EXPECT_LE(plan.partitions, static_cast<size_t>(threads) * 4);
      }
    }
  }
}

TEST(MorselPlan, IsAPureFunctionOfItsArguments) {
  MorselPlan a = MorselPlan::For(12345, 4, 64);
  MorselPlan b = MorselPlan::For(12345, 4, 64);
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.chunk, b.chunk);
  EXPECT_EQ(a.total, b.total);
}

TEST(MorselPlan, ParallelActiveRequiresPoolAndThreads) {
  EXPECT_FALSE(ParallelActive(nullptr));
  ExecContext bare;
  EXPECT_FALSE(ParallelActive(&bare));
  TaskPool pool(2);
  ExecContext one_thread;
  one_thread.set_parallelism(&pool, 1);
  EXPECT_FALSE(ParallelActive(&one_thread));
  ExecContext par;
  par.set_parallelism(&pool, 2);
  EXPECT_TRUE(ParallelActive(&par));
  // PlanFor composes the switch with the activation threshold.
  par.set_parallel_min_rows(8);
  EXPECT_FALSE(PlanFor(&par, 15).active());
  EXPECT_TRUE(PlanFor(&par, 16).active());
  EXPECT_FALSE(PlanFor(&one_thread, 1 << 20).active());
}

// ---- ExecContext worker shards ---------------------------------------------

TEST(WorkerShard, FoldChargesTheDeltaNotTheSnapshot) {
  ExecContext parent;
  parent.ChargeRows(6);
  parent.ChargeBytes(600);
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  // The shard's counters start at the parent snapshot so its budget checks
  // see parent-so-far + local...
  EXPECT_EQ(shard.rows_charged(), 6u);
  shard.ChargeRows(5);
  shard.ChargeBytes(500);
  // ...and folding adds only the shard's own work back.
  parent.FoldShard(shard);
  EXPECT_EQ(parent.rows_charged(), 11u);
  EXPECT_EQ(parent.bytes_charged(), 1100u);
}

TEST(WorkerShard, ShardSeesCombinedRowBudget) {
  ExecContext parent;
  parent.set_row_budget(10);
  parent.ChargeRows(6);
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  NED_EXPECT_OK(shard.CheckPoint());
  shard.ChargeRows(5);  // 6 (parent snapshot) + 5 > 10
  EXPECT_EQ(shard.CheckPoint().code(), StatusCode::kResourceExhausted);
}

TEST(WorkerShard, ParentCancellationStopsWorkers) {
  ExecContext parent;
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  NED_EXPECT_OK(shard.CheckPoint());
  parent.RequestCancel();
  EXPECT_EQ(shard.CheckPoint().code(), StatusCode::kCancelled);
}

TEST(WorkerShard, InjectionStaysCoordinatorOnly) {
  // Worker checkpoints must not consume (or trip on) the deterministic
  // injection step space: injection is decided at coordinator fold points so
  // a given step index means the same evaluation point at any thread count.
  ExecContext parent;
  parent.InjectFailureAt(1);
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  for (int i = 0; i < 10; ++i) NED_EXPECT_OK(shard.CheckPoint());
  EXPECT_EQ(parent.CheckPoint().code(), StatusCode::kResourceExhausted);
}

TEST(WorkerShard, ShardInheritsDeadline) {
  ExecContext parent;
  parent.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  EXPECT_EQ(shard.CheckPoint().code(), StatusCode::kDeadlineExceeded);
}

TEST(WorkerShard, ShardDoesNotInheritTheTaskPool) {
  // No nested fan-out: a worker evaluating its morsel runs serial code.
  TaskPool pool(2);
  ExecContext parent;
  parent.set_parallelism(&pool, 4);
  ExecContext shard;
  parent.BeginWorkerShard(&shard);
  EXPECT_FALSE(ParallelActive(&shard));
}

// ---- end-to-end serial equivalence on hand-built queries -------------------

/// Explains `question` serially and with (pool, threads) parallelism at a
/// low activation threshold, asserting byte-identical rendered reports.
void ExpectParallelMatchesSerial(const QueryTree& tree, const Database& db,
                                 const WhyNotQuestion& question, int threads) {
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto serial = engine->Explain(question);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string serial_report =
      RenderExplainReport(*engine, question, *serial);

  TaskPool pool(3);
  ExecContext ctx;
  ctx.set_parallelism(&pool, threads);
  ctx.set_parallel_min_rows(2);  // tiny inputs must still fan out
  auto par = engine->Explain(question, &ctx);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_TRUE(par->completeness.complete);
  EXPECT_EQ(RenderExplainReport(*engine, question, *par), serial_report)
      << "threads=" << threads;
  EXPECT_EQ(par->answer.ToString(engine->last_input()),
            serial->answer.ToString(engine->last_input()));
  EXPECT_EQ(par->dir_total, serial->dir_total);
  EXPECT_EQ(par->indir_total, serial->indir_total);
}

TEST(ParallelEval, JoinQueryMatchesSerialAtEveryThreadCount) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R, S WHERE R.k = S.k", db);
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  for (int threads : {1, 2, 4}) {
    ExpectParallelMatchesSerial(tree, db, WhyNotQuestion(tc), threads);
  }
}

TEST(ParallelEval, RunningExampleMatchesSerial) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  for (int threads : {2, 4}) {
    ExpectParallelMatchesSerial(tree, db, RunningExampleQuestion(), threads);
  }
}

TEST(ParallelEval, ChargesMatchSerialExactly) {
  // Governance accounting is part of the bit-identity contract: a parallel
  // run must charge exactly the rows/bytes the serial run charges.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R, S WHERE R.k = S.k", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("R.v", Value::Str("zzz"));

  ExecContext serial_ctx;
  auto serial = engine->Explain(WhyNotQuestion(tc), &serial_ctx);
  ASSERT_TRUE(serial.ok());

  TaskPool pool(3);
  ExecContext par_ctx;
  par_ctx.set_parallelism(&pool, 4);
  par_ctx.set_parallel_min_rows(1);
  auto par = engine->Explain(WhyNotQuestion(tc), &par_ctx);
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(par_ctx.rows_charged(), serial_ctx.rows_charged());
  EXPECT_EQ(par_ctx.bytes_charged(), serial_ctx.bytes_charged());
}

}  // namespace
}  // namespace ned
