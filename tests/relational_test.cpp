/// \file relational_test.cpp
/// \brief Unit tests for attributes, schemas, tuples, relations, databases.

#include <gtest/gtest.h>

#include "relational/attribute.h"
#include "relational/catalog.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace ned {
namespace {

// ---- attribute ----------------------------------------------------------------

TEST(Attribute, ParseQualified) {
  Attribute a = Attribute::Parse("A.dob");
  EXPECT_EQ(a.qualifier, "A");
  EXPECT_EQ(a.name, "dob");
  EXPECT_TRUE(a.qualified());
  EXPECT_EQ(a.FullName(), "A.dob");
}

TEST(Attribute, ParseUnqualified) {
  Attribute a = Attribute::Parse("aid");
  EXPECT_FALSE(a.qualified());
  EXPECT_EQ(a.FullName(), "aid");
}

TEST(Attribute, EqualityRequiresBothParts) {
  EXPECT_EQ(Attribute("A", "x"), Attribute("A", "x"));
  EXPECT_NE(Attribute("A", "x"), Attribute("B", "x"));
  EXPECT_NE(Attribute("A", "x"), Attribute("", "x"));
}

TEST(Attribute, OrderingIsTotal) {
  Attribute a("A", "x"), b("B", "a"), c("A", "y");
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_FALSE(a < a);
}

// ---- schema ---------------------------------------------------------------------

TEST(Schema, IndexAndContains) {
  Schema schema({{"R", "a"}, {"R", "b"}});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(*schema.IndexOf({"R", "b"}), 1u);
  EXPECT_FALSE(schema.IndexOf({"R", "c"}).has_value());
  EXPECT_TRUE(schema.Contains({"R", "a"}));
}

TEST(Schema, ResolveQualified) {
  Schema schema({{"R", "a"}, {"S", "a"}});
  auto idx = schema.Resolve(Attribute("S", "a"));
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(schema.Resolve(Attribute("T", "a")).ok());
}

TEST(Schema, ResolveUnqualifiedUniqueAndAmbiguous) {
  Schema schema({{"R", "a"}, {"S", "a"}, {"R", "b"}});
  auto unique = schema.Resolve(Attribute("", "b"));
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(*unique, 2u);
  EXPECT_FALSE(schema.Resolve(Attribute("", "a")).ok());  // ambiguous
  EXPECT_FALSE(schema.Resolve(Attribute("", "z")).ok());  // absent
}

TEST(Schema, IndicesWithNameIgnoresQualifier) {
  Schema schema({{"C1", "type"}, {"C2", "type"}, {"C1", "sector"}});
  EXPECT_EQ(schema.IndicesWithName("type"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(schema.IndicesWithName("zzz"), (std::vector<size_t>{}));
}

TEST(Schema, ConcatAndContainsAll) {
  Schema a({{"R", "x"}});
  Schema b({{"S", "y"}, {"S", "z"}});
  Schema both = a.Concat(b);
  EXPECT_EQ(both.size(), 3u);
  EXPECT_TRUE(both.ContainsAll(a));
  EXPECT_TRUE(both.ContainsAll(b));
  EXPECT_FALSE(a.ContainsAll(both));
}

TEST(Schema, ProjectPreservesOrderAndValidates) {
  Schema schema({{"R", "a"}, {"R", "b"}, {"R", "c"}});
  auto projected = schema.Project({{"R", "c"}, {"R", "a"}});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->at(0).name, "c");
  EXPECT_EQ(projected->at(1).name, "a");
  EXPECT_FALSE(schema.Project({{"R", "nope"}}).ok());
}

TEST(Schema, ToStringListsQualifiedNames) {
  Schema schema({{"A", "name"}, {"", "ap"}});
  EXPECT_EQ(schema.ToString(), "{A.name, ap}");
}

// ---- tuple ----------------------------------------------------------------------

TEST(TupleId, PackUnpackRoundTrip) {
  TupleId id = MakeTupleId(3, 12345);
  EXPECT_EQ(TupleIdAlias(id), 3u);
  EXPECT_EQ(TupleIdRow(id), 12345u);
  EXPECT_NE(id, kInvalidTupleId);
  // Alias 0, row 0 is still a valid (non-zero) id.
  EXPECT_NE(MakeTupleId(0, 0), kInvalidTupleId);
}

TEST(Tuple, ToStringVariants) {
  Tuple t({Value::Str("Homer"), Value::Int(-800)});
  EXPECT_EQ(t.ToString(), "(Homer, -800)");
  Schema schema({{"A", "name"}, {"A", "dob"}});
  EXPECT_EQ(t.ToString(schema), "(A.name:Homer, A.dob:-800)");
}

TEST(Tuple, HashAndEquality) {
  Tuple a({Value::Int(1), Value::Str("x")});
  Tuple b({Value::Int(1), Value::Str("x")});
  Tuple c({Value::Str("x"), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);  // order-sensitive
}

// ---- relation ---------------------------------------------------------------------

TEST(Relation, AddAndAccessRows) {
  Relation r("R", Schema({{"R", "a"}}));
  r.AddRow({Value::Int(1)});
  r.AddRow({Value::Int(2)});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.row(1).at(0).as_int(), 2);
  EXPECT_FALSE(r.empty());
}

TEST(RelationDeathTest, RejectsWrongArity) {
  Relation r("R", Schema({{"R", "a"}, {"R", "b"}}));
  EXPECT_DEATH(r.AddRow({Value::Int(1)}), "arity");
}

// ---- database ---------------------------------------------------------------------

TEST(Database, CreateAndLookup) {
  Database db;
  NED_CHECK(db.CreateRelation("R", Schema({{"R", "a"}})).ok());
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_FALSE(db.HasRelation("S"));
  EXPECT_TRUE(db.GetRelation("R").ok());
  EXPECT_FALSE(db.GetRelation("S").ok());
  EXPECT_FALSE(db.CreateRelation("R", Schema({{"R", "a"}})).ok());  // dup
}

TEST(Database, LoadCsvQualifiesAndTypes) {
  Database db;
  auto status = db.LoadCsv("A", "aid,name,dob\na1,Homer,-800\na2,Sophocles,-400\n");
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto rel = db.GetRelation("A");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 2u);
  EXPECT_EQ((*rel)->schema().at(0).FullName(), "A.aid");
  EXPECT_EQ((*rel)->row(0).at(2).type(), ValueType::kInt);
  EXPECT_EQ((*rel)->row(0).at(1).as_string(), "Homer");
}

TEST(Database, LoadCsvRejectsRaggedRows) {
  Database db;
  EXPECT_FALSE(db.LoadCsv("A", "a,b\n1\n").ok());
}

TEST(Database, LoadCsvReportsRaggedRowLineNumber) {
  Database db;
  // Row on physical line 3 has three fields against a two-column header.
  Status st = db.LoadCsv("A", "a,b\n1,2\n3,4,5\n6,7\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
}

TEST(Database, LoadCsvRejectsDuplicateHeaders) {
  Database db;
  Status st = db.LoadCsv("A", "id,name,id\n1,x,2\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
  EXPECT_NE(st.message().find("id"), std::string::npos);
}

TEST(Database, LoadCsvRejectsNonNumericInNumericColumn) {
  Database db;
  // Column b is numeric (first value 10); "12x3" on line 4 is not a number
  // and must be a load error, not a silently mistyped string.
  Status st = db.LoadCsv("A", "a,b\nx,10\ny,20\nz,12x3\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 4"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("12x3"), std::string::npos);
}

TEST(Database, LoadCsvAllowsNullsAndIntToRealWidening) {
  Database db;
  // Empty fields are NULLs and do not fix a column's type; 2.5 after 10
  // stays within the numeric class.
  Status st = db.LoadCsv("A", "a,b\nx,\ny,10\nz,2.5\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto rel = db.GetRelation("A");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE((*rel)->row(0).at(1).is_null());
  EXPECT_EQ((*rel)->row(2).at(1).type(), ValueType::kDouble);
}

TEST(Database, LoadCsvReportsUnterminatedQuoteLine) {
  Database db;
  Status st = db.LoadCsv("A", "a,b\n1,\"open\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

TEST(Database, DumpCsvRoundTrips) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "aid,name\na1,Homer\na2,\"quo\"\"ted\"\n").ok());
  auto csv = db.DumpCsv("A");
  ASSERT_TRUE(csv.ok());
  Database db2;
  NED_CHECK(db2.LoadCsv("A", *csv).ok());
  auto a = db.GetRelation("A"), b = db2.GetRelation("A");
  ASSERT_EQ((*a)->size(), (*b)->size());
  for (size_t i = 0; i < (*a)->size(); ++i) {
    EXPECT_EQ((*a)->row(i), (*b)->row(i));
  }
}

TEST(Database, TotalRowsAndNames) {
  Database db;
  NED_CHECK(db.LoadCsv("B", "x\n1\n2\n").ok());
  NED_CHECK(db.LoadCsv("A", "y\n1\n").ok());
  EXPECT_EQ(db.TotalRows(), 3u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"A", "B"}));
}

// ---- catalog reload atomicity ----------------------------------------------

TEST(Catalog, FailedReloadLeavesSnapshotAndVersionUntouched) {
  Catalog catalog;
  Database db;
  NED_CHECK(db.LoadCsv("A", "aid,name\na1,Homer\n").ok());
  NED_CHECK(catalog.Register("db", std::move(db)).ok());
  auto before = catalog.GetSnapshot("db");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->version, 1u);
  // Unterminated quote: the reload parses on a private copy and fails
  // before anything publishes.
  Status st = catalog.ReloadCsv("db", "A", "aid,name\na1,\"open\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  // Atomic on failure: same version, and a fresh snapshot still serves the
  // pre-reload data (not a half-applied copy with A dropped).
  EXPECT_EQ(catalog.VersionOf("db"), 1u);
  auto after = catalog.GetSnapshot("db");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->version, 1u);
  EXPECT_EQ(after->db.get(), before->db.get());
  auto rel = after->db->GetRelation("A");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 1u);
  // A subsequent good reload still works and bumps the version once.
  NED_CHECK(catalog.ReloadCsv("db", "A", "aid,name\na1,Homer\na2,Marge\n").ok());
  EXPECT_EQ(catalog.VersionOf("db"), 2u);
}

TEST(Catalog, FailedReloadOfNewRelationCreatesNothing) {
  Catalog catalog;
  Database db;
  NED_CHECK(db.LoadCsv("A", "aid\na1\n").ok());
  NED_CHECK(catalog.Register("db", std::move(db)).ok());
  Status st = catalog.ReloadCsv("db", "B", "x,y\n1\n");  // ragged row
  ASSERT_FALSE(st.ok());
  auto snap = catalog.GetSnapshot("db");
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap->db->HasRelation("B"));
  EXPECT_EQ(catalog.VersionOf("db"), 1u);
}

}  // namespace
}  // namespace ned
