/// \file suggest_test.cpp
/// \brief Tests for modification-based hints, including the paper's own
/// introduction example: relaxing `A.dob > 800BC` to `>=` makes the missing
/// answer appear.

#include <gtest/gtest.h>

#include "core/suggest.h"
#include "datasets/running_example.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MustCompile;
using testing::MustEvaluate;

TEST(Suggest, RunningExampleRelaxesTheDobSelection) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto engine = NedExplainEngine::Create(&*tree, &*db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(RunningExampleQuestionHomer());
  ASSERT_TRUE(result.ok());

  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints->size(), 1u);
  const ModificationHint& hint = (*hints)[0];
  EXPECT_EQ(hint.node->kind, OpKind::kSelect);
  ASSERT_NE(hint.relaxed_predicate, nullptr);
  // The paper's intro: A.dob > 800BC becomes A.dob >= 800BC.
  EXPECT_EQ(hint.relaxed_predicate->ToString(), "A.dob >= -800");
  EXPECT_EQ(hint.admits, (std::vector<std::string>{"A.aid:a1"}));
  EXPECT_NE(hint.description.find("relax"), std::string::npos);
}

TEST(Suggest, AppliedRelaxationMakesTheAnswerAppear) {
  // Re-run the query with the suggested predicate: Homer must now be in the
  // result with average price 30 (> 25, satisfying the original question).
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  QueryTree relaxed = MustCompile(
      "SELECT A.name, avg(B.price) AS ap FROM A, AB, B "
      "WHERE A.aid = AB.aid AND B.bid = AB.bid AND A.dob >= -800 "
      "GROUP BY A.name",
      *db);
  auto out = MustEvaluate(relaxed, *db);
  bool homer_found = false;
  for (const auto& t : out) {
    if (t.values.at(0).as_string() == "Homer") {
      homer_found = true;
      EXPECT_DOUBLE_EQ(t.values.at(1).as_double(), 30.0);
    }
  }
  EXPECT_TRUE(homer_found);

  // And the engine now reports the question as answered (survivors).
  auto engine = NedExplainEngine::Create(&relaxed, &*db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(RunningExampleQuestionHomer());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.detailed.empty());
  EXPECT_GT(result->per_ctuple[0].survivors_at_root, 0u);
}

TEST(Suggest, LessThanRelaxationRaisesTheUpperBound) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "id,v\n1,5\n2,9\n3,2\n").ok());
  QueryTree tree = MustCompile("SELECT T.id FROM T WHERE T.v < 4", db);
  CTuple tc;
  tc.Add("T.id", Value::Int(2));  // v=9 blocked
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(WhyNotQuestion(tc));
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints->size(), 1u);
  ASSERT_NE((*hints)[0].relaxed_predicate, nullptr);
  EXPECT_EQ((*hints)[0].relaxed_predicate->ToString(), "T.v <= 9");
}

TEST(Suggest, EqualityWidensToDisjunction) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "id,color\n1,red\n2,blue\n").ok());
  QueryTree tree = MustCompile("SELECT T.id FROM T WHERE T.color = 'red'", db);
  CTuple tc;
  tc.Add("T.id", Value::Int(2));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(WhyNotQuestion(tc));
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints->size(), 1u);
  ASSERT_NE((*hints)[0].relaxed_predicate, nullptr);
  EXPECT_NE((*hints)[0].description.find("IN {red, blue}"), std::string::npos);
}

TEST(Suggest, JoinHintNamesTheMissingPartnerKeys) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  auto uc = registry->Find("Crime6");
  ASSERT_TRUE(uc.ok());
  auto tree = registry->BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto engine =
      NedExplainEngine::Create(&*tree, &registry->database("crime"));
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain((*uc)->question);
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints->size(), 1u);
  EXPECT_EQ((*hints)[0].node->kind, OpKind::kJoin);
  // The kidnappings' sectors (5 and 8) are named as the missing partners.
  EXPECT_NE((*hints)[0].description.find("C2.sector=5"), std::string::npos);
  EXPECT_NE((*hints)[0].description.find("C2.sector=8"), std::string::npos);
}

TEST(Suggest, SecondaryAnswersBecomeRootCauseHints) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  auto uc = registry->Find("Crime5");
  ASSERT_TRUE(uc.ok());
  auto tree = registry->BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto engine =
      NedExplainEngine::Create(&*tree, &registry->database("crime"));
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain((*uc)->question);
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  bool starvation_hint = false;
  for (const auto& hint : *hints) {
    if (hint.description.find("starves") != std::string::npos) {
      starvation_hint = true;
    }
  }
  EXPECT_TRUE(starvation_hint);
}

TEST(Suggest, CondAlphaFlipYieldsSelectionHintWithoutTuples) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  auto uc = registry->Find("Gov6");
  ASSERT_TRUE(uc.ok());
  auto tree = registry->BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto engine = NedExplainEngine::Create(&*tree, &registry->database("gov"));
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain((*uc)->question);
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  ASSERT_FALSE(hints->empty());
  EXPECT_EQ((*hints)[0].node->kind, OpKind::kSelect);
  EXPECT_TRUE((*hints)[0].admits.empty());
}

TEST(Suggest, NoAnswerNoHints) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto engine = NedExplainEngine::Create(&*tree, &*db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("A.name", Value::Str("Sophocles"));  // present in the result
  auto result = engine->Explain(WhyNotQuestion(tc));
  ASSERT_TRUE(result.ok());
  auto hints = SuggestModifications(*engine, *result);
  ASSERT_TRUE(hints.ok());
  EXPECT_TRUE(hints->empty());
}

}  // namespace
}  // namespace ned
