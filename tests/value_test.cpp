/// \file value_test.cpp
/// \brief Unit + property tests for the typed value model.

#include <gtest/gtest.h>

#include "relational/value.h"

namespace ned {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(Value, Constructors) {
  EXPECT_EQ(Value::Int(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_TRUE(Value::Int(0).is_numeric());
  EXPECT_TRUE(Value::Real(0).is_numeric());
  EXPECT_FALSE(Value::Str("0").is_numeric());
}

TEST(Value, NumericCoercionInComparison) {
  auto c = Value::Compare(Value::Int(2), Value::Real(2.0));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0);
  c = Value::Compare(Value::Real(1.5), Value::Int(2));
  ASSERT_TRUE(c.has_value());
  EXPECT_LT(*c, 0);
}

TEST(Value, StringsCompareLexicographically) {
  auto c = Value::Compare(Value::Str("Audrey"), Value::Str("B"));
  ASSERT_TRUE(c.has_value());
  EXPECT_LT(*c, 0);  // 'A' < 'B' (use case Crime8's P1.name < 'B')
}

TEST(Value, NullAndMixedTypesIncomparable) {
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int(1)).has_value());
  EXPECT_FALSE(Value::Compare(Value::Int(1), Value::Null()).has_value());
  EXPECT_FALSE(Value::Compare(Value::Str("1"), Value::Int(1)).has_value());
}

TEST(Value, SatisfiesIsFalseOnNull) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(Value::Satisfies(Value::Null(), op, Value::Int(1)));
    EXPECT_FALSE(Value::Satisfies(Value::Int(1), op, Value::Null()));
  }
}

TEST(Value, ExactEqualityTreatsNullEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // exact, no coercion
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(Value, ParseLenient) {
  EXPECT_EQ(Value::ParseLenient("42").type(), ValueType::kInt);
  EXPECT_EQ(Value::ParseLenient("42").as_int(), 42);
  EXPECT_EQ(Value::ParseLenient("-7").as_int(), -7);
  EXPECT_EQ(Value::ParseLenient("2.5").type(), ValueType::kDouble);
  EXPECT_EQ(Value::ParseLenient("abc").type(), ValueType::kString);
  EXPECT_EQ(Value::ParseLenient("12abc").type(), ValueType::kString);
  EXPECT_TRUE(Value::ParseLenient("").is_null());
}

TEST(Value, HashConsistentWithNumericEquality) {
  // int 5 and double 5.0 join under coercion, so they must hash identically.
  EXPECT_EQ(Value::Int(5).Hash(), Value::Real(5.0).Hash());
  EXPECT_EQ(Value::Int(-3).Hash(), Value::Real(-3.0).Hash());
}

TEST(Value, HashDistinguishesTypicalValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::Str("a").Hash(), Value::Str("b").Hash());
}

TEST(CompareOp, NegateAndMirror) {
  EXPECT_EQ(NegateOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(NegateOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateOp(CompareOp::kLe), CompareOp::kGt);
  EXPECT_EQ(MirrorOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(MirrorOp(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(MirrorOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(std::string(CompareOpSymbol(CompareOp::kNe)), "!=");
}

// ---- parameterized property sweeps -------------------------------------------

struct OpCase {
  CompareOp op;
};

class CompareOpProperty : public ::testing::TestWithParam<CompareOp> {};

/// Satisfies(a, op, b) XOR Satisfies(a, negate(op), b) whenever comparable.
TEST_P(CompareOpProperty, NegationIsComplementOnComparables) {
  CompareOp op = GetParam();
  std::vector<Value> values = {Value::Int(1), Value::Int(2), Value::Real(1.5),
                               Value::Real(2.0)};
  for (const Value& a : values) {
    for (const Value& b : values) {
      bool direct = Value::Satisfies(a, op, b);
      bool negated = Value::Satisfies(a, NegateOp(op), b);
      EXPECT_NE(direct, negated) << a.ToString() << " vs " << b.ToString();
    }
  }
}

/// Satisfies(a, op, b) == Satisfies(b, mirror(op), a).
TEST_P(CompareOpProperty, MirrorSwapsOperands) {
  CompareOp op = GetParam();
  std::vector<Value> values = {Value::Int(1), Value::Int(2), Value::Str("x"),
                               Value::Str("y"), Value::Real(1.5)};
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(Value::Satisfies(a, op, b),
                Value::Satisfies(b, MirrorOp(op), a))
          << a.ToString() << " " << CompareOpSymbol(op) << " " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, CompareOpProperty,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

}  // namespace
}  // namespace ned
