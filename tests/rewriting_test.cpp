/// \file rewriting_test.cpp
/// \brief Behaviour across equivalent query rewritings (the paper's second
/// future-work item: answers invariant w.r.t. logical rewritings).
///
/// The paper notes (end of Sec. 3.2) that the *subqueries* returned may vary
/// across equivalent canonical trees. Two properties do hold and are locked
/// in here:
///   1. the query *result* is plan-invariant, hence so is whether a
///      compatible tuple survives;
///   2. by the completeness claim (a pair per compatible tuple), the set of
///      *blamed Dir tuples* is the same for every equivalent tree -- only
///      the blamed operator may move.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MustCompile;
using testing::MustExplain;

const UseCaseRegistry& Registry() {
  static const UseCaseRegistry* registry = [] {
    auto r = UseCaseRegistry::Build();
    NED_CHECK(r.ok());
    return new UseCaseRegistry(std::move(r).value());
  }();
  return *registry;
}

/// All FROM-order permutations of a spec's single block.
std::vector<QuerySpec> FromPermutations(const QuerySpec& spec) {
  NED_CHECK(spec.blocks.size() == 1);
  std::vector<TableRef> tables = spec.blocks[0].tables;
  std::sort(tables.begin(), tables.end(),
            [](const TableRef& a, const TableRef& b) { return a.alias < b.alias; });
  std::vector<QuerySpec> out;
  do {
    QuerySpec permuted = spec;
    permuted.blocks[0].tables = tables;
    out.push_back(std::move(permuted));
  } while (std::next_permutation(
      tables.begin(), tables.end(),
      [](const TableRef& a, const TableRef& b) { return a.alias < b.alias; }));
  return out;
}

/// Evaluates the result of a tree as a sorted multiset of tuple strings.
std::vector<std::string> ResultSignature(const QueryTree& tree,
                                         const Database& db) {
  auto out = testing::MustEvaluate(tree, db);
  std::vector<std::string> rows;
  for (const auto& t : out) rows.push_back(t.values.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The blamed Dir tuples, by display name (plan-independent identity), plus
/// "⊥" markers per blamed subquery kind for cond-alpha entries.
std::multiset<std::string> BlamedSignature(const NedExplainResult& result,
                                           const QueryInput& input) {
  std::multiset<std::string> out;
  for (const auto& entry : result.answer.detailed) {
    out.insert(entry.is_bottom() ? "⊥" : input.DisplayTuple(entry.dir_tuple));
  }
  return out;
}

class RewritingInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(RewritingInvariance, ResultAndBlamedTuplesArePlanInvariant) {
  auto uc = Registry().Find(GetParam());
  ASSERT_TRUE(uc.ok());
  const Database& db = Registry().database((*uc)->db_name);

  std::vector<QuerySpec> permutations = FromPermutations((*uc)->spec);
  ASSERT_FALSE(permutations.empty());

  std::optional<std::vector<std::string>> result_signature;
  std::optional<std::multiset<std::string>> blamed_signature;
  for (const QuerySpec& spec : permutations) {
    auto tree = Canonicalize(spec, db);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    std::vector<std::string> rows = ResultSignature(*tree, db);
    if (!result_signature.has_value()) {
      result_signature = rows;
    } else {
      EXPECT_EQ(rows, *result_signature) << "query result depends on the plan";
    }

    auto engine = NedExplainEngine::Create(&*tree, &db);
    ASSERT_TRUE(engine.ok());
    auto result = engine->Explain((*uc)->question);
    ASSERT_TRUE(result.ok());
    std::multiset<std::string> blamed =
        BlamedSignature(*result, engine->last_input());
    if (!blamed_signature.has_value()) {
      blamed_signature = blamed;
    } else {
      EXPECT_EQ(blamed, *blamed_signature)
          << "the set of blamed compatible tuples must not depend on the "
             "join order (only the blamed subquery may move)";
    }
  }
}

// Use cases with single-block queries and up to 4 relations (4! = 24
// permutations each). Aggregation cases are included: the breakpoint view
// changes shape with the join order, but blamed tuples must not.
INSTANTIATE_TEST_SUITE_P(UseCases, RewritingInvariance,
                         ::testing::Values("Crime1", "Crime2", "Crime5",
                                           "Crime6", "Crime8", "Crime10",
                                           "Imdb1", "Imdb2", "Gov1", "Gov3",
                                           "Gov4"));

TEST(RewritingInvariance, SelectionOrderDoesNotChangeBlamedTuples) {
  // Permute the WHERE conjunct order of Q6 (Gov1).
  auto uc = Registry().Find("Gov1");
  ASSERT_TRUE(uc.ok());
  const Database& db = Registry().database("gov");
  QuerySpec spec = (*uc)->spec;
  ASSERT_EQ(spec.blocks[0].selections.size(), 2u);

  std::optional<std::multiset<std::string>> signature;
  for (int flip = 0; flip < 2; ++flip) {
    QuerySpec permuted = spec;
    if (flip == 1) {
      std::swap(permuted.blocks[0].selections[0],
                permuted.blocks[0].selections[1]);
    }
    auto tree = Canonicalize(permuted, db);
    ASSERT_TRUE(tree.ok());
    auto engine = NedExplainEngine::Create(&*tree, &db);
    ASSERT_TRUE(engine.ok());
    auto result = engine->Explain((*uc)->question);
    ASSERT_TRUE(result.ok());
    auto blamed = BlamedSignature(*result, engine->last_input());
    if (!signature.has_value()) {
      signature = blamed;
    } else {
      EXPECT_EQ(blamed, *signature);
    }
  }
}

TEST(RewritingInvariance, FrontierAndNaivePlacementBlameTheSameTuples) {
  // The canonicalization ablation at the answer level: selection placement
  // moves the blamed operator (selection vs join) but not the blamed tuples.
  for (const char* name : {"Gov1", "Gov3", "Crime6"}) {
    auto uc = Registry().Find(name);
    ASSERT_TRUE(uc.ok());
    const Database& db = Registry().database((*uc)->db_name);
    CanonicalizeOptions naive;
    naive.place_selections_at_frontier = false;

    std::optional<std::multiset<std::string>> signature;
    for (bool frontier : {true, false}) {
      auto tree =
          Canonicalize((*uc)->spec, db, frontier ? CanonicalizeOptions{} : naive);
      ASSERT_TRUE(tree.ok());
      auto engine = NedExplainEngine::Create(&*tree, &db);
      ASSERT_TRUE(engine.ok());
      auto result = engine->Explain((*uc)->question);
      ASSERT_TRUE(result.ok());
      auto blamed = BlamedSignature(*result, engine->last_input());
      if (!signature.has_value()) {
        signature = blamed;
      } else {
        EXPECT_EQ(blamed, *signature) << name;
      }
    }
  }
}

}  // namespace
}  // namespace ned
