/// \file obs_test.cpp
/// \brief Battery for the observability layer (src/obs/): registry
/// semantics, histogram quantile exactness, concurrency (run under TSan in
/// CI), and byte-exact exposition goldens under tests/golden/metrics_*,
/// regenerated with `obs_test --update-golden`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/timer.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ned {

/// Set by main() on --update-golden: rewrite tests/golden/metrics_*.golden
/// instead of comparing against them.
bool g_update_golden = false;

namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricSnapshot;
using obs::MetricsRegistry;
using obs::MetricType;

// ---- counters and gauges --------------------------------------------------

TEST(Counter, IncrementAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

// ---- identity -------------------------------------------------------------

TEST(Registry, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs", {{"event", "ok"}});
  Counter* b = registry.GetCounter("reqs", {{"event", "ok"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("reqs", {{"event", "shed"}});
  EXPECT_NE(a, other);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("reqs", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(Registry, HandlesAreStableAcrossRegistrations) {
  // unique_ptr-owned metrics: registering many more series must never move
  // an existing one.
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("stable", {{"i", "first"}});
  first->Increment(7);
  for (int i = 0; i < 1000; ++i) {
    registry.GetCounter("stable", {{"i", std::to_string(i)}})->Increment();
  }
  EXPECT_EQ(first, registry.GetCounter("stable", {{"i", "first"}}));
  EXPECT_EQ(first->value(), 7u);
}

TEST(RegistryDeathTest, TypeMismatchIsAProgrammingError) {
  MetricsRegistry registry;
  registry.GetCounter("mixed");
  EXPECT_DEATH(registry.GetGauge("mixed"), "mixed");
}

TEST(RegistryDeathTest, HistogramBoundsMismatchIsAProgrammingError) {
  MetricsRegistry registry;
  registry.GetHistogram("lat", {{"k", "a"}}, {1, 2, 3});
  EXPECT_DEATH(registry.GetHistogram("lat", {{"k", "b"}}, {1, 2, 4}), "lat");
}

// ---- histograms -----------------------------------------------------------

TEST(Histogram, ValueEqualToBoundaryLandsInThatBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("le", {}, {10, 20, 30});
  h->Observe(10);  // le=10 bucket, not le=20
  h->Observe(11);  // le=20
  h->Observe(30);  // le=30
  h->Observe(31);  // +Inf overflow
  HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 10 + 11 + 30 + 31);
}

TEST(Histogram, QuantileIsExactFromBucketCounts) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {}, {100, 250, 500, 1000});
  // 98 observations <= 100, one in (250, 500], one in (500, 1000]:
  for (int i = 0; i < 98; ++i) h->Observe(50);
  h->Observe(300);
  h->Observe(700);
  // p50: rank = ceil(0.5 * 100) = 50 -> cumulative reaches 50 in bucket 100.
  EXPECT_EQ(h->Quantile(0.5), 100);
  // p99: rank = 99 -> 98 in the first bucket, 99th lands in le=500.
  EXPECT_EQ(h->Quantile(0.99), 500);
  // p100: rank = 100 -> le=1000.
  EXPECT_EQ(h->Quantile(1.0), 1000);
}

TEST(Histogram, QuantileEdgeCases) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("qe", {}, {10});
  // Empty histogram proves no bound: 0 by convention.
  EXPECT_EQ(h->Quantile(0.5), 0);
  // A single observation answers every quantile (rank clamps to >= 1).
  h->Observe(3);
  EXPECT_EQ(h->Quantile(0.0), 10);
  EXPECT_EQ(h->Quantile(1.0), 10);
  // Overflow-bucket observations have no finite upper bound.
  h->Observe(11);
  EXPECT_EQ(h->Quantile(1.0), std::numeric_limits<int64_t>::max());
}

TEST(Histogram, DefaultLatencyLadderIsAscending) {
  const std::vector<int64_t>& bounds = obs::DefaultLatencyBoundsUs();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_EQ(bounds.front(), 100);        // 100us floor
  EXPECT_EQ(bounds.back(), 10'000'000);  // 10s ceiling
}

// ---- concurrency (meaningful under TSan) ----------------------------------

TEST(Concurrency, EightThreadHammerYieldsExactTotals) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  Counter* counter = registry.GetCounter("hammer_total");
  Histogram* histogram = registry.GetHistogram("hammer_us", {}, {10, 100});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(t % 3 == 0 ? 5 : 50);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  // 3 of 8 threads (t = 0, 3, 6) observed the small value.
  EXPECT_EQ(snap.counts[0], static_cast<uint64_t>(3) * kPerThread);
  EXPECT_EQ(snap.counts[1], static_cast<uint64_t>(5) * kPerThread);
  EXPECT_EQ(snap.counts[2], 0u);
}

TEST(Concurrency, ConcurrentRegistrationIsSafeAndConverges) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("conc", {{"i", std::to_string(i % 10)}})
            ->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = 0;
  for (const MetricSnapshot& m : registry.Collect()) {
    if (m.name == "conc") total += m.counter_value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 200);
}

TEST(Concurrency, SnapshotsAreConsistentUnderConcurrentWrites) {
  // A histogram snapshot taken mid-hammer must still satisfy its own
  // invariant (count == sum of bucket counts -- it is derived) and only ever
  // move forward between collections.
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("live_us", {}, {10, 100});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) histogram->Observe(5);
  });
  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot snap = histogram->Snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t c : snap.counts) bucket_total += c;
    ASSERT_EQ(snap.count, bucket_total);
    ASSERT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(Concurrency, CollectRacesWritersWithoutTearing) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("race_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Increment();
  });
  for (int i = 0; i < 100; ++i) {
    std::vector<MetricSnapshot> snapshot = registry.Collect();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].name, "race_total");
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---- collection -----------------------------------------------------------

TEST(Collect, SortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", {{"x", "2"}});
  registry.GetCounter("b_total", {{"x", "1"}});
  registry.GetGauge("a_depth");
  std::vector<MetricSnapshot> snapshot = registry.Collect();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a_depth");
  EXPECT_EQ(snapshot[1].labels, obs::LabelSet({{"x", "1"}}));
  EXPECT_EQ(snapshot[2].labels, obs::LabelSet({{"x", "2"}}));
}

TEST(Collect, CollectorCallbackRefreshesMirrors) {
  MetricsRegistry registry;
  int external_state = 7;
  registry.RegisterCollector([&] {
    registry.GetGauge("mirror")->Set(external_state);
  });
  EXPECT_EQ(registry.Collect()[0].gauge_value, 7);
  external_state = 9;
  EXPECT_EQ(registry.Collect()[0].gauge_value, 9);
}

// ---- exposition -----------------------------------------------------------

/// A small registry covering every exposition feature: plain counter,
/// labeled counter series, negative gauge, label-value escaping, an empty
/// and a populated histogram (the populated one with overflow, so JSON p99
/// renders null). Values are fixed -- the goldens pin the exact bytes.
std::vector<MetricSnapshot> ExpositionFixture() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("ned_requests_total", {{"event", "accepted"}})
        ->Increment(12);
    r->GetCounter("ned_requests_total", {{"event", "shed"}})->Increment(3);
    r->GetGauge("ned_queue_depth")->Set(-2);
    r->GetCounter("ned_escaped_total",
                  {{"path", "a\\b \"quoted\"\nnext"}})
        ->Increment();
    r->GetHistogram("ned_empty_us", {}, {100, 1000});
    Histogram* h = r->GetHistogram("ned_latency_us", {}, {100, 1000, 10000});
    for (int i = 0; i < 4; ++i) h->Observe(50);
    h->Observe(100);    // boundary: le=100
    h->Observe(700);    // le=1000
    h->Observe(20000);  // +Inf -> p99 has no finite bound -> JSON null
    return r;
  }();
  return registry->Collect();
}

std::string GoldenPath(const std::string& name) {
  return std::string(NED_TEST_GOLDEN_DIR) + "/" + name + ".golden";
}

void CompareOrUpdateGolden(const std::string& name,
                           const std::string& rendered) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    ASSERT_TRUE(AtomicWriteFile(path, rendered).ok()) << path;
    return;
  }
  auto golden = ReadFile(path);
  ASSERT_TRUE(golden.ok()) << "missing golden file " << path
                           << "; generate with: obs_test --update-golden";
  EXPECT_EQ(*golden, rendered)
      << name << " drifted from " << path
      << "\n(if the change is intentional, rerun with --update-golden "
         "and review the file diff)";
}

TEST(Exposition, PrometheusMatchesGolden) {
  CompareOrUpdateGolden("metrics_prometheus",
                        obs::FormatPrometheus(ExpositionFixture()));
}

TEST(Exposition, JsonMatchesGolden) {
  CompareOrUpdateGolden("metrics_json", obs::FormatJson(ExpositionFixture()));
}

TEST(Exposition, PrometheusHistogramIsCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h_us", {}, {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  const std::string text = obs::FormatPrometheus(registry.Collect());
  EXPECT_NE(text.find("# TYPE h_us histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("h_us_bucket{le=\"10\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("h_us_bucket{le=\"100\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("h_us_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("h_us_sum 555"), std::string::npos) << text;
  EXPECT_NE(text.find("h_us_count 3"), std::string::npos) << text;
}

TEST(Exposition, RenderingIsDeterministic) {
  const std::string a = obs::FormatPrometheus(ExpositionFixture());
  const std::string b = obs::FormatPrometheus(ExpositionFixture());
  EXPECT_EQ(a, b);
  EXPECT_EQ(obs::FormatJson(ExpositionFixture()),
            obs::FormatJson(ExpositionFixture()));
}

}  // namespace
}  // namespace ned

// Custom main (instead of gtest_main) so `--update-golden` can rewrite the
// exposition snapshots under tests/golden/ in place.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") ned::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
