/// \file algebra_test.cpp
/// \brief Unit tests for renamings, operator nodes and query-tree
/// finalization (schema derivation, TabQ ordering, validation).

#include <gtest/gtest.h>

#include "algebra/query_tree.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;

// ---- renaming -----------------------------------------------------------------

TEST(Renaming, ApplyMapsBothOrigins) {
  Renaming nu;
  nu.Add({"A", "aid"}, {"AB", "aid"}, "aid");
  EXPECT_EQ(nu.Apply({"A", "aid"}).FullName(), "aid");
  EXPECT_EQ(nu.Apply({"AB", "aid"}).FullName(), "aid");
  EXPECT_EQ(nu.Apply({"A", "name"}).FullName(), "A.name");
}

TEST(Renaming, FindByNewName) {
  Renaming nu;
  nu.Add({"A", "aid"}, {"AB", "aid"}, "aid");
  auto triple = nu.FindByNewName("aid");
  ASSERT_TRUE(triple.has_value());
  EXPECT_EQ(triple->a1.FullName(), "A.aid");
  EXPECT_FALSE(nu.FindByNewName("xyz").has_value());
}

// ---- operator nodes --------------------------------------------------------------

TEST(OperatorNode, FactoriesSetKindAndChildren) {
  auto scan = OperatorNode::MakeScan("R1", "R");
  EXPECT_EQ(scan->kind, OpKind::kScan);
  EXPECT_TRUE(scan->is_leaf());
  auto select = OperatorNode::MakeSelect(std::move(scan),
                                         Gt(Col("R1", "k"), Lit(int64_t{5})));
  EXPECT_EQ(select->kind, OpKind::kSelect);
  EXPECT_EQ(select->children.size(), 1u);
  EXPECT_FALSE(select->is_binary());
}

TEST(OperatorNode, DescribeIsInformative) {
  auto scan = OperatorNode::MakeScan("C2", "C");
  EXPECT_EQ(scan->Describe(), "scan C as C2");
  auto same = OperatorNode::MakeScan("C", "C");
  EXPECT_EQ(same->Describe(), "scan C");
}

TEST(OperatorNode, SubtreeRelations) {
  Database db = MakeTinyDb();
  QueryTree tree = testing::MustCompile(
      "SELECT R.v FROM R, S WHERE R.k = S.k AND R.id > 0", db);
  const OperatorNode* root = tree.root();
  const OperatorNode* leaf = tree.bottom_up()[0];
  EXPECT_TRUE(OperatorNode::IsInSubtree(root, leaf));
  EXPECT_FALSE(OperatorNode::IsInSubtree(leaf, root));
  EXPECT_TRUE(OperatorNode::IsSameOrAncestor(leaf, root));
  EXPECT_TRUE(OperatorNode::IsInSubtree(root, root));
}

// ---- query tree finalization -------------------------------------------------------

std::unique_ptr<OperatorNode> ScanR() { return OperatorNode::MakeScan("R", "R"); }
std::unique_ptr<OperatorNode> ScanS() { return OperatorNode::MakeScan("S", "S"); }

TEST(QueryTree, ScanSchemaIsQualifiedByAlias) {
  Database db = MakeTinyDb();
  auto tree = QueryTree::Create(OperatorNode::MakeScan("R2", "R"), db);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->target_type().ToString(), "{R2.id, R2.k, R2.v}");
}

TEST(QueryTree, SelectKeepsType) {
  Database db = MakeTinyDb();
  auto tree = QueryTree::Create(
      OperatorNode::MakeSelect(ScanR(), Gt(Col("R", "k"), Lit(int64_t{5}))), db);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->target_type().size(), 3u);
}

TEST(QueryTree, SelectRejectsForeignAttributes) {
  Database db = MakeTinyDb();
  auto tree = QueryTree::Create(
      OperatorNode::MakeSelect(ScanR(), Gt(Col("S", "w"), Lit(int64_t{5}))), db);
  EXPECT_FALSE(tree.ok());
}

TEST(QueryTree, JoinRenamesAndMergesTypes) {
  Database db = MakeTinyDb();
  Renaming nu;
  nu.Add({"R", "k"}, {"S", "k"}, "k");
  auto tree = QueryTree::Create(
      OperatorNode::MakeJoin(ScanR(), ScanS(), nu), db);
  ASSERT_TRUE(tree.ok());
  // R.id, k, R.v from the left; S.id, S.w from the right (S.k merged into k).
  EXPECT_EQ(tree->target_type().ToString(), "{R.id, k, R.v, S.id, S.w}");
}

TEST(QueryTree, JoinRejectsUnknownRenamingAttr) {
  Database db = MakeTinyDb();
  Renaming nu;
  nu.Add({"R", "nope"}, {"S", "k"}, "k");
  EXPECT_FALSE(QueryTree::Create(
                   OperatorNode::MakeJoin(ScanR(), ScanS(), nu), db)
                   .ok());
}

TEST(QueryTree, DuplicateAliasRejected) {
  Database db = MakeTinyDb();
  Renaming nu;
  nu.Add({"R", "k"}, {"R", "k"}, "k");
  auto join = OperatorNode::MakeJoin(ScanR(), ScanR(), nu);
  EXPECT_FALSE(QueryTree::Create(std::move(join), db).ok());
}

TEST(QueryTree, UnionRequiresMatchingTypes) {
  Database db = MakeTinyDb();
  // project both sides to one column, rename to a common name.
  auto left = OperatorNode::MakeProject(ScanR(), {Attribute("R", "v")});
  auto right = OperatorNode::MakeProject(ScanS(), {Attribute("S", "w")});
  Renaming nu;
  nu.Add({"R", "v"}, {"S", "w"}, "val");
  auto tree = QueryTree::Create(
      OperatorNode::MakeUnion(std::move(left), std::move(right), nu), db);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->target_type().ToString(), "{val}");

  // Mismatched arity fails.
  auto left2 = OperatorNode::MakeProject(ScanR(), {Attribute("R", "v")});
  auto right2 = ScanS();
  Renaming nu2;
  nu2.Add({"R", "v"}, {"S", "w"}, "val");
  EXPECT_FALSE(QueryTree::Create(OperatorNode::MakeUnion(std::move(left2),
                                                         std::move(right2), nu2),
                                 db)
                   .ok());
}

TEST(QueryTree, AggregateSchemaIsGroupPlusOutputs) {
  Database db = MakeTinyDb();
  auto tree = QueryTree::Create(
      OperatorNode::MakeAggregate(ScanR(), {Attribute("R", "k")},
                                  {{AggFn::kSum, Attribute("R", "id"), "s"}}),
      db);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->target_type().ToString(), "{R.k, s}");
}

TEST(QueryTree, AggregateValidatesAttributes) {
  Database db = MakeTinyDb();
  EXPECT_FALSE(QueryTree::Create(
                   OperatorNode::MakeAggregate(
                       ScanR(), {Attribute("R", "nope")},
                       {{AggFn::kSum, Attribute("R", "id"), "s"}}),
                   db)
                   .ok());
  EXPECT_FALSE(QueryTree::Create(
                   OperatorNode::MakeAggregate(ScanR(), {Attribute("R", "k")},
                                               {}),
                   db)
                   .ok());
}

TEST(QueryTree, BottomUpOrderIsDecreasingDepthLeftToRight) {
  Database db = MakeTinyDb();
  // pi( sigma( R join S ) ): levels pi=0, sigma=1, join=2, scans=3.
  Renaming nu;
  nu.Add({"R", "k"}, {"S", "k"}, "k");
  auto join = OperatorNode::MakeJoin(ScanR(), ScanS(), nu);
  auto select = OperatorNode::MakeSelect(std::move(join),
                                         Gt(Col("R", "id"), Lit(int64_t{0})));
  auto project =
      OperatorNode::MakeProject(std::move(select), {Attribute("R", "v")});
  auto tree = QueryTree::Create(std::move(project), db);
  ASSERT_TRUE(tree.ok());
  const auto& order = tree->bottom_up();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0]->alias, "R");     // deepest, leftmost
  EXPECT_EQ(order[1]->alias, "S");
  EXPECT_EQ(order[2]->kind, OpKind::kJoin);
  EXPECT_EQ(order[3]->kind, OpKind::kSelect);
  EXPECT_EQ(order[4]->kind, OpKind::kProject);
  // Names follow the order; levels decrease.
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i]->name, "m" + std::to_string(i));
    if (i > 0) {
      EXPECT_LE(order[i]->level, order[i - 1]->level);
    }
  }
  // Parent pointers are consistent.
  for (const OperatorNode* node : order) {
    for (const auto& child : node->children) {
      EXPECT_EQ(child->parent, node);
      EXPECT_EQ(child->level, node->level + 1);
    }
  }
}

TEST(QueryTree, FindByName) {
  Database db = MakeTinyDb();
  QueryTree tree = testing::MustCompile("SELECT R.v FROM R WHERE R.k > 5", db);
  EXPECT_NE(tree.FindByName("m0"), nullptr);
  EXPECT_EQ(tree.FindByName("m99"), nullptr);
}

TEST(QueryTree, AliasToTableRecordsEtaQ) {
  Database db = MakeTinyDb();
  QueryTree tree = testing::MustCompile(
      "SELECT R1.v FROM R R1, R R2 WHERE R1.k = R2.k", db);
  const auto& eta = tree.alias_to_table();
  EXPECT_EQ(eta.at("R1"), "R");
  EXPECT_EQ(eta.at("R2"), "R");
}

TEST(QueryTree, WrongChildCountRejected) {
  Database db = MakeTinyDb();
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kSelect;  // no child attached
  node->predicate = Gt(Col("R", "k"), Lit(int64_t{1}));
  EXPECT_FALSE(QueryTree::Create(std::move(node), db).ok());
}

}  // namespace
}  // namespace ned
