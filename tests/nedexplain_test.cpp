/// \file nedexplain_test.cpp
/// \brief End-to-end tests of the NedExplain engine against the paper's
/// worked examples (Ex. 1.1, 2.6, 2.7, 3.2) plus engine-level invariants.

#include <gtest/gtest.h>

#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/running_example.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

#include <map>
#include <set>

namespace ned {
namespace {

using testing::MustCompile;
using testing::MustExplain;

struct RunningExample {
  Database db;
  QueryTree tree;
};

RunningExample MakeRunningExample() {
  auto db = BuildRunningExampleDb();
  NED_CHECK(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  NED_CHECK(tree.ok());
  return {std::move(db).value(), std::move(tree).value()};
}

// ---- the paper's running example -----------------------------------------------

TEST(NedExplain, Example26HomerBlamedOnTheSelection) {
  RunningExample ex = MakeRunningExample();
  auto engine = NedExplainEngine::Create(&ex.tree, &ex.db);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain(RunningExampleQuestionHomer());
  ASSERT_TRUE(result.ok());

  // Ex. 2.6: the detailed answer is {(t4, Q3)} where Q3 is the dob
  // selection; no (⊥, ...) entry is reported because the concrete pair
  // subsumes it.
  ASSERT_EQ(result->answer.detailed.size(), 1u);
  const DetailedEntry& entry = result->answer.detailed[0];
  EXPECT_FALSE(entry.is_bottom());
  EXPECT_EQ(engine->last_input().DisplayTuple(entry.dir_tuple), "A.aid:a1");
  EXPECT_EQ(entry.subquery->kind, OpKind::kSelect);
  EXPECT_EQ(result->answer.condensed.size(), 1u);
  EXPECT_TRUE(result->answer.secondary.empty());
}

TEST(NedExplain, Example11SecondCTupleBlamesTheAidJoin) {
  // "the join between A and AB prunes the only author with name different
  // than Homer or Sophocles" (Euripides has no books).
  RunningExample ex = MakeRunningExample();
  auto result = MustExplain(ex.tree, ex.db, RunningExampleQuestion());
  ASSERT_EQ(result.per_ctuple.size(), 2u);
  const WhyNotAnswer& second = result.per_ctuple[1].answer;
  ASSERT_EQ(second.detailed.size(), 1u);
  EXPECT_EQ(second.detailed[0].subquery->kind, OpKind::kJoin);
  // The blamed join is the deeper one (A with AB).
  EXPECT_EQ(second.detailed[0].subquery->renaming.triples()[0].anew, "aid");
}

TEST(NedExplain, Example32EarlyTermination) {
  RunningExample ex = MakeRunningExample();
  auto result = MustExplain(ex.tree, ex.db, RunningExampleQuestionHomer());
  ASSERT_EQ(result.per_ctuple.size(), 1u);
  EXPECT_TRUE(result.per_ctuple[0].early_terminated);
  // Termination happens at the root (the aggregate), as in Ex. 3.2.
  ASSERT_NE(result.per_ctuple[0].terminated_at, nullptr);
  EXPECT_EQ(result.per_ctuple[0].terminated_at->kind, OpKind::kAggregate);
}

TEST(NedExplain, EarlyTerminationOffGivesSameAnswer) {
  RunningExample ex = MakeRunningExample();
  NedExplainOptions off;
  off.enable_early_termination = false;
  auto with = MustExplain(ex.tree, ex.db, RunningExampleQuestion());
  auto without = MustExplain(ex.tree, ex.db, RunningExampleQuestion(), off);
  ASSERT_EQ(with.answer.detailed.size(), without.answer.detailed.size());
  for (size_t i = 0; i < with.answer.detailed.size(); ++i) {
    EXPECT_EQ(with.answer.detailed[i].dir_tuple,
              without.answer.detailed[i].dir_tuple);
    EXPECT_EQ(with.answer.detailed[i].subquery->name,
              without.answer.detailed[i].subquery->name);
  }
}

TEST(NedExplain, QuestionMatchingExistingTupleSurvives) {
  // (Sophocles, 49) is in the result: no picky subquery, survivors > 0.
  RunningExample ex = MakeRunningExample();
  CTuple tc;
  tc.Add("A.name", Value::Str("Sophocles"));
  auto result = MustExplain(ex.tree, ex.db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.detailed.empty());
  ASSERT_EQ(result.per_ctuple.size(), 1u);
  EXPECT_GT(result.per_ctuple[0].survivors_at_root, 0u);
}

TEST(NedExplain, Example27SecondaryAnswer) {
  // Replace B with B join TOC where TOC is empty: the detailed answer blames
  // the top join for t4, and the secondary answer surfaces the join that
  // emptied the B side (Q1' in Ex. 2.7).
  Database db;
  NED_CHECK(db.LoadCsv("A", "aid,name,dob\na1,Homer,-800\n").ok());
  NED_CHECK(db.LoadCsv("AB", "aid,bid\na1,b1\n").ok());
  NED_CHECK(db.LoadCsv("B", "bid,title,price\nb1,Odyssey,15\n").ok());
  NED_CHECK(db.LoadCsv("TOC", "bid,chapter\n").ok());  // empty
  QueryTree tree = MustCompile(
      "SELECT A.name, B.title FROM A, AB, B, TOC "
      "WHERE A.aid = AB.aid AND B.bid = AB.bid AND TOC.bid = B.bid",
      db);
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  // Homer is blamed on some join (his chain dies when TOC's emptiness
  // propagates), and the secondary answer contains the join with TOC.
  ASSERT_FALSE(result.answer.detailed.empty());
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kJoin);
  ASSERT_FALSE(result.answer.secondary.empty());
  bool toc_join = false;
  for (const OperatorNode* node : result.answer.secondary) {
    if (node->kind == OpKind::kJoin) toc_join = true;
  }
  EXPECT_TRUE(toc_join);
}

TEST(NedExplain, CondAlphaFlipYieldsBottomEntry) {
  // Crime9/Gov6 analogue: the question constrains the group attribute (in P)
  // and the aggregate; the filtered rows live in X (indirect compatibles),
  // so the flip at the selection above V yields a (⊥, sigma) entry -- the
  // compatible P tuple itself keeps valid successors.
  Database db;
  NED_CHECK(db.LoadCsv("P", "id,name\n1,x\n2,y\n").ok());
  NED_CHECK(db.LoadCsv("X", "pid,stage,v\n1,ok,10\n1,bad,5\n2,ok,1\n").ok());
  QueryTree tree = MustCompile(
      "SELECT P.name, sum(X.v) AS s FROM P, X "
      "WHERE P.id = X.pid AND X.stage = 'ok' GROUP BY P.name",
      db);
  CTuple tc;
  tc.Add("P.name", Value::Str("x"))
      .AddVar("s", "z")
      .Where("z", CompareOp::kEq, Value::Int(15));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_TRUE(result.answer.detailed[0].is_bottom());
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kSelect);
}

TEST(NedExplain, CondAlphaFlipWithBlockedDirTupleEmitsConcretePair) {
  // When the blocked row is itself directly compatible (the question names
  // its group attribute in the same relation), the concrete pair subsumes
  // the ⊥ entry (Alg. 3 / Ex. 2.6).
  Database db;
  NED_CHECK(db.LoadCsv("T", "g,stage,v\nx,ok,10\nx,bad,5\ny,ok,1\n").ok());
  QueryTree tree = MustCompile(
      "SELECT T.g, sum(T.v) AS s FROM T WHERE T.stage = 'ok' GROUP BY T.g",
      db);
  CTuple tc;
  tc.Add("T.g", Value::Str("x"))
      .AddVar("s", "z")
      .Where("z", CompareOp::kEq, Value::Int(15));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_FALSE(result.answer.detailed[0].is_bottom());
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kSelect);
}

TEST(NedExplain, NoCondAlphaFlipWhenValueNeverReachable) {
  // The sum never equals 100 anywhere: no flip, no answer, survivors exist.
  Database db;
  NED_CHECK(db.LoadCsv("T", "g,stage,v\nx,ok,10\n").ok());
  QueryTree tree = MustCompile(
      "SELECT T.g, sum(T.v) AS s FROM T WHERE T.stage = 'ok' GROUP BY T.g",
      db);
  CTuple tc;
  tc.Add("T.g", Value::Str("x"))
      .AddVar("s", "z")
      .Where("z", CompareOp::kEq, Value::Int(100));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.detailed.empty());
}

TEST(NedExplain, BlockedBelowVIsReportedWithTupleId) {
  // Crime10 analogue: the compatible tuple dies inside V (a join), so the
  // detailed answer carries its id rather than ⊥.
  Database db;
  NED_CHECK(db.LoadCsv("P", "id,name\n1,Roger\n2,Anna\n").ok());
  NED_CHECK(db.LoadCsv("X", "pid,v\n2,5\n").ok());
  QueryTree tree = MustCompile(
      "SELECT P.name, sum(X.v) AS s FROM P, X WHERE P.id = X.pid "
      "GROUP BY P.name",
      db);
  CTuple tc;
  tc.Add("P.name", Value::Str("Roger"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_FALSE(result.answer.detailed[0].is_bottom());
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kJoin);
}

TEST(NedExplain, DisjunctionUnionsAnswers) {
  RunningExample ex = MakeRunningExample();
  auto result = MustExplain(ex.tree, ex.db, RunningExampleQuestion());
  // Two c-tuples, two distinct picky subqueries (Ex. 1.1): union of both.
  EXPECT_EQ(result.answer.condensed.size(), 2u);
  EXPECT_EQ(result.unrenamed.ctuples().size(), 2u);
  EXPECT_EQ(result.dir_total, 2u);  // t4 and t6
}

TEST(NedExplain, EmptyDirYieldsEmptyAnswer) {
  RunningExample ex = MakeRunningExample();
  CTuple tc;
  tc.Add("A.name", Value::Str("Nobody"));
  auto result = MustExplain(ex.tree, ex.db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.detailed.empty());
  EXPECT_TRUE(result.answer.condensed.empty());
  EXPECT_EQ(result.dir_total, 0u);
}

TEST(NedExplain, PhasesAreAllCharged) {
  RunningExample ex = MakeRunningExample();
  auto result = MustExplain(ex.tree, ex.db, RunningExampleQuestionHomer());
  EXPECT_GT(result.phases.Nanos(phase::kInitialization), 0);
  EXPECT_GT(result.phases.Nanos(phase::kCompatibleFinder), 0);
  EXPECT_GT(result.phases.Nanos(phase::kSuccessorsFinder), 0);
  EXPECT_GT(result.phases.Nanos(phase::kBottomUp), 0);
}

TEST(NedExplain, TabQDumpRendersWhenRequested) {
  RunningExample ex = MakeRunningExample();
  NedExplainOptions options;
  options.keep_tabq_dump = true;
  auto result =
      MustExplain(ex.tree, ex.db, RunningExampleQuestionHomer(), options);
  ASSERT_EQ(result.per_ctuple.size(), 1u);
  EXPECT_NE(result.per_ctuple[0].tabq_dump.find("Compatibles"),
            std::string::npos);
  // Default: no dump.
  auto plain = MustExplain(ex.tree, ex.db, RunningExampleQuestionHomer());
  EXPECT_TRUE(plain.per_ctuple[0].tabq_dump.empty());
}

TEST(NedExplain, ReportRendering) {
  RunningExample ex = MakeRunningExample();
  auto engine = NedExplainEngine::Create(&ex.tree, &ex.db);
  ASSERT_TRUE(engine.ok());
  WhyNotQuestion question = RunningExampleQuestionHomer();
  auto result = engine->Explain(question);
  ASSERT_TRUE(result.ok());
  std::string report = RenderExplainReport(*engine, question, *result);
  EXPECT_NE(report.find("Homer"), std::string::npos);
  EXPECT_NE(report.find("Breakpoint view"), std::string::npos);
  EXPECT_NE(report.find("detailed"), std::string::npos);
  std::string phases = RenderPhaseBreakdown(result->phases);
  EXPECT_NE(phases.find("Initialization"), std::string::npos);
}

TEST(NedExplain, MultipleAggregatesRejected) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "g,v\nx,1\n").ok());
  // Build a union of two aggregate blocks; the engine (not the tree) rejects.
  QueryTree tree = MustCompile(
      "SELECT T.g, sum(T.v) AS s FROM T GROUP BY T.g "
      "UNION SELECT T2.g, sum(T2.v) AS s2 FROM T T2 GROUP BY T2.g",
      db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  EXPECT_FALSE(engine.ok());
}

// ---- engine invariants over every use case (Property 2.1 etc.) -----------------

class UseCaseInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  static const UseCaseRegistry& Registry() {
    static const UseCaseRegistry* registry = [] {
      auto r = UseCaseRegistry::Build();
      NED_CHECK(r.ok());
      return new UseCaseRegistry(std::move(r).value());
    }();
    return *registry;
  }
};

TEST_P(UseCaseInvariants, Property21AtMostOnePickySubqueryPerDirTuple) {
  auto uc = Registry().Find(GetParam());
  ASSERT_TRUE(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto result =
      MustExplain(*tree, Registry().database((*uc)->db_name), (*uc)->question);
  for (const auto& part : result.per_ctuple) {
    std::map<TupleId, const OperatorNode*> blamed;
    for (const auto& entry : part.answer.detailed) {
      if (entry.is_bottom()) continue;
      auto [it, inserted] = blamed.emplace(entry.dir_tuple, entry.subquery);
      EXPECT_TRUE(inserted || it->second == entry.subquery)
          << "Dir tuple blamed at two subqueries (violates Property 2.1)";
    }
  }
}

TEST_P(UseCaseInvariants, DetailedEntriesReferenceDirTuplesAndTreeNodes) {
  auto uc = Registry().Find(GetParam());
  ASSERT_TRUE(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto engine =
      NedExplainEngine::Create(&*tree, &Registry().database((*uc)->db_name));
  ASSERT_TRUE(engine.ok());
  auto result = engine->Explain((*uc)->question);
  ASSERT_TRUE(result.ok());
  for (const auto& part : result->per_ctuple) {
    for (const auto& entry : part.answer.detailed) {
      // Every blamed subquery is a node of this tree.
      bool in_tree = false;
      for (const OperatorNode* node : tree->bottom_up()) {
        if (node == entry.subquery) in_tree = true;
      }
      EXPECT_TRUE(in_tree);
      if (!entry.is_bottom()) {
        EXPECT_EQ(part.compat.dir.count(entry.dir_tuple), 1u)
            << "detailed entry references a non-compatible tuple";
      }
    }
    // Condensed is exactly the distinct subqueries of detailed.
    std::set<const OperatorNode*> distinct;
    for (const auto& entry : part.answer.detailed) distinct.insert(entry.subquery);
    EXPECT_EQ(part.answer.condensed.size(), distinct.size());
  }
}

TEST_P(UseCaseInvariants, EveryDirTupleIsBlamedOrSurvivesOrStarves) {
  auto uc = Registry().Find(GetParam());
  ASSERT_TRUE(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto result =
      MustExplain(*tree, Registry().database((*uc)->db_name), (*uc)->question);
  for (const auto& part : result.per_ctuple) {
    if (!part.compat.cond_alpha.empty()) continue;  // ⊥-entries allowed
    // Without aggregation: if nothing survives to the root, every compatible
    // Dir tuple must be accounted for by some detailed pair.
    if (part.survivors_at_root > 0) continue;
    std::set<TupleId> blamed;
    for (const auto& entry : part.answer.detailed) {
      blamed.insert(entry.dir_tuple);
    }
    for (const auto& [alias, ids] : part.compat.dir_by_alias) {
      for (TupleId id : ids) {
        EXPECT_EQ(blamed.count(id), 1u)
            << "Dir tuple " << alias << " row neither blamed nor surviving";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUseCases, UseCaseInvariants,
    ::testing::Values("Crime1", "Crime2", "Crime3", "Crime4", "Crime5",
                      "Crime6", "Crime7", "Crime8", "Crime9", "Crime10",
                      "Imdb1", "Imdb2", "Gov1", "Gov2", "Gov3", "Gov4", "Gov5",
                      "Gov6", "Gov7"));

}  // namespace
}  // namespace ned
