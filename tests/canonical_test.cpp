/// \file canonical_test.cpp
/// \brief Tests for the canonical tree construction (paper Sec. 3.1, 2b):
/// selection placement at the visibility frontier, breakpoint view V, union
/// assembly, and the naive-placement ablation switch.

#include <gtest/gtest.h>

#include "core/nedexplain.h"
#include "sql/parser.h"
#include "datasets/running_example.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;

/// Finds the unique node of a kind (asserts uniqueness).
const OperatorNode* TheNode(const QueryTree& tree, OpKind kind) {
  const OperatorNode* found = nullptr;
  for (const OperatorNode* node : tree.bottom_up()) {
    if (node->kind == kind) {
      NED_CHECK(found == nullptr);
      found = node;
    }
  }
  return found;
}

TEST(Canonicalizer, SingleTableSelectionsAboveScan) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R WHERE R.k > 5 AND R.id = 1",
                               db);
  // scan -> sigma -> sigma -> pi, selections in WHERE order bottom-up.
  const auto& order = tree.bottom_up();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0]->kind, OpKind::kScan);
  EXPECT_EQ(order[1]->kind, OpKind::kSelect);
  EXPECT_EQ(order[2]->kind, OpKind::kSelect);
  EXPECT_EQ(order[3]->kind, OpKind::kProject);
  EXPECT_TRUE(order[0]->is_breakpoint);  // leaves are breakpoints without agg
}

TEST(Canonicalizer, SelectionsPushToTheirLeaf) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.v FROM R, S WHERE R.k = S.k AND S.w = 'x'", db);
  const OperatorNode* select = TheNode(tree, OpKind::kSelect);
  ASSERT_NE(select, nullptr);
  // The S selection sits directly above the S scan, below the join.
  ASSERT_EQ(select->children.size(), 1u);
  EXPECT_EQ(select->children[0]->kind, OpKind::kScan);
  EXPECT_EQ(select->children[0]->alias, "S");
  EXPECT_EQ(select->parent->kind, OpKind::kJoin);
}

TEST(Canonicalizer, MultiAliasSelectionAboveTheJoin) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R1.v FROM R R1, R R2 WHERE R1.k = R2.k AND R1.id != R2.id", db);
  const OperatorNode* select = TheNode(tree, OpKind::kSelect);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->children[0]->kind, OpKind::kJoin);
}

TEST(Canonicalizer, NaivePlacementStacksSelectionsOnTop) {
  Database db = MakeTinyDb();
  CanonicalizeOptions naive;
  naive.place_selections_at_frontier = false;
  QueryTree tree = MustCompile(
      "SELECT R.v FROM R, S WHERE R.k = S.k AND S.w = 'x'", db, naive);
  const OperatorNode* select = TheNode(tree, OpKind::kSelect);
  ASSERT_NE(select, nullptr);
  // Naive mode: the selection sits above the full join.
  EXPECT_EQ(select->children[0]->kind, OpKind::kJoin);
}

TEST(Canonicalizer, BothPlacementsComputeTheSameResult) {
  Database db = MakeTinyDb();
  const char* sql = "SELECT R.v FROM R, S WHERE R.k = S.k AND S.w = 'x'";
  CanonicalizeOptions naive;
  naive.place_selections_at_frontier = false;
  QueryTree frontier_tree = MustCompile(sql, db);
  QueryTree naive_tree = MustCompile(sql, db, naive);
  auto a = testing::MustEvaluate(frontier_tree, db);
  auto b = testing::MustEvaluate(naive_tree, db);
  EXPECT_EQ(testing::Column(a, frontier_tree.target_type(), "R.v"),
            testing::Column(b, naive_tree.target_type(), "R.v"));
}

TEST(Canonicalizer, RunningExampleMatchesFig1c) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  // Fig. 1(c): alpha over sigma(dob) over ((A join AB) join B); the dob
  // selection was pulled *above* the full join because V must cover A.name
  // and B.price.
  const OperatorNode* root = tree->root();
  EXPECT_EQ(root->kind, OpKind::kAggregate);
  const OperatorNode* select = root->children[0].get();
  EXPECT_EQ(select->kind, OpKind::kSelect);
  const OperatorNode* join_top = select->children[0].get();
  EXPECT_EQ(join_top->kind, OpKind::kJoin);
  EXPECT_TRUE(join_top->is_breakpoint);
  EXPECT_EQ(join_top->children[1]->alias, "B");
  const OperatorNode* join_low = join_top->children[0].get();
  EXPECT_EQ(join_low->kind, OpKind::kJoin);
  EXPECT_EQ(join_low->children[0]->alias, "A");
  EXPECT_EQ(join_low->children[1]->alias, "AB");
}

TEST(Canonicalizer, BreakpointIsDeepestCoveringNode) {
  // Grouping on the *join* attribute: after renaming, the group attribute
  // `k` only exists from the join onward, so V is the join node.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.k, sum(R.id) AS s FROM R, S WHERE R.k = S.k GROUP BY R.k", db);
  auto v = DetermineBreakpoint(tree);
  ASSERT_TRUE(v.ok());
  ASSERT_NE(*v, nullptr);
  EXPECT_EQ((*v)->kind, OpKind::kJoin);
}

TEST(Canonicalizer, BreakpointIsMinimalForNonJoinAttributes) {
  // Grouping and aggregating attributes untouched by the renaming: the
  // deepest covering node is the R scan itself.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.v, sum(R.id) AS s FROM R, S WHERE R.k = S.k GROUP BY R.v", db);
  auto v = DetermineBreakpoint(tree);
  ASSERT_TRUE(v.ok());
  ASSERT_NE(*v, nullptr);
  EXPECT_EQ((*v)->kind, OpKind::kScan);
  EXPECT_EQ((*v)->alias, "R");
}

TEST(Canonicalizer, NoAggregateMeansNoBreakpoint) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R", db);
  auto v = DetermineBreakpoint(tree);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, nullptr);
}

TEST(Canonicalizer, AggSelectionsStackAboveV) {
  // Aggregation needing both relations: V = the join; the R-local selection
  // must sit above V, not above the R scan.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.v, count(S.w) AS c FROM R, S "
      "WHERE R.k = S.k AND R.id > 0 GROUP BY R.v",
      db);
  const OperatorNode* select = TheNode(tree, OpKind::kSelect);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->children[0]->kind, OpKind::kJoin);
  EXPECT_TRUE(select->children[0]->is_breakpoint);
}

TEST(Canonicalizer, DisconnectedAliasesCrossProduct) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v, S.w FROM R, S", db);
  const OperatorNode* join = TheNode(tree, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->renaming.empty());
  auto out = testing::MustEvaluate(tree, db);
  EXPECT_EQ(out.size(), 6u);  // 3 x 2
}

TEST(Canonicalizer, UnionBuildsRenamedRoot) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "x\n1\n").ok());
  NED_CHECK(db.LoadCsv("B", "y\n2\n").ok());
  auto ast_tree = CompileSql("SELECT A.x FROM A UNION SELECT B.y FROM B", db);
  ASSERT_TRUE(ast_tree.ok()) << ast_tree.status().ToString();
  EXPECT_EQ(ast_tree->root()->kind, OpKind::kUnion);
  // Default union output name comes from the left side.
  EXPECT_EQ(ast_tree->target_type().ToString(), "{x}");
  auto out = testing::MustEvaluate(*ast_tree, db);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Canonicalizer, UnionCustomNames) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "x\n1\n").ok());
  NED_CHECK(db.LoadCsv("B", "y\n1\n").ok());
  auto ast = ParseSql("SELECT A.x FROM A UNION SELECT B.y FROM B");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok());
  spec->union_names = {"name"};
  auto tree = Canonicalize(*spec, db);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->target_type().ToString(), "{name}");
  // Value-equal rows from both sides merge (set semantics).
  auto out = testing::MustEvaluate(*tree, db);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Canonicalizer, UnionArityMismatchRejected) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "x,z\n1,2\n").ok());
  NED_CHECK(db.LoadCsv("B", "y\n2\n").ok());
  EXPECT_FALSE(
      CompileSql("SELECT A.x, A.z FROM A UNION SELECT B.y FROM B", db).ok());
}

TEST(Canonicalizer, ChainedRenamingsSubstitute) {
  // Q3-style chain: C2.sector renamed by the first join, then W joins the
  // *renamed* attribute -- the second triple must reference the new name.
  Database db;
  NED_CHECK(db.LoadCsv("C", "id,type,sector\n1,Aiding,5\n2,Theft,5\n").ok());
  NED_CHECK(db.LoadCsv("W", "id,name,sector\n1,Sue,5\n").ok());
  QueryTree tree = MustCompile(
      "SELECT W.name, C2.type FROM C C2, C C1, W "
      "WHERE C2.sector = C1.sector AND W.sector = C2.sector",
      db);
  auto out = testing::MustEvaluate(tree, db);
  EXPECT_EQ(out.size(), 2u);  // (Sue,Aiding) (Sue,Theft)
}

TEST(Canonicalizer, EmptySpecRejected) {
  Database db = MakeTinyDb();
  EXPECT_FALSE(Canonicalize(QuerySpec{}, db).ok());
  QueryBlock empty_block;
  EXPECT_FALSE(Canonicalize(QuerySpec{{empty_block}, {}, {}}, db).ok());
}

}  // namespace
}  // namespace ned
