/// \file net_test.cpp
/// \brief The serving edge (src/net/): parser robustness under every byte
/// split and under seeded bit-flips, the JSON wire codec, and the poll
/// server over real loopback sockets -- keep-alive pipelining, ManualClock
/// -exact idle/slowloris eviction, the 503/504 status mapping with
/// Retry-After headers, drain-while-connected, and byte-identity of all 19
/// paper use cases served over the wire against in-process Submit at
/// intra-query thread counts {1, 2, 4}.
///
/// Built with -DNED_TSAN=ON these tests double as the ThreadSanitizer audit
/// of the event loop's completion queue: service workers push resolved
/// responses into it concurrently with the loop thread draining it.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datasets/use_cases.h"
#include "net/http.h"
#include "net/server.h"
#include "net/wire.h"
#include "relational/catalog.h"
#include "service/service.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using net::HttpLimits;
using net::HttpParser;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::ServerOptions;
using net::WireResponse;
using testing::MakeTinyDb;

// ---- parser: byte-boundary split sweep --------------------------------------

const char kCanonicalPost[] =
    "POST /v1/whynot HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: application/json\r\n"
    "X-Ned-Priority: batch\r\n"
    "Content-Length: 17\r\n"
    "\r\n"
    "{\"db\": \"crime\"}\r\n";

/// Feeds `data` to a fresh parser in two chunks split at `at` and returns
/// the parser for inspection.
HttpParser ParseSplit(std::string_view data, size_t at) {
  HttpParser parser;
  std::string_view head = data.substr(0, at);
  size_t used = parser.Feed(head);
  EXPECT_LE(used, head.size());
  if (!parser.done()) {
    used += parser.Feed(data.substr(used));
  }
  return parser;
}

TEST(ParserSplit, CompletePostAtEveryByteBoundary) {
  const std::string_view data = kCanonicalPost;
  // Reference: the whole request in one feed.
  HttpParser whole;
  const size_t consumed = whole.Feed(data);
  ASSERT_EQ(whole.state(), HttpParser::State::kComplete);
  ASSERT_EQ(consumed, data.size());
  for (size_t at = 0; at <= data.size(); ++at) {
    HttpParser parser = ParseSplit(data, at);
    ASSERT_EQ(parser.state(), HttpParser::State::kComplete)
        << "split at " << at;
    const HttpRequest& req = parser.request();
    EXPECT_EQ(req.method, "POST") << "split at " << at;
    EXPECT_EQ(req.target, "/v1/whynot");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.Header("content-type"), "application/json");
    EXPECT_EQ(req.Header("x-ned-priority"), "batch");
    EXPECT_EQ(req.body, "{\"db\": \"crime\"}\r\n");
  }
}

TEST(ParserSplit, OneByteAtATime) {
  const std::string_view data = kCanonicalPost;
  HttpParser parser;
  for (size_t i = 0; i < data.size(); ++i) {
    const size_t used = parser.Feed(data.substr(i, 1));
    if (parser.done()) {
      EXPECT_EQ(i, data.size() - 1);
      break;
    }
    ASSERT_EQ(used, 1u) << "byte " << i;
  }
  ASSERT_EQ(parser.state(), HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "{\"db\": \"crime\"}\r\n");
}

TEST(ParserSplit, PipelinedPairAtEveryByteBoundary) {
  const std::string pair =
      StrCat(kCanonicalPost, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  for (size_t at = 0; at <= pair.size(); ++at) {
    HttpParser parser;
    std::string_view data = pair;
    size_t offset = 0;
    // First request: feed the first chunk, then (if needed) the rest.
    offset += parser.Feed(data.substr(0, at));
    if (!parser.done()) offset += parser.Feed(data.substr(offset));
    ASSERT_EQ(parser.state(), HttpParser::State::kComplete)
        << "split at " << at;
    EXPECT_EQ(parser.request().method, "POST");
    // Unconsumed bytes belong to the second request.
    parser.Reset();
    offset += parser.Feed(data.substr(offset));
    ASSERT_EQ(parser.state(), HttpParser::State::kComplete)
        << "split at " << at;
    EXPECT_EQ(parser.request().method, "GET");
    EXPECT_EQ(parser.request().target, "/healthz");
    EXPECT_EQ(offset, pair.size());
  }
}

// ---- parser: seeded bit-flip fuzzing ---------------------------------------

TEST(ParserFuzz, SeededBitFlipsNeverCrashAndDiagnoseCleanly) {
  const std::string_view base = kCanonicalPost;
  for (uint64_t trial = 0; trial < 150; ++trial) {
    Rng rng(0x9e3779b9'00000000ULL + trial);
    std::string mutated(base);
    // One to three single-bit flips per trial.
    const int flips = static_cast<int>(rng.UniformInt(1, 3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(
          mutated[pos] ^ static_cast<char>(1 << rng.UniformInt(0, 7)));
    }
    // Byte-at-a-time: the hostile split schedule on top of hostile bytes.
    HttpParser parser;
    size_t offset = 0;
    while (offset < mutated.size() && !parser.done()) {
      const size_t used =
          parser.Feed(std::string_view(mutated).substr(offset, 1));
      if (used == 0 && !parser.done()) break;  // defensive; must not loop
      offset += used;
    }
    // The only legal outcomes: a complete request (the flip landed in the
    // body or a header value), a clean 400/413, or "need more bytes" (the
    // flip inflated Content-Length). Reaching here at all proves no crash.
    if (parser.state() == HttpParser::State::kError) {
      EXPECT_TRUE(parser.error_status() == 400 || parser.error_status() == 413)
          << "trial " << trial << ": status " << parser.error_status();
      EXPECT_FALSE(parser.error_detail().empty());
    }
  }
}

TEST(ParserLimits, OversizedHeaderSectionIs413) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  std::string flood = "GET / HTTP/1.1\r\n";
  flood += "X-Pad: " + std::string(512, 'a') + "\r\n\r\n";
  parser.Feed(flood);
  ASSERT_EQ(parser.state(), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(ParserLimits, CrlfLessFloodIsBoundedBy413) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  HttpParser parser(limits);
  // No newline ever arrives: the line buffer must not grow unboundedly.
  parser.Feed(std::string(4096, 'G'));
  ASSERT_EQ(parser.state(), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(ParserLimits, DeclaredOversizedBodyIs413BeforeAnyBodyByte) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(ParserLimits, SmugglingVectorsAre400) {
  for (const char* request :
       {"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\n",
        "GET / HTTP/1.1\r\nA: b\r\n folded\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        "GET  / HTTP/1.1\r\n\r\n"}) {
    HttpParser parser;
    parser.Feed(request);
    ASSERT_EQ(parser.state(), HttpParser::State::kError) << request;
    EXPECT_EQ(parser.error_status(), 400) << request;
  }
}

// ---- wire codec ------------------------------------------------------------

WhyNotRequest RichRequest() {
  WhyNotRequest req;
  req.key = "k-\"quoted\"\n";
  req.db_name = "crime";
  req.sql = "SELECT P.Name FROM P WHERE P.Age > 30";
  CTuple tc;
  tc.Add("P.Name", Value::Str("Hank"));
  tc.AddVar("P.Age", "x");
  tc.Where("x", CompareOp::kGt, Value::Int(30));
  req.question = WhyNotQuestion(tc);
  req.priority = Priority::kBackground;
  req.client_id = "client-7";
  req.deadline_ms = 1234;
  req.row_budget = 99;
  req.memory_budget = 1 << 20;
  req.seed = 42;
  req.threads = 2;
  req.bypass_answer_cache = true;
  req.collect_trace = true;
  req.engine_options.enable_early_termination = false;
  return req;
}

TEST(WireCodec, RequestRoundTripPreservesEveryField) {
  const WhyNotRequest req = RichRequest();
  const std::string body = net::RenderWhyNotRequestJson(req);
  auto parsed = net::ParseWhyNotRequestJson(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->key, req.key);
  EXPECT_EQ(parsed->db_name, req.db_name);
  EXPECT_EQ(parsed->sql, req.sql);
  EXPECT_EQ(parsed->question.ToString(), req.question.ToString());
  EXPECT_EQ(parsed->priority, req.priority);
  EXPECT_EQ(parsed->client_id, req.client_id);
  EXPECT_EQ(parsed->deadline_ms, req.deadline_ms);
  EXPECT_EQ(parsed->row_budget, req.row_budget);
  EXPECT_EQ(parsed->memory_budget, req.memory_budget);
  EXPECT_EQ(parsed->seed, req.seed);
  EXPECT_EQ(parsed->threads, req.threads);
  EXPECT_EQ(parsed->bypass_answer_cache, req.bypass_answer_cache);
  EXPECT_EQ(parsed->collect_trace, req.collect_trace);
  EXPECT_EQ(parsed->engine_options.enable_early_termination,
            req.engine_options.enable_early_termination);
  // Render -> parse -> render is a fixed point.
  EXPECT_EQ(net::RenderWhyNotRequestJson(*parsed), body);
}

TEST(WireCodec, ValueTypesSurviveTheWire) {
  WhyNotRequest req;
  req.db_name = "d";
  req.sql = "SELECT R.a FROM R";
  CTuple tc;
  tc.Add("R.a", Value::Int(3));
  CTuple tc2;
  tc2.AddVar("R.b", "y");
  tc2.Where("y", CompareOp::kLt, Value::Real(3.0));
  WhyNotQuestion q(tc);
  q.AddCTuple(tc2);
  req.question = q;
  const std::string body = net::RenderWhyNotRequestJson(req);
  // The integral double must render with a ".0" so the parse comes back as
  // kDouble, not kInt -- the question's semantics depend on the type.
  EXPECT_NE(body.find("3.0"), std::string::npos) << body;
  auto parsed = net::ParseWhyNotRequestJson(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->question.ToString(), req.question.ToString());
}

TEST(WireCodec, UnknownAndMalformedBodiesAreDiagnosed) {
  EXPECT_FALSE(net::ParseWhyNotRequestJson("").ok());
  EXPECT_FALSE(net::ParseWhyNotRequestJson("{").ok());
  EXPECT_FALSE(net::ParseWhyNotRequestJson("[]").ok());
  // Unknown top-level field: rejected, not silently ignored.
  EXPECT_FALSE(net::ParseWhyNotRequestJson(
                   "{\"db\": \"d\", \"sql\": \"SELECT R.a FROM R\", "
                   "\"question\": [{\"fields\": [{\"attr\": \"R.a\", "
                   "\"const\": 1}]}], \"bogus\": true}")
                   .ok());
  // Missing required fields.
  EXPECT_FALSE(net::ParseWhyNotRequestJson("{\"db\": \"d\"}").ok());
  // All wire errors map to the 400 family.
  const auto bad = net::ParseWhyNotRequestJson("{");
  EXPECT_EQ(net::HttpStatusForCode(bad.status().code()), 400);
}

// ---- socket helpers --------------------------------------------------------

/// Minimal blocking loopback client with a receive timeout, so a server
/// bug fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    NED_CHECK(fd_ >= 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one full response; fails the test on timeout/EOF/parse error.
  HttpResponse Read() {
    HttpResponse response;
    char chunk[8192];
    while (true) {
      if (!buffer_.empty()) {
        auto parsed = net::ParseHttpResponse(buffer_, &response);
        NED_CHECK_MSG(parsed.ok(), "malformed server response");
        if (*parsed > 0) {
          buffer_.erase(0, *parsed);
          return response;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      NED_CHECK_MSG(n > 0, "connection closed or timed out mid-response");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True if the peer has closed (EOF observed within `timeout_ms`).
  bool WaitForClose(int64_t timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char c;
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, &c, 1, MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
      if (n > 0) buffer_ += c;  // stray bytes (e.g. a 408) are fine
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  /// True while no EOF and no bytes pending (probe without blocking).
  bool StillOpenAndQuiet() {
    char c;
    const ssize_t n = ::recv(fd_, &c, 1, MSG_DONTWAIT);
    if (n == 0) return false;
    if (n > 0) {
      buffer_ += c;
      return false;
    }
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }

  std::string TakeBuffered() { return std::exchange(buffer_, std::string()); }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string PostWhyNot(const WhyNotRequest& request,
                       const std::vector<std::pair<std::string, std::string>>&
                           extra_headers = {}) {
  const std::string body = net::RenderWhyNotRequestJson(request);
  std::string out = StrCat(
      "POST /v1/whynot HTTP/1.1\r\nHost: t\r\nContent-Length: ", body.size(),
      "\r\n");
  for (const auto& [k, v] : extra_headers) out += StrCat(k, ": ", v, "\r\n");
  out += StrCat("\r\n", body);
  return out;
}

constexpr char kGetHealthz[] = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";

/// Two `n`-row relations whose cross join pins a worker for a while (same
/// shape service_test uses to block the pool).
Database MakeCrossJoinDb(int n) {
  Database db;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < n; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  return db;
}

std::shared_ptr<Catalog> MakeNetCatalog() {
  auto catalog = std::make_shared<Catalog>();
  NED_CHECK(catalog->Register("tiny", MakeTinyDb()).ok());
  NED_CHECK(catalog->Register("big", MakeCrossJoinDb(1500)).ok());
  return catalog;
}

WhyNotRequest TinyRequest(const std::string& key) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "tiny";
  req.sql = "SELECT R.v FROM R, S WHERE R.k = S.k";
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  req.question = WhyNotQuestion(tc);
  return req;
}

WhyNotRequest SlowRequest(const std::string& key, int64_t deadline_ms) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "big";
  req.sql = "SELECT R.a FROM R, S WHERE R.a >= 0";
  CTuple tc;
  tc.Add("R.a", Value::Int(0));
  req.question = WhyNotQuestion(tc);
  req.deadline_ms = deadline_ms;
  return req;
}

void WaitForEmptyQueue(const WhyNotService& service) {
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---- server: routing, keep-alive, end-to-end -------------------------------

TEST(Server, RoutesHealthMetricsAndErrors) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(kGetHealthz));
  HttpResponse health = client.Read();
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  ASSERT_TRUE(client.Send("GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_EQ(client.Read().status, 200);

  ASSERT_TRUE(client.Send("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
  HttpResponse metrics = client.Read();
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.body.find("ned_net_connections_accepted_total"),
            std::string::npos);

  ASSERT_TRUE(client.Send("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_EQ(client.Read().status, 404);

  ASSERT_TRUE(client.Send("GET /v1/whynot HTTP/1.1\r\nHost: t\r\n\r\n"));
  HttpResponse not_allowed = client.Read();
  EXPECT_EQ(not_allowed.status, 405);
  EXPECT_EQ(not_allowed.Header("allow"), "POST");

  // The connection survived all five exchanges: keep-alive works.
  ASSERT_TRUE(client.Send(kGetHealthz));
  EXPECT_EQ(client.Read().status, 200);
  server.Stop();
}

TEST(Server, KeepAlivePipeliningPreservesOrder) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Three requests in ONE write: an async /v1/whynot sandwiched between two
  // sync endpoints. Responses must come back in request order -- the loop
  // pauses input processing while the middle one is in flight.
  const std::string burst = StrCat(kGetHealthz, PostWhyNot(TinyRequest("p1")),
                                   "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_TRUE(client.Send(burst));
  HttpResponse first = client.Read();
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "ok\n");
  HttpResponse second = client.Read();
  EXPECT_EQ(second.status, 200);
  auto wire = net::ParseWhyNotResponseJson(second.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->key, "p1");
  EXPECT_EQ(wire->code, StatusCode::kOk);
  HttpResponse third = client.Read();
  EXPECT_EQ(third.status, 200);
  EXPECT_EQ(third.body, "ready\n");
  server.Stop();
}

TEST(Server, WhyNotHeadersWinOverBodyFields) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  WhyNotRequest request = TinyRequest("body-key");
  ASSERT_TRUE(client.Send(PostWhyNot(
      request, {{"X-Ned-Idempotency-Key", "header-key"},
                {"X-Ned-Priority", "background"}})));
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 200);
  auto wire = net::ParseWhyNotResponseJson(response.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->key, "header-key");  // the header overrode the body key
  EXPECT_EQ(wire->code, StatusCode::kOk);

  // Same key again: the idempotency book replays it (deduped at the wire).
  ASSERT_TRUE(client.Send(PostWhyNot(
      request, {{"X-Ned-Idempotency-Key", "header-key"}})));
  auto replay = net::ParseWhyNotResponseJson(client.Read().body);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->key, "header-key");
  EXPECT_TRUE(replay->deduped);
  server.Stop();
}

TEST(Server, MalformedHttpGets400ThenClose) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("BROKEN REQUEST LINE WITH SPACES\r\n\r\n"));
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 400);
  EXPECT_TRUE(client.WaitForClose(2000));
  server.Stop();
}

TEST(Server, OversizedBodyGets413ThenClose) {
  WhyNotService service(MakeNetCatalog(), {});
  ServerOptions options;
  options.limits.max_body_bytes = 1024;
  HttpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // The declared length alone trips the limit -- no body bytes needed.
  ASSERT_TRUE(client.Send(
      "POST /v1/whynot HTTP/1.1\r\nHost: t\r\nContent-Length: 2048\r\n\r\n"));
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 413);
  EXPECT_TRUE(client.WaitForClose(2000));
  server.Stop();
}

TEST(Server, UndecodableWhyNotBodyIs400ButKeepsTheConnection) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Valid HTTP, invalid wire body: a request error, not a protocol error.
  ASSERT_TRUE(client.Send(
      "POST /v1/whynot HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nnot json!"));
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 400);
  auto wire = net::ParseWhyNotResponseJson(response.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_NE(wire->code, StatusCode::kOk);
  // The connection is still good for the next request.
  ASSERT_TRUE(client.Send(kGetHealthz));
  EXPECT_EQ(client.Read().status, 200);
  server.Stop();
}

// ---- status mapping: 503 with Retry-After, 504 on queue expiry -------------

TEST(Server, ShedMapsTo503WithRetryAfterHeaders) {
  ManualClock clock;
  ServiceOptions service_options;
  service_options.workers = 1;
  service_options.queue_capacity = 1;
  service_options.clock = &clock;
  WhyNotService service(MakeNetCatalog(), service_options);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  // Pin the only worker (manual-time deadline: it cannot trip on its own),
  // then fill the queue -- the wire request after that must shed.
  auto blocker = service.Submit(SlowRequest("blk", 500));
  ASSERT_TRUE(blocker.status.ok());
  WaitForEmptyQueue(service);
  auto filler = service.Submit(TinyRequest("fill"));
  ASSERT_TRUE(filler.status.ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(PostWhyNot(TinyRequest("shed-me"))));
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 503);
  // Both header forms: spec-compliant whole seconds (never 0 for a positive
  // backoff) and the exact millisecond value clients actually obey.
  const std::string_view retry_s = response.Header("retry-after");
  const std::string_view retry_ms = response.Header("retry-after-ms");
  ASSERT_FALSE(retry_s.empty());
  ASSERT_FALSE(retry_ms.empty());
  EXPECT_GE(std::atoll(std::string(retry_s).c_str()), 1);
  EXPECT_GT(std::atoll(std::string(retry_ms).c_str()), 0);
  auto wire = net::ParseWhyNotResponseJson(response.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->code, StatusCode::kUnavailable);
  EXPECT_GT(wire->retry_after_ms, 0);

  // Unblock and settle before teardown.
  clock.AdvanceMs(1000);
  blocker.response.wait();
  filler.response.wait();
  server.Stop();
  service.Shutdown();
}

TEST(Server, QueueExpiryMapsTo504OverTheWire) {
  ManualClock clock;
  ServiceOptions service_options;
  service_options.workers = 1;
  service_options.clock = &clock;
  WhyNotService service(MakeNetCatalog(), service_options);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto blocker = service.Submit(SlowRequest("blk", 500));
  ASSERT_TRUE(blocker.status.ok());
  WaitForEmptyQueue(service);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  WhyNotRequest doomed = TinyRequest("doomed");
  doomed.deadline_ms = 20;
  ASSERT_TRUE(client.Send(PostWhyNot(doomed)));
  // Let the request reach the queue, then expire it in manual time. The
  // watchdog resolves it kDeadlineExceeded and the completion flows back
  // through the event loop as a 504 -- the async path, not a sync error.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  clock.AdvanceMs(30);
  HttpResponse response = client.Read();
  EXPECT_EQ(response.status, 504);
  auto wire = net::ParseWhyNotResponseJson(response.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(wire->expired_in_queue);

  clock.AdvanceMs(1000);
  blocker.response.wait();
  server.Stop();
  service.Shutdown();
}

// ---- ManualClock-exact eviction --------------------------------------------

TEST(Server, IdleEvictionAtTheExactManualInstant) {
  ManualClock clock;
  WhyNotService service(MakeNetCatalog(), {});
  ServerOptions options;
  options.idle_timeout_ms = 5'000;
  options.poll_interval_ms = 2;
  options.clock = &clock;
  HttpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(kGetHealthz));
  EXPECT_EQ(client.Read().status, 200);

  // One manual millisecond short of the timeout: several real poll ticks
  // pass and the connection must survive.
  clock.AdvanceMs(options.idle_timeout_ms - 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(client.StillOpenAndQuiet());
  // The final millisecond: evicted (silently -- idle close sends nothing).
  clock.AdvanceMs(1);
  EXPECT_TRUE(client.WaitForClose(2000));
  EXPECT_TRUE(client.TakeBuffered().empty());
  server.Stop();
}

TEST(Server, SlowlorisEvictedWith408AtTheExactManualInstant) {
  ManualClock clock;
  WhyNotService service(MakeNetCatalog(), {});
  ServerOptions options;
  options.header_timeout_ms = 1'000;
  options.idle_timeout_ms = 60'000;
  options.poll_interval_ms = 2;
  options.clock = &clock;
  HttpServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // A request that starts and then... nothing. The header window arms on
  // the first byte.
  ASSERT_TRUE(client.Send("POST /v1/whynot HTTP/1.1\r\nContent-Le"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  clock.AdvanceMs(options.header_timeout_ms - 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(client.StillOpenAndQuiet());
  clock.AdvanceMs(1);
  EXPECT_TRUE(client.WaitForClose(2000));
  // Best-effort 408 before the close.
  HttpResponse goodbye;
  const std::string bytes = client.TakeBuffered();
  auto parsed = net::ParseHttpResponse(bytes, &goodbye);
  ASSERT_TRUE(parsed.ok());
  ASSERT_GT(*parsed, 0u) << "no 408 bytes before close";
  EXPECT_EQ(goodbye.status, 408);
  server.Stop();
}

// ---- drain while connected -------------------------------------------------

TEST(Server, DrainFlipsReadyzServesInFlightAndRefusesNewConnections) {
  WhyNotService service(MakeNetCatalog(), {});
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  TestClient established(server.port());
  ASSERT_TRUE(established.connected());
  ASSERT_TRUE(established.Send("GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_EQ(established.Read().status, 200);

  server.BeginDrain();

  // The established connection keeps being served: readyz now honestly
  // reports draining, and real work still completes end to end.
  ASSERT_TRUE(established.Send("GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"));
  HttpResponse readyz = established.Read();
  EXPECT_EQ(readyz.status, 503);
  EXPECT_EQ(readyz.body, "draining\n");
  ASSERT_TRUE(established.Send(PostWhyNot(TinyRequest("during-drain"))));
  HttpResponse inflight = established.Read();
  EXPECT_EQ(inflight.status, 200);
  auto wire = net::ParseWhyNotResponseJson(inflight.body);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->code, StatusCode::kOk);

  // A new connection is accepted and immediately closed, never served.
  TestClient late(server.port());
  ASSERT_TRUE(late.connected());
  EXPECT_TRUE(late.WaitForClose(2000));

  server.Stop();
}

// ---- the 19 use cases over the wire, bit-identical to in-process -----------

/// Everything deterministic about an answer, one field per line. Timing
/// fields (queue_ms/exec_ms) and cache counters describing the computation
/// are deliberately excluded.
std::string AnswerFingerprint(const AnswerSummary& answer) {
  std::string out;
  out += "detailed:";
  for (const std::string& s : answer.detailed) out += s + "|";
  out += "\ncondensed:";
  for (const std::string& s : answer.condensed) out += s + "|";
  out += "\nsecondary:";
  for (const std::string& s : answer.secondary) out += s + "|";
  out += StrCat("\ndir=", answer.dir_total, " indir=", answer.indir_total,
                " survivors=", answer.survivors_at_root,
                " complete=", answer.complete ? 1 : 0,
                " tripped=", StatusCodeName(answer.tripped),
                " completeness=", answer.completeness,
                " degradation_level=", answer.degradation_level,
                " degradation=", answer.degradation);
  return out;
}

TEST(Server, All19UseCasesMatchInProcessSubmitAcrossThreadCounts) {
  auto registry = UseCaseRegistry::Build(1);
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();

  // threads=1 fingerprints anchor the cross-thread-count identity check.
  std::vector<std::string> baseline;
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE(StrCat("threads=", threads));
    // Two identical but independent services: one behind the wire, one
    // driven in-process. Independence rules out answer-cache crosstalk
    // making the comparison vacuous.
    auto make_catalog = [&]() {
      auto catalog = std::make_shared<Catalog>();
      for (const char* name : {"crime", "imdb", "gov"}) {
        Database copy = registry->database(name);
        NED_CHECK(catalog->Register(name, std::move(copy)).ok());
      }
      return catalog;
    };
    ServiceOptions service_options;
    service_options.workers = 2;
    service_options.threads_per_request = threads;
    service_options.parallel_min_rows = 1;  // force the partitioned paths
    WhyNotService wire_service(make_catalog(), service_options);
    WhyNotService local_service(make_catalog(), service_options);
    HttpServer server(&wire_service);
    ASSERT_TRUE(server.Start().ok());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    size_t case_index = 0;
    for (const UseCase& uc : registry->use_cases()) {
      SCOPED_TRACE(uc.name);
      WhyNotRequest request;
      request.key = StrCat("uc-", uc.name);
      request.db_name = uc.db_name;
      request.sql = uc.sql;
      request.question = uc.question;
      request.deadline_ms = 30'000;

      ASSERT_TRUE(client.Send(PostWhyNot(request)));
      HttpResponse http = client.Read();
      ASSERT_EQ(http.status, 200) << http.body;
      auto wire = net::ParseWhyNotResponseJson(http.body);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      ASSERT_EQ(wire->code, StatusCode::kOk) << wire->message;
      EXPECT_EQ(wire->key, request.key);

      auto local = local_service.Submit(request);
      ASSERT_TRUE(local.status.ok()) << local.status.ToString();
      const WhyNotResponse local_response = local.response.get();
      ASSERT_TRUE(local_response.status.ok())
          << local_response.status.ToString();

      const std::string wire_print = AnswerFingerprint(wire->answer);
      EXPECT_EQ(wire_print, AnswerFingerprint(local_response.answer));
      EXPECT_EQ(wire->snapshot_version, local_response.snapshot_version);
      if (threads == 1) {
        baseline.push_back(wire_print);
      } else {
        ASSERT_LT(case_index, baseline.size());
        EXPECT_EQ(wire_print, baseline[case_index])
            << "answer differs from threads=1";
      }
      ++case_index;
    }
    EXPECT_EQ(case_index, registry->use_cases().size());
    server.Stop();
    wire_service.Shutdown();
    local_service.Shutdown();
  }
}

}  // namespace
}  // namespace ned
