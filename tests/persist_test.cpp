/// \file persist_test.cpp
/// \brief The crash-safe durability layer (src/persist/): wire codecs,
/// atomic file writes, the CRC-framed write-ahead journal, the durable
/// answer store, and the service-level persist/recover round trip.
///
/// The core properties, fuzzed rather than example-tested:
///   - truncating the journal at EVERY byte offset recovers an exact prefix
///     of the appended records -- open never crashes, never fabricates;
///   - flipping any random bit yields a clean prefix too (CRC32 catches all
///     single-bit corruption) and drops every later segment;
///   - decoding any truncated request payload fails with a Status, never a
///     crash (the recovery path feeds decoders torn bytes by design);
///   - a corrupt store entry is deleted and reported kNotFound -- a store
///     hit is always byte-identical to what was put.
///
/// ned_crashtest drives the same layer through injected crash points and
/// real SIGKILL; tests/service_test.cpp pins the Drain-vs-Shutdown contract.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "persist/answer_store.h"
#include "persist/journal.h"
#include "persist/wire.h"
#include "relational/catalog.h"
#include "service/service.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;

/// Recursive rm -rf via dirent (the repo avoids <filesystem>).
void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

/// A fresh, empty scratch dir under the test tmp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "persist_test_" + name;
  RemoveTree(dir);
  NED_CHECK(EnsureDir(dir).ok());
  return dir;
}

WhyNotRequest FullRequest() {
  WhyNotRequest req;
  req.key = "req-key-1";
  req.db_name = "tiny";
  req.sql = "SELECT R.v FROM R, S WHERE R.k = S.k";
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  tc.Add("R.k", Value::Int(-42));
  tc.Add("R.x", Value::Real(3.25));
  WhyNotQuestion question(tc);
  CTuple tc2;
  tc2.Add("S.w", Value::Str("x"));
  question.AddCTuple(tc2);
  req.question = question;
  req.priority = Priority::kBatch;
  req.client_id = "client-7";
  req.deadline_ms = 1234;
  req.row_budget = 99;
  req.memory_budget = 1u << 20;
  req.seed = 0xDEADBEEFCAFEull;
  req.threads = 3;
  req.inject_fault_at_step = 17;
  req.inject_transient_failures = 2;
  req.bypass_answer_cache = true;
  return req;
}

AnswerSummary FullSummary() {
  AnswerSummary summary;
  summary.detailed = {"(P.id:604, m0)", "(P.id:605, m2)"};
  summary.condensed = {"m0", "m2"};
  summary.secondary = {"m3"};
  summary.dir_total = 2;
  summary.indir_total = 1;
  summary.survivors_at_root = 0;
  summary.complete = true;
  summary.tripped = StatusCode::kOk;
  summary.completeness = "complete";
  summary.subtree_cache_hits = 5;
  summary.subtree_cache_misses = 7;
  summary.degradation_level = 0;
  return summary;
}

std::string EncodedSummary(const AnswerSummary& summary) {
  std::string bytes;
  EncodeAnswerSummary(summary, &bytes);
  return bytes;
}

// ---- wire codecs -----------------------------------------------------------

TEST(Wire, RequestRoundTripsEveryField) {
  const WhyNotRequest req = FullRequest();
  const std::string payload = EncodeRequest(req);
  WhyNotRequest out;
  NED_EXPECT_OK(DecodeRequest(payload, &out));
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.db_name, req.db_name);
  EXPECT_EQ(out.sql, req.sql);
  EXPECT_EQ(out.question.ToString(), req.question.ToString());
  EXPECT_EQ(out.priority, req.priority);
  EXPECT_EQ(out.client_id, req.client_id);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
  EXPECT_EQ(out.row_budget, req.row_budget);
  EXPECT_EQ(out.memory_budget, req.memory_budget);
  EXPECT_EQ(out.seed, req.seed);
  EXPECT_EQ(out.threads, req.threads);
  EXPECT_EQ(out.inject_fault_at_step, req.inject_fault_at_step);
  EXPECT_EQ(out.inject_transient_failures, req.inject_transient_failures);
  EXPECT_EQ(out.bypass_answer_cache, req.bypass_answer_cache);
  // Re-encoding the decoded request is byte-identical: doubles travel as
  // raw bits, not through print/parse.
  EXPECT_EQ(EncodeRequest(out), payload);
}

TEST(Wire, EveryTruncatedRequestPrefixFailsCleanly) {
  const std::string payload = EncodeRequest(FullRequest());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WhyNotRequest out;
    const Status st = DecodeRequest(payload.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Wire, RejectsUnknownVersionAndBadPriority) {
  std::string payload = EncodeRequest(FullRequest());
  std::string bad_version = payload;
  bad_version[0] = static_cast<char>(0x7F);
  WhyNotRequest out;
  EXPECT_FALSE(DecodeRequest(bad_version, &out).ok());
}

TEST(Wire, AnswerSummaryRoundTripsAndRejectsTruncation) {
  const AnswerSummary summary = FullSummary();
  const std::string bytes = EncodedSummary(summary);
  wire::Reader reader(bytes);
  AnswerSummary out;
  NED_EXPECT_OK(DecodeAnswerSummary(&reader, &out));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(EncodedSummary(out), bytes);
  EXPECT_EQ(out.detailed, summary.detailed);
  EXPECT_EQ(out.complete, summary.complete);
  EXPECT_EQ(out.completeness, summary.completeness);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Reader torn(std::string_view(bytes).substr(0, cut));
    AnswerSummary ignored;
    EXPECT_FALSE(DecodeAnswerSummary(&torn, &ignored).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

// ---- atomic file writes ----------------------------------------------------

TEST(AtomicFile, WritesAndReplacesWithoutTempLeftovers) {
  const std::string dir = FreshDir("atomic");
  const std::string path = dir + "/target.txt";
  NED_EXPECT_OK(AtomicWriteFile(path, "first"));
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first");
  NED_EXPECT_OK(AtomicWriteFile(path, "second", /*fsync_data=*/true));
  read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");
  // No temp files left behind.
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  int entries = 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    EXPECT_EQ(name, "target.txt");
    ++entries;
  }
  ::closedir(d);
  EXPECT_EQ(entries, 1);
}

TEST(AtomicFile, EnsureDirCreatesNestedPaths) {
  const std::string dir = FreshDir("ensure");
  NED_EXPECT_OK(EnsureDir(dir + "/a/b/c"));
  struct stat st;
  EXPECT_EQ(::stat((dir + "/a/b/c").c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  NED_EXPECT_OK(EnsureDir(dir + "/a/b/c"));  // idempotent
}

// ---- journal ---------------------------------------------------------------

std::vector<std::string> Payloads(const std::vector<JournalRecord>& records) {
  std::vector<std::string> out;
  for (const JournalRecord& r : records) out.push_back(r.payload);
  return out;
}

/// Appends `count` records "p0".."pN" and closes the journal; returns the
/// payloads.
std::vector<std::string> FillJournal(const std::string& dir, int count,
                                     size_t segment_bytes) {
  JournalOptions options;
  options.dir = dir;
  options.segment_bytes = segment_bytes;
  options.fsync = FsyncPolicy::kEveryRecord;
  std::vector<JournalRecord> recovered;
  auto journal = Journal::Open(options, &recovered);
  NED_CHECK(journal.ok());
  NED_CHECK(recovered.empty());
  std::vector<std::string> payloads;
  for (int i = 0; i < count; ++i) {
    const std::string payload = StrCat("payload-", i);
    NED_CHECK((*journal)->Append(JournalRecordType::kAccept, payload).ok());
    payloads.push_back(payload);
  }
  return payloads;
}

TEST(Journal, RecoversAcrossRotationsWithContinuedSeqs) {
  const std::string dir = FreshDir("journal_rotate");
  // ~26-byte frames against 64-byte segments: several rotations.
  const std::vector<std::string> payloads = FillJournal(dir, 12, 64);
  JournalOptions options;
  options.dir = dir;
  std::vector<JournalRecord> recovered;
  auto journal = Journal::Open(options, &recovered);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(Payloads(recovered), payloads);
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].seq, i + 1);
  }
  EXPECT_GE((*journal)->stats().recovered_records, 12u);
  // Appends after recovery continue the sequence, and a third open sees
  // old + new in order.
  NED_EXPECT_OK((*journal)->Append(JournalRecordType::kComplete, "tail"));
  journal->reset();
  std::vector<JournalRecord> again;
  auto reopened = Journal::Open(options, &again);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(again.size(), 13u);
  EXPECT_EQ(again.back().payload, "tail");
  EXPECT_EQ(again.back().seq, 13u);
  EXPECT_EQ(again.back().type, JournalRecordType::kComplete);
}

TEST(Journal, TruncationAtEveryByteOffsetRecoversAnExactPrefix) {
  const std::string fill_dir = FreshDir("journal_trunc_src");
  // One huge segment so every record lives in seg-000000.wal.
  const std::vector<std::string> payloads = FillJournal(fill_dir, 8, 1u << 20);
  auto original = ReadFile(fill_dir + "/" + Journal::SegmentName(0));
  ASSERT_TRUE(original.ok());
  // Record end offsets within the file: magic, then one frame per record.
  std::vector<size_t> record_ends;
  size_t offset = sizeof(Journal::kMagic);
  for (size_t i = 0; i < payloads.size(); ++i) {
    offset += Journal::FrameRecord(JournalRecordType::kAccept, i + 1,
                                   payloads[i])
                  .size();
    record_ends.push_back(offset);
  }
  ASSERT_EQ(offset, original->size());

  const std::string dir = FreshDir("journal_trunc");
  for (size_t cut = 0; cut <= original->size(); ++cut) {
    RemoveTree(dir);
    ASSERT_TRUE(EnsureDir(dir).ok());
    ASSERT_TRUE(
        WriteFile(dir + "/" + Journal::SegmentName(0), original->substr(0, cut))
            .ok());
    JournalOptions options;
    options.dir = dir;
    std::vector<JournalRecord> recovered;
    auto journal = Journal::Open(options, &recovered);
    ASSERT_TRUE(journal.ok())
        << "cut=" << cut << ": " << journal.status().ToString();
    // Expected: every record whose frame lies entirely below the cut.
    size_t expected = 0;
    while (expected < record_ends.size() && record_ends[expected] <= cut) {
      ++expected;
    }
    ASSERT_EQ(recovered.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(recovered[i].payload, payloads[i]) << "cut=" << cut;
    }
  }
}

TEST(Journal, RandomBitFlipsAlwaysYieldACleanPrefix) {
  const std::string fill_dir = FreshDir("journal_flip_src");
  const std::vector<std::string> payloads = FillJournal(fill_dir, 8, 1u << 20);
  auto original = ReadFile(fill_dir + "/" + Journal::SegmentName(0));
  ASSERT_TRUE(original.ok());
  Rng rng(20260809);
  const std::string dir = FreshDir("journal_flip");
  for (int trial = 0; trial < 150; ++trial) {
    RemoveTree(dir);
    ASSERT_TRUE(EnsureDir(dir).ok());
    std::string corrupt = *original;
    const size_t pos = static_cast<size_t>(rng.Next() % corrupt.size());
    const int bit = static_cast<int>(rng.Next() % 8);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
    ASSERT_TRUE(
        WriteFile(dir + "/" + Journal::SegmentName(0), corrupt).ok());
    JournalOptions options;
    options.dir = dir;
    std::vector<JournalRecord> recovered;
    auto journal = Journal::Open(options, &recovered);
    ASSERT_TRUE(journal.ok())
        << "pos=" << pos << ": " << journal.status().ToString();
    // CRC32 catches every single-bit flip, so the flipped record (or the
    // whole segment, for a flipped magic byte) is always dropped: the
    // result is a strict prefix, never a fabrication.
    ASSERT_LT(recovered.size(), payloads.size()) << "pos=" << pos;
    for (size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i].payload, payloads[i]) << "pos=" << pos;
    }
    // A flip inside a frame truncates the segment; a flip in the magic
    // drops it whole. Either way the corruption is counted, not ignored.
    const JournalStats stats = (*journal)->stats();
    EXPECT_GT(stats.truncated_bytes + stats.dropped_segments, 0u)
        << "pos=" << pos;
  }
}

TEST(Journal, CorruptionInAnEarlySegmentDropsAllLaterSegments) {
  const std::string dir = FreshDir("journal_multiseg");
  const std::vector<std::string> payloads = FillJournal(dir, 12, 64);
  // Flip a byte in the middle of the first segment's record area.
  const std::string seg0 = dir + "/" + Journal::SegmentName(0);
  auto data = ReadFile(seg0);
  ASSERT_TRUE(data.ok());
  std::string corrupt = *data;
  corrupt[sizeof(Journal::kMagic) + 2] ^= 0x40;
  ASSERT_TRUE(WriteFile(seg0, corrupt).ok());
  JournalOptions options;
  options.dir = dir;
  std::vector<JournalRecord> recovered;
  auto journal = Journal::Open(options, &recovered);
  ASSERT_TRUE(journal.ok());
  const JournalStats stats = (*journal)->stats();
  EXPECT_GE(stats.dropped_segments, 1u);
  // Nothing past the corruption survives -- even though later segments held
  // valid records, resurrecting them would reorder history.
  EXPECT_EQ(recovered.size(), 0u);
  struct stat st;
  EXPECT_NE(::stat((dir + "/" + Journal::SegmentName(1)).c_str(), &st), 0);
}

TEST(Journal, FsyncPolicies) {
  {
    const std::string dir = FreshDir("journal_fsync_rec");
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kEveryRecord;
    std::vector<JournalRecord> recovered;
    auto journal = Journal::Open(options, &recovered);
    ASSERT_TRUE(journal.ok());
    const uint64_t syncs_before = (*journal)->stats().syncs;
    NED_EXPECT_OK((*journal)->Append(JournalRecordType::kAccept, "a"));
    NED_EXPECT_OK((*journal)->Append(JournalRecordType::kAccept, "b"));
    EXPECT_GE((*journal)->stats().syncs, syncs_before + 2);
  }
  {
    const std::string dir = FreshDir("journal_fsync_rotate");
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kOnRotate;
    std::vector<JournalRecord> recovered;
    auto journal = Journal::Open(options, &recovered);
    ASSERT_TRUE(journal.ok());
    const uint64_t syncs_before = (*journal)->stats().syncs;
    NED_EXPECT_OK((*journal)->Append(JournalRecordType::kAccept, "a"));
    NED_EXPECT_OK((*journal)->Append(JournalRecordType::kAccept, "b"));
    // No per-record syncs; an explicit Sync still works.
    EXPECT_EQ((*journal)->stats().syncs, syncs_before);
    NED_EXPECT_OK((*journal)->Sync());
    EXPECT_EQ((*journal)->stats().syncs, syncs_before + 1);
  }
  {
    const std::string dir = FreshDir("journal_fsync_lazy");
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kEveryNMs;
    options.fsync_interval_ms = 5;
    std::vector<JournalRecord> recovered;
    auto journal = Journal::Open(options, &recovered);
    ASSERT_TRUE(journal.ok());
    const uint64_t syncs_before = (*journal)->stats().syncs;
    NED_EXPECT_OK((*journal)->Append(JournalRecordType::kAccept, "a"));
    // The background flusher picks it up without any Append-path fsync.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while ((*journal)->stats().syncs <= syncs_before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT((*journal)->stats().syncs, syncs_before);
  }
}

TEST(Journal, DropOldSegmentsKeepsOnlyTheCurrentOne) {
  const std::string dir = FreshDir("journal_drop");
  FillJournal(dir, 12, 64);
  JournalOptions options;
  options.dir = dir;
  std::vector<JournalRecord> recovered;
  auto journal = Journal::Open(options, &recovered);
  ASSERT_TRUE(journal.ok());
  ASSERT_EQ(recovered.size(), 12u);
  NED_EXPECT_OK((*journal)->Append(JournalRecordType::kComplete, "keep"));
  NED_EXPECT_OK((*journal)->DropOldSegments());
  journal->reset();
  std::vector<JournalRecord> after;
  auto reopened = Journal::Open(options, &after);
  ASSERT_TRUE(reopened.ok());
  // Only the fresh segment's record survives the compaction.
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].payload, "keep");
}

// ---- answer store ----------------------------------------------------------

StoreManifestEntry TinyManifest() {
  StoreManifestEntry manifest;
  manifest.db_name = "tiny";
  manifest.content_fingerprint = 0x1234;
  manifest.relations.push_back({"R", 1, 3});
  manifest.relations.push_back({"S", 1, 2});
  return manifest;
}

TEST(AnswerStore, RoundTripsAcrossReopen) {
  const std::string dir = FreshDir("store_roundtrip");
  AnswerStoreOptions options;
  options.dir = dir;
  auto store = AnswerStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const AnswerSummary summary = FullSummary();
  NED_EXPECT_OK((*store)->Put("key-a", summary, TinyManifest()));
  // Idempotent re-put.
  NED_EXPECT_OK((*store)->Put("key-a", summary, TinyManifest()));
  EXPECT_EQ((*store)->entry_count(), 1u);
  store->reset();
  auto reopened = AnswerStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().entries_on_open, 1u);
  EXPECT_TRUE((*reopened)->Contains("key-a"));
  auto lookup = (*reopened)->Lookup("key-a");
  ASSERT_TRUE(lookup.ok()) << lookup.status().ToString();
  EXPECT_EQ(EncodedSummary(*lookup), EncodedSummary(summary));
  EXPECT_EQ((*reopened)->Lookup("absent").status().code(),
            StatusCode::kNotFound);
}

TEST(AnswerStore, CorruptEntryIsDroppedNeverFabricated) {
  const std::string dir = FreshDir("store_corrupt");
  AnswerStoreOptions options;
  options.dir = dir;
  auto store = AnswerStore::Open(options);
  ASSERT_TRUE(store.ok());
  NED_EXPECT_OK((*store)->Put("key-a", FullSummary(), TinyManifest()));
  store->reset();
  const std::string entry_path =
      dir + "/entries/" + AnswerStore::EntryFileName("key-a");
  auto data = ReadFile(entry_path);
  ASSERT_TRUE(data.ok());
  std::string corrupt = *data;
  corrupt[corrupt.size() / 2] ^= 0x10;
  ASSERT_TRUE(WriteFile(entry_path, corrupt).ok());
  auto reopened = AnswerStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Lookup("key-a").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*reopened)->stats().corrupt_dropped, 1u);
  // The corrupt file is gone: the next lookup is a plain miss and the
  // entry is no longer indexed.
  struct stat st;
  EXPECT_NE(::stat(entry_path.c_str(), &st), 0);
  EXPECT_FALSE((*reopened)->Contains("key-a"));
}

TEST(AnswerStore, FilenameCollisionIsAMissNotAnAnswer) {
  const std::string dir = FreshDir("store_collision");
  AnswerStoreOptions options;
  options.dir = dir;
  auto store = AnswerStore::Open(options);
  ASSERT_TRUE(store.ok());
  NED_EXPECT_OK((*store)->Put("key-a", FullSummary(), TinyManifest()));
  store->reset();
  // Simulate an FNV collision: key-b's file name holds key-a's bytes.
  auto data = ReadFile(dir + "/entries/" + AnswerStore::EntryFileName("key-a"));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFile(dir + "/entries/" + AnswerStore::EntryFileName("key-b"),
                        *data)
                  .ok());
  auto reopened = AnswerStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  // The embedded key disagrees: a miss, not key-a's answer under key-b.
  EXPECT_EQ((*reopened)->Lookup("key-b").status().code(),
            StatusCode::kNotFound);
  auto lookup = (*reopened)->Lookup("key-a");
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(EncodedSummary(*lookup), EncodedSummary(FullSummary()));
}

TEST(AnswerStore, GarbageManifestDoesNotBlockOpen) {
  const std::string dir = FreshDir("store_manifest");
  AnswerStoreOptions options;
  options.dir = dir;
  auto store = AnswerStore::Open(options);
  ASSERT_TRUE(store.ok());
  NED_EXPECT_OK((*store)->Put("key-a", FullSummary(), TinyManifest()));
  store->reset();
  ASSERT_TRUE(WriteFile(dir + "/MANIFEST", "not a manifest\n\x01\x02").ok());
  auto reopened = AnswerStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->Lookup("key-a").ok());
}

TEST(AnswerStore, DurableKeysSeparateContentBudgetsAndFingerprints) {
  const std::string base = MakeDurableAnswerKey("db", 0x1111, "SELECT ...",
                                                "(R.v:c)", 0, 0, 0);
  EXPECT_EQ(base, MakeDurableAnswerKey("db", 0x1111, "SELECT ...", "(R.v:c)",
                                       0, 0, 0));
  EXPECT_NE(base, MakeDurableAnswerKey("db", 0x2222, "SELECT ...", "(R.v:c)",
                                       0, 0, 0));
  EXPECT_NE(base, MakeDurableAnswerKey("db", 0x1111, "SELECT other",
                                       "(R.v:c)", 0, 0, 0));
  EXPECT_NE(base, MakeDurableAnswerKey("db", 0x1111, "SELECT ...", "(R.v:c)",
                                       10, 0, 0));
  EXPECT_NE(base, MakeDurableAnswerKey("db", 0x1111, "SELECT ...", "(R.v:c)",
                                       0, 0, 1));
}

// ---- service round trip ----------------------------------------------------

std::shared_ptr<Catalog> TinyCatalog() {
  auto catalog = std::make_shared<Catalog>();
  NED_CHECK(catalog->Register("tiny", MakeTinyDb()).ok());
  return catalog;
}

WhyNotRequest TinyRequest(const std::string& key) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "tiny";
  req.sql = "SELECT R.v FROM R, S WHERE R.k = S.k";
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  req.question = WhyNotQuestion(tc);
  return req;
}

TEST(ServicePersistence, AnswersSurviveARestartByteIdentically) {
  const std::string dir = FreshDir("service_roundtrip");
  std::string first_bytes;
  {
    ServiceOptions options;
    options.workers = 2;
    options.persist_dir = dir;
    WhyNotService service(TinyCatalog(), options);
    auto sub = service.Submit(TinyRequest("k1"));
    ASSERT_TRUE(sub.status.ok());
    const WhyNotResponse resp = sub.response.get();
    ASSERT_TRUE(resp.status.ok());
    ASSERT_TRUE(resp.answer.complete);
    first_bytes = EncodedSummary(resp.answer);
    const WhyNotService::Stats stats = service.stats();
    EXPECT_EQ(stats.journaled_accepts, 1u);
    EXPECT_EQ(stats.journaled_completes, 1u);
    EXPECT_EQ(stats.answer_store_puts, 1u);
    service.Shutdown(/*drain=*/true);
  }
  {
    ServiceOptions options;
    options.workers = 2;
    options.persist_dir = dir;
    WhyNotService service(TinyCatalog(), options);
    const WhyNotService::RecoveryReport rec = service.Recover();
    EXPECT_GE(rec.replayed_records, 2u);  // the ACCEPT + the COMPLETE
    EXPECT_EQ(rec.restored_completed, 1u);
    EXPECT_EQ(rec.pending_found, 0u);
    // Same key: served from the restored idempotency book, byte-identical.
    auto same_key = service.Submit(TinyRequest("k1"));
    ASSERT_TRUE(same_key.status.ok());
    EXPECT_TRUE(same_key.deduped);
    EXPECT_EQ(EncodedSummary(same_key.response.get().answer), first_bytes);
    // New key, same content: served from the durable store without
    // executing anything.
    const uint64_t accepted_before = service.stats().accepted;
    auto new_key = service.Submit(TinyRequest("k2"));
    ASSERT_TRUE(new_key.status.ok());
    const WhyNotResponse resp = new_key.response.get();
    EXPECT_TRUE(resp.served_from_answer_store);
    EXPECT_EQ(EncodedSummary(resp.answer), first_bytes);
    EXPECT_EQ(service.stats().accepted, accepted_before);
    EXPECT_EQ(service.stats().answer_store_hits, 1u);
    service.Shutdown(/*drain=*/true);
  }
}

TEST(ServicePersistence, JournalOnlyModeRecomputesInsteadOfRestoring) {
  const std::string dir = FreshDir("service_journal_only");
  {
    ServiceOptions options;
    options.workers = 2;
    options.persist_dir = dir;
    options.persist_answers = false;
    WhyNotService service(TinyCatalog(), options);
    auto sub = service.Submit(TinyRequest("k1"));
    ASSERT_TRUE(sub.status.ok());
    ASSERT_TRUE(sub.response.get().status.ok());
    const WhyNotService::Stats stats = service.stats();
    EXPECT_EQ(stats.journaled_accepts, 1u);
    EXPECT_EQ(stats.journaled_completes, 1u);
    EXPECT_EQ(stats.answer_store_puts, 0u);  // no store in this mode
    service.Shutdown(/*drain=*/true);
  }
  {
    ServiceOptions options;
    options.workers = 2;
    options.persist_dir = dir;
    options.persist_answers = false;
    WhyNotService service(TinyCatalog(), options);
    const WhyNotService::RecoveryReport rec = service.Recover();
    EXPECT_GE(rec.replayed_records, 2u);
    // The completion is known but its answer was never spilled: nothing to
    // restore, nothing pending, and a resubmission simply executes again.
    EXPECT_EQ(rec.restored_completed, 0u);
    EXPECT_EQ(rec.pending_found, 0u);
    EXPECT_EQ(rec.dropped, 0u);
    auto again = service.Submit(TinyRequest("k1"));
    ASSERT_TRUE(again.status.ok());
    const WhyNotResponse resp = again.response.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_FALSE(resp.served_from_answer_store);
    EXPECT_EQ(service.stats().answer_store_hits, 0u);
    service.Shutdown(/*drain=*/true);
  }
}

TEST(ServicePersistence, AbruptShutdownStrandsQueuedWorkForRecovery) {
  const std::string dir = FreshDir("service_pending");
  {
    ServiceOptions options;
    options.workers = 1;
    options.persist_dir = dir;
    // A transient-failing request parks in the queue behind nothing -- use
    // an injected transient so the worker is busy... simpler: flood the
    // single worker so one request is still queued at Shutdown(false).
    WhyNotService service(TinyCatalog(), options);
    WhyNotRequest blocker = TinyRequest("blk");
    blocker.inject_fault_at_step = 1;  // runs, returns an honest partial
    auto b = service.Submit(blocker);
    ASSERT_TRUE(b.status.ok());
    auto q = service.Submit(TinyRequest("q1"));
    ASSERT_TRUE(q.status.ok());
    service.Shutdown(/*drain=*/false);
    // The queued request (whichever it was) resolved retryably; its ACCEPT
    // stays open in the journal.
    const WhyNotResponse qr = q.response.get();
    (void)qr;  // resolved either way; recovery below proves the contract
  }
  {
    ServiceOptions options;
    options.workers = 1;
    options.persist_dir = dir;
    WhyNotService service(TinyCatalog(), options);
    const WhyNotService::RecoveryReport rec = service.Recover();
    // At least one of the two was stranded pending (the race decides which,
    // and both may even have finished -- but an abrupt shutdown with a
    // queue cannot complete both AND strand neither unless both ran).
    EXPECT_EQ(rec.pending_found, rec.resubmitted + rec.served_from_store);
    EXPECT_EQ(rec.dropped, 0u);
    // Whatever was stranded: resubmitting its key now yields an answer.
    auto q = service.Submit(TinyRequest("q1"));
    ASSERT_TRUE(q.status.ok());
    const WhyNotResponse resp = q.response.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    // Second recovery is a no-op: nothing is ever double-enqueued.
    const WhyNotService::RecoveryReport again = service.Recover();
    EXPECT_EQ(again.replayed_records, 0u);
    EXPECT_EQ(again.pending_found, 0u);
    EXPECT_EQ(again.resubmitted, 0u);
    service.Shutdown(/*drain=*/true);
  }
}

}  // namespace
}  // namespace ned
