/// \file trace_test.cpp
/// \brief Trace semantics (ManualClock-exact durations, LIFO auto-close,
/// PhaseNanos) and the thread-count determinism guarantee: the span tree of
/// every golden use case is byte-identical at threads {1, 2, 4} vs serial.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/timer.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "obs/trace.h"

namespace ned {
namespace {

using obs::PhasedSpanScope;
using obs::Span;
using obs::SpanScope;
using obs::Trace;

// ---- core semantics under ManualClock -------------------------------------

TEST(Trace, ManualClockDurationsAreExact) {
  ManualClock clock;
  Trace trace(&clock);
  const int32_t root = trace.OpenSpan("root");
  clock.AdvanceMs(2);
  const int32_t child = trace.OpenSpan("child");
  clock.AdvanceMs(5);
  trace.CloseSpan(child);
  clock.AdvanceMs(1);
  trace.CloseSpan(root);

  ASSERT_EQ(trace.spans().size(), 2u);
  const Span& r = trace.spans()[0];
  const Span& c = trace.spans()[1];
  EXPECT_EQ(r.name, "root");
  EXPECT_EQ(r.parent, -1);
  EXPECT_EQ(r.start_ns, 0);
  EXPECT_EQ(r.end_ns, 8'000'000);
  EXPECT_EQ(c.name, "child");
  EXPECT_EQ(c.parent, root);
  EXPECT_EQ(c.start_ns, 2'000'000);
  EXPECT_EQ(c.end_ns, 7'000'000);
}

TEST(Trace, CloseSpanAutoClosesForgottenDescendants) {
  // Error paths may return out of a nested region without closing inner
  // spans; closing an ancestor must clean them up at the same instant.
  ManualClock clock;
  Trace trace(&clock);
  const int32_t outer = trace.OpenSpan("outer");
  trace.OpenSpan("inner");
  trace.OpenSpan("innermost");
  clock.AdvanceMs(3);
  trace.CloseSpan(outer);
  for (const Span& span : trace.spans()) {
    EXPECT_EQ(span.end_ns, 3'000'000) << span.name;
  }
}

TEST(Trace, RenderStructureShowsNamesAndNesting) {
  Trace trace;
  const int32_t a = trace.OpenSpan("a");
  const int32_t b = trace.OpenSpan("b");
  trace.CloseSpan(b);
  trace.CloseSpan(a);
  const int32_t c = trace.OpenSpan("c");
  trace.CloseSpan(c);
  EXPECT_EQ(trace.RenderStructure(), "a\n  b\nc\n");
}

TEST(Trace, RenderIncludesDurations) {
  ManualClock clock;
  Trace trace(&clock);
  const int32_t a = trace.OpenSpan("a");
  clock.AdvanceMs(2);
  trace.CloseSpan(a);
  trace.OpenSpan("open_one");
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("a 2000us"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("open_one (open)"), std::string::npos) << rendered;
}

TEST(Trace, PhaseNanosSkipsSameNamedNesting) {
  ManualClock clock;
  Trace trace(&clock);
  const int32_t outer = trace.OpenSpan("phase");
  clock.AdvanceMs(1);
  const int32_t inner = trace.OpenSpan("phase");  // recursive: not re-counted
  clock.AdvanceMs(2);
  trace.CloseSpan(inner);
  clock.AdvanceMs(1);
  trace.CloseSpan(outer);
  EXPECT_EQ(trace.PhaseNanos("phase"), 4'000'000);
  EXPECT_EQ(trace.PhaseNanos("absent"), 0);
}

TEST(Trace, SpanScopeOnNullTraceIsANoOp) {
  SpanScope scope(nullptr, "never");
  PhaseTimer timer;
  { PhasedSpanScope phased(&timer, "p", nullptr); }
  EXPECT_GE(timer.Nanos("p"), 0);
}

TEST(Trace, PhasedSpanScopeChargesTimerAndSpanIdentically) {
  // One pair of clock readings feeds both sinks: the trace-derived phase
  // number must equal the PhaseTimer charge exactly, which is what lets
  // bench_fig5 reproduce its breakdown from spans.
  ManualClock clock;
  Trace trace(&clock);
  PhaseTimer timer;
  {
    PhasedSpanScope scope(&timer, "Initialization", &trace);
    clock.AdvanceMs(7);
  }
  EXPECT_EQ(timer.Nanos("Initialization"), 7'000'000);
  EXPECT_EQ(trace.PhaseNanos("Initialization"), 7'000'000);
}

// ---- engine span emission -------------------------------------------------

const UseCaseRegistry& Registry() {
  static const UseCaseRegistry* registry = [] {
    auto r = UseCaseRegistry::Build();
    NED_CHECK(r.ok());
    return new UseCaseRegistry(std::move(r).value());
  }();
  return *registry;
}

std::string TraceStructureFor(const UseCase& uc, ExecContext* ctx) {
  auto tree = Registry().BuildTree(uc);
  NED_CHECK_MSG(tree.ok(), tree.status().ToString());
  const Database& db = Registry().database(uc.db_name);
  auto engine = NedExplainEngine::Create(&*tree, &db);
  NED_CHECK(engine.ok());
  Trace trace;
  ctx->set_trace(&trace);
  auto result = engine->Explain(uc.question, ctx);
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  ctx->set_trace(nullptr);
  return trace.RenderStructure();
}

TEST(EngineTrace, EmitsTheFigFivePhases) {
  const UseCase& uc = Registry().use_cases()[0];
  ExecContext ctx;
  const std::string structure = TraceStructureFor(uc, &ctx);
  EXPECT_NE(structure.find("Initialization"), std::string::npos) << structure;
  EXPECT_NE(structure.find("ctuple_0"), std::string::npos) << structure;
  EXPECT_NE(structure.find("CompatibleFinder"), std::string::npos)
      << structure;
  EXPECT_NE(structure.find("tabq_level_"), std::string::npos) << structure;
  EXPECT_NE(structure.find("answer_construction"), std::string::npos)
      << structure;
}

// The tentpole determinism guarantee: spans are emitted only from
// coordinator paths, so the span tree never depends on the thread count --
// for all 19 golden use cases, at threads {1, 2, 4}, parallel evaluation
// renders the byte-identical structure serial evaluation does.
TEST(EngineTrace, SpanTreeIsThreadCountInvariantForAllUseCases) {
  ASSERT_EQ(Registry().use_cases().size(), 19u);
  TaskPool pool(3);
  for (const UseCase& uc : Registry().use_cases()) {
    ExecContext serial_ctx;
    const std::string serial = TraceStructureFor(uc, &serial_ctx);
    ASSERT_FALSE(serial.empty()) << uc.name;
    for (int threads : {1, 2, 4}) {
      ExecContext ctx;
      ctx.set_parallelism(&pool, threads);
      ctx.set_parallel_min_rows(4);
      EXPECT_EQ(TraceStructureFor(uc, &ctx), serial)
          << uc.name << ": span tree changed at threads=" << threads;
    }
  }
  EXPECT_LE(pool.peak_active(), static_cast<size_t>(pool.thread_count()));
}

TEST(EngineTrace, WorkerShardsNeverInheritTheTrace) {
  ExecContext ctx;
  Trace trace;
  ctx.set_trace(&trace);
  ExecContext shard;
  ctx.BeginWorkerShard(&shard);
  EXPECT_EQ(shard.trace(), nullptr);
  EXPECT_EQ(ctx.trace(), &trace);
}

TEST(EngineTrace, NoTraceAttachedEmitsNothing) {
  const UseCase& uc = Registry().use_cases()[0];
  auto tree = Registry().BuildTree(uc);
  ASSERT_TRUE(tree.ok());
  const Database& db = Registry().database(uc.db_name);
  auto engine = NedExplainEngine::Create(&*tree, &db);
  ASSERT_TRUE(engine.ok());
  ExecContext ctx;  // no trace
  auto result = engine->Explain(uc.question, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ctx.trace(), nullptr);
}

}  // namespace
}  // namespace ned
