/// \file differential_test.cpp
/// \brief Tier-1 differential test: engine vs. brute-force oracle.
///
/// Sweeps a pinned seed range (kFirstSeed..kLastSeed, >= 2000 workloads)
/// through the differential harness: for every workload the NedExplain
/// engine and the reference oracle must agree on the unrenamed question,
/// Dir/InDir, root survivors, and the detailed, condensed and secondary
/// answers -- with early termination off and on -- plus Why-Not baseline
/// bottom-up/top-down equivalence and an SQL round-trip of the printed
/// query. Any failure message carries the seed and the exact CLI repro
/// command (satellite c). Also proves the harness itself works: an injected
/// engine divergence is caught, shrunk, and serialised as a repro.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "cache/subtree_cache.h"
#include "canonical/canonicalizer.h"
#include "canonical/query_spec.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "testing/difftest.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace ned {
namespace {

// Pinned seed range. The upper bound keeps tier-1 runtime around a second
// while clearing the >= 2000-workload floor; the nightly soak (see
// docs/TESTING.md) rotates a 10k window over the rest of the seed space.
constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 2400;

TEST(Differential, SweepPinnedSeedRange) {
  std::map<std::string, size_t> scenarios;
  size_t ran = 0;
  size_t nontrivial = 0;  // workloads whose agreed answer is non-empty
  size_t failures = 0;
  for (uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    // Strip the planted pattern suffix ("planted:empty-select" etc.) so the
    // coverage assertion below counts shapes.
    scenarios[w.scenario.substr(0, w.scenario.find(':'))]++;
    DiffOutcome outcome = RunDiffOnWorkload(w);
    if (!outcome.ok()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " diverged:\n" << outcome.Summary();
      if (failures >= 10) {
        GTEST_FAIL() << "stopping after 10 divergent seeds; run `"
                     << ReproCommand(seed) << "` to investigate further";
      }
      continue;
    }
    if (!outcome.ran) continue;  // both sides rejected with the same status
    ++ran;
    auto compiled = CompileWorkload(w);
    ASSERT_TRUE(compiled.ok());
    auto oracle =
        OracleExplain(*(*compiled).tree, *(*compiled).db, w.question);
    ASSERT_TRUE(oracle.ok()) << "seed " << seed;
    if (!(*oracle).answer.empty()) ++nontrivial;
  }
  // The sweep only means something if it exercised every generator shape and
  // regularly produced non-empty answers, not just agreeing empties.
  for (const char* shape : {"chain", "star", "self-join", "union",
                            "difference", "aggregate", "planted"}) {
    EXPECT_GT(scenarios[shape], 0u) << "shape never generated: " << shape;
  }
  EXPECT_GE(ran, (kLastSeed - kFirstSeed + 1) * 9 / 10)
      << "too many workloads rejected by both sides";
  EXPECT_GE(nontrivial, ran / 4)
      << "suspiciously few workloads with a non-empty Why-Not answer";
}

// Hand-built sanity check: the oracle must blame an emptying selection on
// its own, independent of the engine -- this is the anchor that the two
// sides are not just agreeing on a shared bug.
TEST(Differential, OracleBlamesEmptyingSelection) {
  Relation t("T0", Schema({{"T0", "id"}, {"T0", "v"}}));
  t.AddRow({Value::Int(1), Value::Int(3)});
  t.AddRow({Value::Int(2), Value::Int(5)});
  Database db;
  ASSERT_TRUE(db.AddRelation(t).ok());

  QuerySpec spec;
  QueryBlock block;
  block.tables.push_back({"T0", "T0"});
  block.selections.push_back(
      Cmp(Col("T0", "v"), CompareOp::kGt, Lit(int64_t{100})));
  block.projection = {{"T0", "v"}};
  spec.blocks.push_back(std::move(block));

  auto tree = Canonicalize(spec, db, {});
  ASSERT_TRUE(tree.ok());

  CTuple tc;
  tc.Add("T0.v", Value::Int(3));
  WhyNotQuestion q(tc);

  auto res = OracleExplain(*tree, db, q);
  ASSERT_TRUE(res.ok());
  const OracleResult& r = *res;
  ASSERT_EQ(r.per_ctuple.size(), 1u);
  EXPECT_EQ(r.per_ctuple[0].dir.size(), 1u);  // only the v=3 row matches
  EXPECT_EQ(r.per_ctuple[0].survivors_at_root, 0u);
  ASSERT_EQ(r.answer.condensed.size(), 1u);
  EXPECT_EQ((*r.answer.condensed.begin())->kind, OpKind::kSelect);
  ASSERT_FALSE(r.answer.detailed.empty());
  for (const auto& [tid, node] : r.answer.detailed) {
    EXPECT_EQ(node->kind, OpKind::kSelect);
  }
}

// The harness must catch a divergence: with inject_divergence the driver
// drops one condensed subquery from the engine's answer, and the sweep is
// required to flag it. The shrinker must then minimise the workload while
// preserving the original mismatch kind, and the repro serialisers must
// produce the CSV/SQL/gtest artifacts.
TEST(Differential, InjectedDivergenceIsCaughtShrunkAndSerialised) {
  DiffOptions inject;
  inject.inject_divergence = true;
  // Keep the search cheap: baseline and round-trip checks cannot observe the
  // injected fault.
  inject.check_baseline = false;
  inject.check_sql_roundtrip = false;

  uint64_t failing_seed = 0;
  for (uint64_t seed = kFirstSeed; seed <= kFirstSeed + 200; ++seed) {
    DiffOutcome outcome = RunDiffSeed(seed, inject);
    if (!outcome.ok()) {
      failing_seed = seed;
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << "no seed with a non-empty condensed answer in the probe range; "
         "the injected divergence was never observable";

  GenWorkload w = MakeDiffWorkload(failing_seed);
  DiffOutcome original = RunDiffOnWorkload(w, inject);
  ASSERT_FALSE(original.ok());
  EXPECT_TRUE(original.HasKind("condensed")) << original.Summary();
  // Satellite (c): the summary must carry the repro command.
  EXPECT_NE(original.Summary().find(ReproCommand(failing_seed)),
            std::string::npos)
      << original.Summary();

  ShrinkResult shrunk = ShrinkWorkload(w, inject);
  EXPECT_FALSE(shrunk.outcome.ok());
  EXPECT_TRUE(shrunk.outcome.HasKind("condensed")) << shrunk.outcome.Summary();
  EXPECT_LE(shrunk.workload.TotalRows(), w.TotalRows());
  EXPECT_GT(shrunk.tried, 0u);

  std::string gtest_case = ReproGTestCase(shrunk.workload);
  EXPECT_NE(gtest_case.find("TEST(DiffRepro"), std::string::npos);
  EXPECT_NE(gtest_case.find("RunDiff"), std::string::npos);

  std::string dir = ::testing::TempDir() + "ned_difftest_repro";
  ASSERT_TRUE(WriteRepro(shrunk.workload, shrunk.outcome, dir).ok());
  std::string stem = dir + "/seed" + std::to_string(failing_seed);
  EXPECT_TRUE(std::filesystem::exists(stem + ".sql"));
  EXPECT_TRUE(std::filesystem::exists(stem + "_test.cc"));
  bool any_csv = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") any_csv = true;
  }
  EXPECT_TRUE(any_csv) << "no CSV instance files written to " << dir;
  std::filesystem::remove_all(dir);
}

// Every generated workload's printed SQL must be non-empty (the generator
// stays inside the grammar) and parse back (checked in the sweep); here we
// additionally pin the printer output shape for one seed of each flavour.
TEST(Differential, GeneratorAlwaysPrintsSql) {
  for (uint64_t seed = kFirstSeed; seed <= kFirstSeed + 300; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    EXPECT_FALSE(SpecToSql(w.spec).empty())
        << "seed " << seed << " (" << w.scenario << ") printed no SQL";
  }
}

// ---- caching must be answer-invisible (PR 4) -------------------------------

/// True when the two summaries carry the same *answer* (the cache counters
/// are computation metadata and deliberately excluded).
bool SameAnswer(const AnswerSummary& a, const AnswerSummary& b) {
  return a.detailed == b.detailed && a.condensed == b.condensed &&
         a.secondary == b.secondary && a.dir_total == b.dir_total &&
         a.indir_total == b.indir_total &&
         a.survivors_at_root == b.survivors_at_root &&
         a.complete == b.complete && a.completeness == b.completeness;
}

// Sweep: for every generated workload, the engine with a shared SubtreeCache
// -- run twice, so the second pass replays entirely from cache -- must
// produce bit-identical detailed/condensed/secondary answers to the
// cache-free engine, and the warm pass must recompute nothing.
TEST(Differential, CachedEngineMatchesCacheFreeOverSeedSweep) {
  constexpr uint64_t kSweepFirst = 1;
  constexpr uint64_t kSweepLast = 1000;
  size_t ran = 0;
  uint64_t warm_hits = 0;
  size_t failures = 0;
  for (uint64_t seed = kSweepFirst; seed <= kSweepLast; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    auto compiled = CompileWorkload(w);
    if (!compiled.ok()) continue;  // rejected workloads are the sweep's job
    auto engine_off = NedExplainEngine::Create((*compiled).tree.get(),
                                               (*compiled).db.get());
    if (!engine_off.ok()) continue;
    auto r_off = engine_off->Explain(w.question);
    if (!r_off.ok()) continue;
    const AnswerSummary s_off = SummarizeResult(*engine_off, *r_off);

    SubtreeCache cache(64u << 20);
    NedExplainOptions on_opts;
    on_opts.subtree_cache = &cache;
    auto engine_on = NedExplainEngine::Create((*compiled).tree.get(),
                                              (*compiled).db.get(), on_opts);
    ASSERT_TRUE(engine_on.ok()) << "seed " << seed;
    for (int pass = 0; pass < 2; ++pass) {
      auto r_on = engine_on->Explain(w.question);
      ASSERT_TRUE(r_on.ok()) << "seed " << seed << " pass " << pass;
      const AnswerSummary s_on = SummarizeResult(*engine_on, *r_on);
      if (!SameAnswer(s_off, s_on)) {
        ++failures;
        ADD_FAILURE() << "seed " << seed << " pass " << pass
                      << ": cached answer diverged\n  off: " << s_off.ToString()
                      << "\n  on:  " << s_on.ToString() << "\n"
                      << DescribeWorkload(w);
        if (failures >= 10) {
          GTEST_FAIL() << "stopping after 10 divergent seeds";
        }
      }
      if (pass == 1) {
        EXPECT_EQ(r_on->subtree_cache_misses, 0u)
            << "seed " << seed << ": warm pass recomputed a subtree";
        warm_hits += r_on->subtree_cache_hits;
      }
    }
    ++ran;
  }
  EXPECT_GE(ran, (kSweepLast - kSweepFirst + 1) * 9 / 10)
      << "too many workloads skipped; the cache sweep lost its coverage";
  EXPECT_GT(warm_hits, 0u) << "no warm pass ever hit the cache";
}

// The 19 Fig. 6 / Table 4 use cases: the full rendered report (the artifact
// the checked-in goldens pin) must be byte-identical with caching on, cold
// and warm alike -- so golden stability under caching follows transitively
// from use_cases_test.
TEST(Differential, UseCaseReportsAreUnchangedByCaching) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  ASSERT_EQ(registry->use_cases().size(), 19u);

  // One cache across all 19: entries from different queries over the same
  // database may legitimately collide on shared subtrees, which must still
  // be answer-invisible.
  SubtreeCache cache(256u << 20);
  uint64_t warm_hits = 0;
  for (const UseCase& uc : registry->use_cases()) {
    auto tree = registry->BuildTree(uc);
    ASSERT_TRUE(tree.ok()) << uc.name << ": " << tree.status().ToString();
    const Database& db = registry->database(uc.db_name);

    auto engine_off = NedExplainEngine::Create(&*tree, &db);
    ASSERT_TRUE(engine_off.ok()) << uc.name;
    auto r_off = engine_off->Explain(uc.question);
    ASSERT_TRUE(r_off.ok()) << uc.name;
    const std::string report_off =
        RenderExplainReport(*engine_off, uc.question, *r_off);

    NedExplainOptions opts;
    opts.subtree_cache = &cache;
    auto engine_on = NedExplainEngine::Create(&*tree, &db, opts);
    ASSERT_TRUE(engine_on.ok()) << uc.name;
    for (int pass = 0; pass < 2; ++pass) {
      auto r_on = engine_on->Explain(uc.question);
      ASSERT_TRUE(r_on.ok()) << uc.name << " pass " << pass;
      EXPECT_EQ(RenderExplainReport(*engine_on, uc.question, *r_on), report_off)
          << uc.name << " pass " << pass << ": cached report diverged";
      if (pass == 1) {
        EXPECT_EQ(r_on->subtree_cache_misses, 0u) << uc.name;
        warm_hits += r_on->subtree_cache_hits;
      }
    }
  }
  EXPECT_GT(warm_hits, 0u);
}

// ---- parallelism must be answer-invisible (this PR) ------------------------

// Sweep: for every generated workload, the engine run with intra-query
// parallelism at threads 1, 2 and 4 (shared 3-worker pool, activation
// threshold lowered so the small generated instances still partition) must
// produce bit-identical answers at every granularity -- detailed, condensed,
// secondary, Dir/InDir totals -- AND a byte-identical rendered report.
TEST(Differential, ParallelEngineMatchesSerialOverSeedSweep) {
  constexpr uint64_t kSweepFirst = 1;
  constexpr uint64_t kSweepLast = 1000;
  TaskPool pool(3);
  size_t ran = 0;
  size_t partitioned_runs = 0;  // runs where the pool actually saw tasks
  size_t failures = 0;
  for (uint64_t seed = kSweepFirst; seed <= kSweepLast; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    auto compiled = CompileWorkload(w);
    if (!compiled.ok()) continue;  // rejected workloads are the sweep's job
    auto engine = NedExplainEngine::Create((*compiled).tree.get(),
                                           (*compiled).db.get());
    if (!engine.ok()) continue;
    auto r_serial = engine->Explain(w.question);
    if (!r_serial.ok()) continue;
    const AnswerSummary s_serial = SummarizeResult(*engine, *r_serial);
    const std::string report_serial =
        RenderExplainReport(*engine, w.question, *r_serial);

    for (int threads : {1, 2, 4}) {
      const size_t pool_tasks_before = pool.pool_tasks_run();
      ExecContext ctx;
      ctx.set_parallelism(&pool, threads);
      ctx.set_parallel_min_rows(2);
      auto r_par = engine->Explain(w.question, &ctx);
      ASSERT_TRUE(r_par.ok())
          << "seed " << seed << " threads " << threads << ": "
          << r_par.status().ToString();
      ASSERT_TRUE(r_par->completeness.complete)
          << "seed " << seed << " threads " << threads
          << ": unlimited parallel run came back partial";
      const AnswerSummary s_par = SummarizeResult(*engine, *r_par);
      const std::string report_par =
          RenderExplainReport(*engine, w.question, *r_par);
      if (!SameAnswer(s_serial, s_par) || report_par != report_serial) {
        ++failures;
        ADD_FAILURE() << "seed " << seed << " threads " << threads
                      << ": parallel answer diverged\n  serial: "
                      << s_serial.ToString() << "\n  parallel: "
                      << s_par.ToString() << "\n" << DescribeWorkload(w);
        if (failures >= 10) {
          GTEST_FAIL() << "stopping after 10 divergent seeds";
        }
      }
      if (threads > 1 && pool.pool_tasks_run() > pool_tasks_before) {
        ++partitioned_runs;
      }
    }
    ++ran;
  }
  EXPECT_GE(ran, (kSweepLast - kSweepFirst + 1) * 9 / 10)
      << "too many workloads skipped; the parallel sweep lost its coverage";
  // The sweep only proves something if parallelism genuinely engaged: a
  // healthy fraction of runs must have dispatched work to pool threads
  // (caller-inline-only execution would mean the fan-out never happened).
  EXPECT_GT(partitioned_runs, ran / 4)
      << "parallel runs almost never dispatched to the pool";
  EXPECT_LE(pool.peak_active(), static_cast<size_t>(pool.thread_count()));
}

// Caching and parallelism must compose: a cold *parallel* run populates the
// SubtreeCache exactly as a serial run would (fingerprints, rid ranges,
// charges are thread-count-independent), so a warm parallel pass replays
// with zero misses and the answers stay bit-identical to the cache-free
// serial engine.
TEST(Differential, WarmCacheReplayMatchesColdParallelEvaluation) {
  constexpr uint64_t kSweepFirst = 1;
  constexpr uint64_t kSweepLast = 400;
  TaskPool pool(3);
  size_t ran = 0;
  uint64_t warm_hits = 0;
  for (uint64_t seed = kSweepFirst; seed <= kSweepLast; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    auto compiled = CompileWorkload(w);
    if (!compiled.ok()) continue;
    auto engine_off = NedExplainEngine::Create((*compiled).tree.get(),
                                               (*compiled).db.get());
    if (!engine_off.ok()) continue;
    auto r_off = engine_off->Explain(w.question);
    if (!r_off.ok()) continue;
    const AnswerSummary s_off = SummarizeResult(*engine_off, *r_off);

    SubtreeCache cache(64u << 20);
    NedExplainOptions on_opts;
    on_opts.subtree_cache = &cache;
    auto engine_on = NedExplainEngine::Create((*compiled).tree.get(),
                                              (*compiled).db.get(), on_opts);
    ASSERT_TRUE(engine_on.ok()) << "seed " << seed;
    for (int pass = 0; pass < 2; ++pass) {
      ExecContext ctx;
      ctx.set_parallelism(&pool, 4);
      ctx.set_parallel_min_rows(2);
      auto r_on = engine_on->Explain(w.question, &ctx);
      ASSERT_TRUE(r_on.ok()) << "seed " << seed << " pass " << pass;
      const AnswerSummary s_on = SummarizeResult(*engine_on, *r_on);
      EXPECT_TRUE(SameAnswer(s_off, s_on))
          << "seed " << seed << " pass " << pass
          << ": cached parallel answer diverged\n  off: " << s_off.ToString()
          << "\n  on:  " << s_on.ToString();
      if (pass == 1) {
        EXPECT_EQ(r_on->subtree_cache_misses, 0u)
            << "seed " << seed
            << ": warm parallel pass recomputed a subtree";
        warm_hits += r_on->subtree_cache_hits;
      }
    }
    ++ran;
  }
  EXPECT_GE(ran, (kSweepLast - kSweepFirst + 1) * 9 / 10);
  EXPECT_GT(warm_hits, 0u) << "no warm parallel pass ever hit the cache";
}

TEST(Differential, ReproCommandNamesTheSeed) {
  std::string cmd = ReproCommand(42);
  EXPECT_NE(cmd.find("ned_difftest"), std::string::npos);
  EXPECT_NE(cmd.find("42..42"), std::string::npos);
  EXPECT_NE(cmd.find("--shrink"), std::string::npos);
}

}  // namespace
}  // namespace ned
