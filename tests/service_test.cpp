/// \file service_test.cpp
/// \brief The concurrent why-not service: admission control, priority
/// scheduling with fair-share quotas, queue expiry, snapshot isolation,
/// watchdog cancellation, circuit breakers, brownout degradation,
/// retry/backoff and exactly-once responses.
///
/// Time-driven behaviour (queue expiry, breaker probes, brownout holds) is
/// tested against an injected ManualClock, so those tests assert on exact
/// instants instead of sleeping.
///
/// Built with -DNED_TSAN=ON these tests double as the ThreadSanitizer audit
/// of the shared ExecContext state (atomic cancellation/step counters) and
/// the service's queue/watchdog/catalog locking.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/expose.h"
#include "relational/catalog.h"
#include "service/retry.h"
#include "service/service.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;

/// Two `n`-row relations whose cross join is the service's slow request:
/// n*n joined rows, every row compatible, so early termination cannot help.
Database MakeCrossJoinDb(int n) {
  Database db;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < n; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  return db;
}

std::shared_ptr<Catalog> MakeCatalog() {
  auto catalog = std::make_shared<Catalog>();
  NED_CHECK(catalog->Register("tiny", MakeTinyDb()).ok());
  NED_CHECK(catalog->Register("big", MakeCrossJoinDb(1500)).ok());
  return catalog;
}

WhyNotRequest TinyRequest(const std::string& key) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "tiny";
  req.sql = "SELECT R.v FROM R, S WHERE R.k = S.k";
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  req.question = WhyNotQuestion(tc);
  return req;
}

/// A request that cannot finish inside its deadline: the service must come
/// back with a flagged partial answer instead.
WhyNotRequest SlowRequest(const std::string& key, int64_t deadline_ms) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = "big";
  req.sql = "SELECT R.a FROM R, S WHERE R.a >= 0";
  CTuple tc;
  tc.Add("R.a", Value::Int(0));  // compatible: the join must materialise
  req.question = WhyNotQuestion(tc);
  req.deadline_ms = deadline_ms;
  return req;
}

// ---- ExecContext under concurrency (the TSan audit target) -----------------

TEST(ExecContextConcurrency, CancelAndCountersRaceFree) {
  ExecContext ctx;
  std::atomic<bool> done{false};
  // A monitoring thread reads counters and eventually cancels, exactly like
  // the service watchdog; the main thread hammers the hot checkpoint path.
  std::thread watchdog([&] {
    while (!done.load()) {
      (void)ctx.steps();
      (void)ctx.rows_charged();
      (void)ctx.bytes_charged();
      if (ctx.steps() > 50) ctx.RequestCancel();
      std::this_thread::yield();
    }
  });
  Status st = Status::OK();
  for (int i = 0; i < 5'000'000 && st.ok(); ++i) {
    ctx.ChargeRows(1);
    ctx.ChargeBytes(8);
    st = ctx.CheckEvery();
  }
  done.store(true);
  watchdog.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// ---- basic serving ---------------------------------------------------------

TEST(Service, ServesASimpleRequest) {
  ServiceOptions options;
  options.workers = 2;
  WhyNotService service(MakeCatalog(), options);
  auto sub = service.Submit(TinyRequest("r1"));
  ASSERT_TRUE(sub.status.ok()) << sub.status.ToString();
  WhyNotResponse resp = sub.response.get();
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_TRUE(resp.answer.complete);
  EXPECT_FALSE(resp.answer.condensed.empty());
  EXPECT_EQ(resp.key, "r1");
  EXPECT_EQ(resp.snapshot_version, 1u);
  EXPECT_EQ(resp.attempt, 1);
  service.Shutdown();
  EXPECT_EQ(service.stats().completed, 1u);
}

// ---- intra-query parallelism through the service ---------------------------

TEST(Service, ParallelRequestsMatchSerialAndStayWithinThePoolBound) {
  // Reference answer from a plain serial service.
  ServiceOptions serial_opts;
  serial_opts.workers = 2;
  WhyNotService serial_service(MakeCatalog(), serial_opts);
  EXPECT_EQ(serial_service.parallel_pool_size(), 0);
  auto s = serial_service.Submit(TinyRequest("ref"));
  ASSERT_TRUE(s.status.ok());
  WhyNotResponse serial_resp = s.response.get();
  ASSERT_TRUE(serial_resp.status.ok());
  serial_service.Shutdown();

  ServiceOptions options;
  options.workers = 2;
  options.threads_per_request = 2;
  options.parallel_min_rows = 2;  // tiny db must still partition
  WhyNotService service(MakeCatalog(), options);
  // Pool defaults to workers * (threads_per_request - 1) extra threads.
  EXPECT_EQ(service.parallel_pool_size(), 2);

  // Default request: runs with the service's threads_per_request, same answer.
  auto p = service.Submit(TinyRequest("par"));
  ASSERT_TRUE(p.status.ok());
  WhyNotResponse par_resp = p.response.get();
  ASSERT_TRUE(par_resp.status.ok());
  EXPECT_TRUE(par_resp.answer.complete);
  EXPECT_EQ(par_resp.answer.ToString(), serial_resp.answer.ToString());

  // Per-request opt-out: threads = 1 forces serial evaluation, same answer.
  WhyNotRequest opt_out = TinyRequest("forced-serial");
  opt_out.threads = 1;
  auto f = service.Submit(opt_out);
  ASSERT_TRUE(f.status.ok());
  WhyNotResponse serial_forced = f.response.get();
  ASSERT_TRUE(serial_forced.status.ok());
  EXPECT_EQ(serial_forced.answer.ToString(), serial_resp.answer.ToString());

  // A greedy request cannot exceed the service bound: threads clamp to
  // threads_per_request, and the shared pool's high-watermark proves no
  // request ever drew more concurrency than configured.
  WhyNotRequest greedy = TinyRequest("greedy");
  greedy.threads = 64;
  auto g = service.Submit(greedy);
  ASSERT_TRUE(g.status.ok());
  WhyNotResponse greedy_resp = g.response.get();
  ASSERT_TRUE(greedy_resp.status.ok());
  EXPECT_EQ(greedy_resp.answer.ToString(), serial_resp.answer.ToString());

  service.Shutdown();
  EXPECT_LE(service.parallel_peak_active(),
            static_cast<size_t>(service.parallel_pool_size()));
  EXPECT_GE(service.stats().completed, 1u);
}

TEST(Service, MixedSerialAndParallelClientsAgreeUnderConcurrency) {
  ServiceOptions options;
  options.workers = 3;
  options.threads_per_request = 2;
  options.parallel_min_rows = 2;
  WhyNotService service(MakeCatalog(), options);

  constexpr int kRequests = 24;
  std::vector<WhyNotService::Submission> subs;
  subs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    WhyNotRequest req = TinyRequest(StrCat("mix", i));
    req.threads = (i % 2 == 0) ? 1 : 0;  // alternate serial / parallel
    subs.push_back(service.Submit(req));
    ASSERT_TRUE(subs.back().status.ok()) << i;
  }
  std::string expected;
  for (int i = 0; i < kRequests; ++i) {
    WhyNotResponse resp = subs[i].response.get();
    ASSERT_TRUE(resp.status.ok()) << i << ": " << resp.status.ToString();
    EXPECT_TRUE(resp.answer.complete) << i;
    if (expected.empty()) {
      expected = resp.answer.ToString();
    } else {
      EXPECT_EQ(resp.answer.ToString(), expected) << i;
    }
  }
  service.Shutdown();
  EXPECT_LE(service.parallel_peak_active(),
            static_cast<size_t>(service.parallel_pool_size()));
}

TEST(Service, BadSqlAndUnknownDbAreContainedPerRequest) {
  WhyNotService service(MakeCatalog(), {});
  // Unknown database: permanent rejection at admission.
  WhyNotRequest bad_db = TinyRequest("bad-db");
  bad_db.db_name = "nope";
  auto sub = service.Submit(bad_db);
  EXPECT_EQ(sub.status.code(), StatusCode::kNotFound);
  // Broken SQL: contained failure response; the worker survives.
  WhyNotRequest bad_sql = TinyRequest("bad-sql");
  bad_sql.sql = "SELEC nonsense FROM";
  auto sub2 = service.Submit(bad_sql);
  ASSERT_TRUE(sub2.status.ok());
  WhyNotResponse resp = sub2.response.get();
  EXPECT_FALSE(resp.status.ok());
  EXPECT_FALSE(resp.retryable());
  // The same service still serves good requests afterwards.
  auto sub3 = service.Submit(TinyRequest("good"));
  ASSERT_TRUE(sub3.status.ok());
  EXPECT_TRUE(sub3.response.get().status.ok());
}

// ---- deadline enforcement --------------------------------------------------

TEST(Service, DeadlineCancelsMidEvaluation) {
  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(MakeCatalog(), options);
  auto start = std::chrono::steady_clock::now();
  auto sub = service.Submit(SlowRequest("slow", 50));
  ASSERT_TRUE(sub.status.ok());
  WhyNotResponse resp = sub.response.get();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.answer.complete);
  EXPECT_TRUE(resp.answer.tripped == StatusCode::kDeadlineExceeded ||
              resp.answer.tripped == StatusCode::kCancelled)
      << StatusCodeName(resp.answer.tripped);
  EXPECT_LT(elapsed.count(), 2000);
}

TEST(Service, WatchdogAloneBoundsARunawayEvaluation) {
  // Disarm the cooperative in-context deadline: only the watchdog's
  // RequestCancel can stop the cross join now.
  ServiceOptions options;
  options.workers = 1;
  options.context_deadline = false;
  options.watchdog_interval_ms = 1;
  WhyNotService service(MakeCatalog(), options);
  auto start = std::chrono::steady_clock::now();
  auto sub = service.Submit(SlowRequest("runaway", 40));
  ASSERT_TRUE(sub.status.ok());
  WhyNotResponse resp = sub.response.get();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.answer.complete);
  EXPECT_EQ(resp.answer.tripped, StatusCode::kCancelled);
  EXPECT_LT(elapsed.count(), 2000);
  EXPECT_GE(service.stats().watchdog_cancels, 1u);
}

// ---- admission control -----------------------------------------------------

TEST(Service, OverloadShedsAtPinnedQueueWatermark) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  WhyNotService service(MakeCatalog(), options);
  // One running + two queued slow requests pin the service at capacity.
  std::vector<std::shared_future<WhyNotResponse>> futures;
  std::vector<WhyNotService::Submission> accepted;
  for (int i = 0; i < 8; ++i) {
    auto sub = service.Submit(SlowRequest(StrCat("blk", i), 300));
    if (sub.status.ok()) futures.push_back(sub.response);
    accepted.push_back(std::move(sub));
  }
  // With 1 worker and queue 2, at most 3 can be in flight; the rest must be
  // shed with a retryable status and a positive suggested backoff.
  size_t shed = 0;
  for (const auto& sub : accepted) {
    if (sub.status.ok()) continue;
    ++shed;
    EXPECT_EQ(sub.status.code(), StatusCode::kUnavailable);
    EXPECT_GT(sub.retry_after_ms, 0);
  }
  EXPECT_GE(shed, 5u);
  EXPECT_LE(service.queue_depth(), options.queue_capacity);
  for (auto& f : futures) f.get();
  service.Shutdown();
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed_queue_full, shed);
  EXPECT_EQ(stats.accepted, futures.size());
  EXPECT_EQ(stats.completed, futures.size());
}

TEST(Service, MemoryWatermarkSheds) {
  constexpr size_t kBlockerBudget = 512u << 20;
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  options.default_memory_budget = 1 << 20;
  // Room for the worker-occupying blocker plus two queued requests. A bare
  // three-request version of this test races: a 1 MiB budget trips within
  // milliseconds, so a descheduled submitter could find m1/m2 already
  // finished and m3 admitted.
  options.memory_watermark_bytes = kBlockerBudget + (2u << 20);
  WhyNotService service(MakeCatalog(), options);
  // Occupies the single worker until its deadline (its generous budget
  // never trips first), so m1/m2 sit queued -- and charged -- while m3
  // arrives.
  WhyNotRequest blocker = SlowRequest("blk", 300);
  blocker.memory_budget = kBlockerBudget;
  auto blk = service.Submit(std::move(blocker));
  ASSERT_TRUE(blk.status.ok());
  auto a = service.Submit(SlowRequest("m1", 400));
  auto b = service.Submit(SlowRequest("m2", 400));
  auto c = service.Submit(SlowRequest("m3", 400));
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(c.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(c.retry_after_ms, 0);
  blk.response.get();
  a.response.get();
  b.response.get();
  service.Shutdown();
  EXPECT_EQ(service.stats().shed_memory, 1u);
}

// ---- snapshot isolation ----------------------------------------------------

TEST(Service, SnapshotIsolationAcrossConcurrentReload) {
  auto catalog = MakeCatalog();
  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(catalog, options);
  // Occupy the single worker so the target request sits queued across the
  // reload; its snapshot was pinned at admission.
  auto blocker = service.Submit(SlowRequest("blocker", 150));
  ASSERT_TRUE(blocker.status.ok());
  auto target = service.Submit(TinyRequest("target"));
  ASSERT_TRUE(target.status.ok());
  // Reload R so that the question's value exists: under the *new* snapshot
  // the why-not answer would change shape entirely.
  NED_CHECK(catalog
                ->ReloadCsv("tiny", "R",
                            "id,k,v\n1,10,c\n2,10,c\n3,10,c\n")
                .ok());
  EXPECT_EQ(catalog->VersionOf("tiny"), 2u);
  WhyNotResponse resp = target.response.get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  // Ran after the reload, against the version-1 snapshot.
  EXPECT_EQ(resp.snapshot_version, 1u);
  EXPECT_FALSE(resp.answer.condensed.empty());
  // A fresh submission sees version 2, where R.v = 'c' rows flow to the
  // join: the selection-free query now yields survivors, answered by data.
  auto post = service.Submit(TinyRequest("post-reload"));
  ASSERT_TRUE(post.status.ok());
  WhyNotResponse resp2 = post.response.get();
  ASSERT_TRUE(resp2.status.ok()) << resp2.status.ToString();
  EXPECT_EQ(resp2.snapshot_version, 2u);
  EXPECT_NE(resp.answer.ToString(), resp2.answer.ToString());
}

// ---- retry / idempotency ---------------------------------------------------

TEST(Service, RetryUntilSuccessUnderInjectedTransientFaults) {
  WhyNotService service(MakeCatalog(), {});
  WhyNotRequest req = TinyRequest("flaky");
  req.inject_transient_failures = 3;
  req.seed = 42;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  RetryOutcome outcome = SubmitWithRetry(service, req, policy);
  EXPECT_FALSE(outcome.exhausted);
  EXPECT_TRUE(outcome.response.status.ok())
      << outcome.response.status.ToString();
  EXPECT_EQ(outcome.transients, 3);
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_EQ(outcome.response.attempt, 4);  // attempts span retries, per key
  EXPECT_TRUE(outcome.response.answer.complete);
  service.Shutdown();
  EXPECT_EQ(service.stats().transient_failures, 3u);
}

TEST(Service, RetryGivesUpAfterMaxAttempts) {
  WhyNotService service(MakeCatalog(), {});
  WhyNotRequest req = TinyRequest("always-flaky");
  req.inject_transient_failures = 100;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  RetryOutcome outcome = SubmitWithRetry(service, req, policy);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.response.status.code(), StatusCode::kUnavailable);
}

TEST(Service, RetryJitterIsDeterministicPerRequestSeed) {
  RetryPolicy policy;
  Rng a(MixSeed(7, HashSeed("key-1")));
  Rng b(MixSeed(7, HashSeed("key-1")));
  Rng c(MixSeed(7, HashSeed("key-2")));
  bool differs = false;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const int64_t ba = BackoffMs(policy, attempt, 0, a);
    const int64_t bb = BackoffMs(policy, attempt, 0, b);
    EXPECT_EQ(ba, bb);  // same request -> same schedule
    if (ba != BackoffMs(policy, attempt, 0, c)) differs = true;
  }
  EXPECT_TRUE(differs);  // different keys de-synchronize
}

TEST(Service, IdempotentKeysDedupAndServeFromCache) {
  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(MakeCatalog(), options);
  // Concurrent duplicates coalesce onto one execution.
  auto blocker = service.Submit(SlowRequest("blocker", 120));
  auto first = service.Submit(TinyRequest("dup"));
  auto second = service.Submit(TinyRequest("dup"));
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.deduped);
  EXPECT_TRUE(second.deduped);
  WhyNotResponse r1 = first.response.get();
  WhyNotResponse r2 = second.response.get();
  EXPECT_EQ(r1.answer.ToString(), r2.answer.ToString());
  // A duplicate after completion re-serves from cache without executing.
  const uint64_t completed_before = service.stats().completed;
  auto third = service.Submit(TinyRequest("dup"));
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.deduped);
  EXPECT_EQ(third.response.get().answer.ToString(), r1.answer.ToString());
  blocker.response.get();
  service.Shutdown();
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, completed_before);
  EXPECT_EQ(stats.deduped_inflight, 1u);
  EXPECT_EQ(stats.served_from_cache, 1u);
}

// ---- shutdown --------------------------------------------------------------

TEST(Service, ShutdownWithInFlightRequestsLosesNothing) {
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  WhyNotService service(MakeCatalog(), options);
  std::vector<std::shared_future<WhyNotResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    auto sub = service.Submit(SlowRequest(StrCat("s", i), 5000));
    ASSERT_TRUE(sub.status.ok());
    futures.push_back(sub.response);
  }
  // Give the workers a moment to pick some up, then pull the plug without
  // draining: running requests are cancelled, queued ones failed.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.Shutdown(/*drain=*/false);
  size_t answered = 0, failed = 0;
  for (auto& f : futures) {
    WhyNotResponse resp = f.get();  // must never hang: nothing is lost
    if (resp.status.ok()) {
      ++answered;
      EXPECT_FALSE(resp.answer.complete);  // cancelled mid-run -> partial
    } else {
      EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable);
      ++failed;
    }
  }
  EXPECT_EQ(answered + failed, futures.size());
  // Post-shutdown submissions are rejected, not lost.
  auto late = service.Submit(TinyRequest("late"));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().rejected_shutdown, 1u);
}

TEST(Service, DrainShutdownCompletesQueuedWork) {
  ServiceOptions options;
  options.workers = 1;
  // The point is that every queued request *executes* at drain; with the
  // answer cache on, identical requests behind a fast first completion
  // could legitimately be served at Submit instead of queuing.
  options.answer_cache_bytes = 0;
  WhyNotService service(MakeCatalog(), options);
  std::vector<std::shared_future<WhyNotResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    auto sub = service.Submit(TinyRequest(StrCat("d", i)));
    ASSERT_TRUE(sub.status.ok());
    futures.push_back(sub.response);
  }
  service.Shutdown(/*drain=*/true);
  for (auto& f : futures) {
    WhyNotResponse resp = f.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_TRUE(resp.answer.complete);
  }
  EXPECT_EQ(service.stats().completed, 4u);
}

// ---- exactly-once under concurrent chaos -----------------------------------

TEST(Service, ConcurrentMixedLoadDeliversExactlyOnce) {
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 8;
  WhyNotService service(MakeCatalog(), options);
  constexpr int kClients = 6;
  constexpr int kPerClient = 20;
  std::atomic<uint64_t> finals{0}, failures{0}, exhausted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(MixSeed(99, static_cast<uint64_t>(c)));
      RetryPolicy policy;
      policy.max_attempts = 50;
      policy.initial_backoff_ms = 1;
      policy.max_backoff_ms = 20;
      for (int i = 0; i < kPerClient; ++i) {
        WhyNotRequest req = TinyRequest(StrCat("x", c, "-", i));
        req.seed = rng.Next();
        if (rng.Chance(0.3)) {
          req.inject_fault_at_step =
              static_cast<uint64_t>(rng.UniformInt(1, 50));
        }
        if (rng.Chance(0.3)) {
          req.inject_transient_failures =
              static_cast<int>(rng.UniformInt(1, 2));
        }
        RetryOutcome outcome = SubmitWithRetry(service, req, policy);
        finals.fetch_add(1);
        if (outcome.exhausted) exhausted.fetch_add(1);
        if (!outcome.exhausted && !outcome.response.status.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();
  EXPECT_EQ(finals.load(), static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(exhausted.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.transient_failures);
}

// ---- priority scheduling / fair share --------------------------------------

/// Blocks until the worker pool has popped everything queued, so requests
/// submitted afterwards deterministically queue behind the running blocker
/// instead of racing it for a worker.
void WaitForEmptyQueue(const WhyNotService& service) {
  while (service.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Scheduling, InteractiveOvertakesBatchOvertakesBackground) {
  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(MakeCatalog(), options);
  // Pin the single worker, then enqueue in *reverse* priority order: FIFO
  // would serve background first, the priority scheduler must not.
  auto blocker = service.Submit(SlowRequest("blk", 300));
  ASSERT_TRUE(blocker.status.ok());
  WaitForEmptyQueue(service);
  WhyNotRequest bg = TinyRequest("bg");
  bg.priority = Priority::kBackground;
  WhyNotRequest bt = TinyRequest("bt");
  bt.priority = Priority::kBatch;
  WhyNotRequest it = TinyRequest("it");
  it.priority = Priority::kInteractive;
  auto sub_bg = service.Submit(std::move(bg));
  auto sub_bt = service.Submit(std::move(bt));
  auto sub_it = service.Submit(std::move(it));
  ASSERT_TRUE(sub_bg.status.ok());
  ASSERT_TRUE(sub_bt.status.ok());
  ASSERT_TRUE(sub_it.status.ok());
  WhyNotResponse r_bg = sub_bg.response.get();
  WhyNotResponse r_bt = sub_bt.response.get();
  WhyNotResponse r_it = sub_it.response.get();
  ASSERT_TRUE(r_bg.status.ok());
  ASSERT_TRUE(r_bt.status.ok());
  ASSERT_TRUE(r_it.status.ok());
  // Dispatch order is execution-start order, and queue_ms measures exactly
  // submit -> dispatch: strict class priority must invert submission order.
  EXPECT_LT(r_it.queue_ms, r_bt.queue_ms);
  EXPECT_LT(r_bt.queue_ms, r_bg.queue_ms);
  blocker.response.get();
  service.Shutdown();
}

TEST(Scheduling, FairShareQuotaShedsOnlyTheHotClient) {
  ServiceOptions options;
  options.workers = 1;
  options.per_client_limit = 2;
  WhyNotService service(MakeCatalog(), options);
  WhyNotRequest blocker = SlowRequest("blk", 300);
  blocker.client_id = "hot";
  auto blk = service.Submit(std::move(blocker));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  WhyNotRequest h1 = TinyRequest("h1");
  h1.client_id = "hot";
  auto sub_h1 = service.Submit(std::move(h1));
  ASSERT_TRUE(sub_h1.status.ok());
  EXPECT_EQ(service.client_occupancy("hot"), 2u);
  // Third admitted-but-unfinished request from "hot" breaches its quota:
  // shed retryably, while a cold client still gets in.
  WhyNotRequest h2 = TinyRequest("h2");
  h2.client_id = "hot";
  auto sub_h2 = service.Submit(std::move(h2));
  EXPECT_EQ(sub_h2.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(sub_h2.retry_after_ms, 0);
  WhyNotRequest c1 = TinyRequest("c1");
  c1.client_id = "cold";
  auto sub_c1 = service.Submit(std::move(c1));
  ASSERT_TRUE(sub_c1.status.ok());
  EXPECT_EQ(service.client_occupancy("cold"), 1u);
  blk.response.get();
  sub_h1.response.get();
  sub_c1.response.get();
  service.Shutdown();
  EXPECT_EQ(service.client_occupancy("hot"), 0u);
  EXPECT_EQ(service.client_occupancy("cold"), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed_client_quota, 1u);
  EXPECT_EQ(stats.accepted, stats.completed);
}

// ---- queue expiry under an injected clock ----------------------------------

TEST(Scheduling, QueueExpiryFailsFastAtTheExactInjectedInstant) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.clock = &clock;
  WhyNotService service(MakeCatalog(), options);
  // The blocker's 500ms deadline is *manual* time: it cannot trip until the
  // clock is advanced, so the worker stays pinned.
  auto blk = service.Submit(SlowRequest("blk", 500));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  WhyNotRequest target = TinyRequest("target");
  target.deadline_ms = 20;
  auto sub = service.Submit(std::move(target));
  ASSERT_TRUE(sub.status.ok());
  // 30ms of manual time pass: the target's deadline has now expired in the
  // queue and the watchdog must fail it fast -- no worker ever ran it.
  clock.AdvanceMs(30);
  WhyNotResponse resp = sub.response.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.expired_in_queue);
  EXPECT_EQ(resp.attempt, 0);  // never dispatched
  EXPECT_GE(resp.queue_ms, 20.0);
  // Now let the blocker's own deadline pass; it resolves as an honest
  // partial (cooperative checkpoint or watchdog cancel).
  clock.AdvanceMs(500);
  WhyNotResponse blocked = blk.response.get();
  ASSERT_TRUE(blocked.status.ok()) << blocked.status.ToString();
  service.Shutdown();
  const auto stats = service.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);  // expiry is final: the books balance
}

// ---- circuit breaker: open, fast-fail, heal via reload + probe -------------

TEST(Breaker, OpensOnPoisonThenHealsViaReloadAndProbe) {
  ManualClock clock;
  auto catalog = MakeCatalog();
  ServiceOptions options;
  options.workers = 1;
  options.clock = &clock;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval_ms = 100;
  WhyNotService service(catalog, options);
  // Poison: relation X does not exist yet, so binding fails permanently.
  // Same content key every time; distinct idempotency keys.
  auto poison = [](const std::string& key) {
    WhyNotRequest req;
    req.key = key;
    req.db_name = "tiny";
    req.sql = "SELECT X.v FROM X, S WHERE X.k = S.k";
    CTuple tc;
    tc.Add("X.v", Value::Str("c"));
    req.question = WhyNotQuestion(tc);
    return req;
  };
  auto p1 = service.Submit(poison("p1"));
  ASSERT_TRUE(p1.status.ok());
  WhyNotResponse r1 = p1.response.get();  // sequential: suspect
  EXPECT_FALSE(r1.status.ok());          // serialization must not kick in
  EXPECT_FALSE(r1.retryable());
  auto p2 = service.Submit(poison("p2"));
  ASSERT_TRUE(p2.status.ok());
  WhyNotResponse r2 = p2.response.get();
  EXPECT_FALSE(r2.status.ok());
  // Two consecutive permanent failures: the breaker is open. The third
  // submission is rejected synchronously with the cached error -- never
  // admitted, never executed.
  auto p3 = service.Submit(poison("p3"));
  EXPECT_FALSE(p3.status.ok());
  EXPECT_TRUE(p3.breaker_fast_fail);
  EXPECT_EQ(p3.status.code(), r2.status.code());
  EXPECT_EQ(service.breaker_stats().opens, 1u);
  // The operator fixes the data: X now exists. The breaker key is content
  // (db + SQL + question), not snapshot version, so the open entry is still
  // there -- and stays closed to traffic until the probe interval elapses.
  NED_CHECK(catalog->ReloadCsv("tiny", "X", "id,k,v\n1,20,c\n").ok());
  auto p4 = service.Submit(poison("p4"));
  EXPECT_FALSE(p4.status.ok());
  EXPECT_TRUE(p4.breaker_fast_fail);
  // Probe due: one request is let through half-open; its success closes
  // the breaker and drops the key from tracking entirely.
  clock.AdvanceMs(100);
  auto p5 = service.Submit(poison("p5"));
  ASSERT_TRUE(p5.status.ok()) << p5.status.ToString();
  WhyNotResponse r5 = p5.response.get();
  ASSERT_TRUE(r5.status.ok()) << r5.status.ToString();
  EXPECT_TRUE(r5.answer.complete);
  EXPECT_EQ(r5.snapshot_version, 2u);
  service.Shutdown();
  const auto breaker = service.breaker_stats();
  EXPECT_EQ(breaker.opens, 1u);
  EXPECT_EQ(breaker.reopens, 0u);
  EXPECT_EQ(breaker.probes, 1u);
  EXPECT_EQ(breaker.fast_fails, 2u);
  EXPECT_EQ(breaker.tracked_keys, 0u);  // healthy keys cost nothing
  EXPECT_EQ(service.stats().breaker_fast_fails, 2u);
}

// ---- brownout: degrade under pressure, shed L3, never cache ----------------

TEST(Brownout, DegradesUnderQueuePressureAndKeepsDegradedAnswersUncached) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.clock = &clock;
  options.brownout.enabled = true;
  WhyNotService service(MakeCatalog(), options);
  auto blk = service.Submit(SlowRequest("blk", 50));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  // Fill the queue: pressure climbs with every submission. Long deadlines
  // keep the queued work alive across the manual-clock advance below.
  std::vector<std::shared_future<WhyNotResponse>> queued;
  for (int i = 0; i < 4; ++i) {
    WhyNotRequest req = TinyRequest(StrCat("t", i));
    req.deadline_ms = 100'000;
    auto sub = service.Submit(std::move(req));
    ASSERT_TRUE(sub.status.ok()) << sub.status.ToString();
    queued.push_back(sub.response);
  }
  // Queue now at capacity: the ladder reads full pressure and steps to L3,
  // where non-interactive work is shed outright.
  WhyNotRequest batch = TinyRequest("batch");
  batch.priority = Priority::kBatch;
  batch.deadline_ms = 100'000;
  auto shed = service.Submit(std::move(batch));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.brownout_level(), 3);
  // Free the worker; the queued interactive work drains at L3 (step-down
  // needs a hold period of manual time that never elapses here).
  clock.AdvanceMs(60);
  for (auto& f : queued) {
    WhyNotResponse resp = f.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_TRUE(resp.answer.complete);
    EXPECT_EQ(resp.answer.degradation_level, 3);
    EXPECT_EQ(resp.answer.degradation, "L3:condensed-focus");
    EXPECT_TRUE(resp.answer.secondary.empty());
    EXPECT_FALSE(resp.served_from_answer_cache);
  }
  blk.response.get();
  service.Shutdown();
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed_brownout, 1u);
  EXPECT_EQ(stats.degraded, 4u);
  // The honesty gate: complete-but-degraded answers never enter the answer
  // cache, so a later cache hit is always full quality.
  EXPECT_EQ(stats.degraded_not_cached, 4u);
  EXPECT_EQ(stats.answer_cache_inserts, 0u);
}

// ---- retry: cross-attempt budget + priority-aware backoff ------------------

TEST(Retry, OverallDeadlineBoundsTheWholeRetrySession) {
  WhyNotService service(MakeCatalog(), {});
  WhyNotRequest req = TinyRequest("budget");
  req.inject_transient_failures = 100;  // never succeeds
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 10;
  policy.jitter = 0;
  policy.overall_deadline_ms = 60;
  const auto start = std::chrono::steady_clock::now();
  RetryOutcome outcome = SubmitWithRetry(service, req, policy);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // The budget, not max_attempts, ended the session -- with a clean
  // kDeadlineExceeded, not a retry-me kUnavailable.
  EXPECT_TRUE(outcome.deadline_exhausted);
  EXPECT_FALSE(outcome.exhausted);
  EXPECT_EQ(outcome.response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(outcome.attempts, 2);
  EXPECT_LT(outcome.attempts, 50);
  EXPECT_LT(elapsed.count(), 2000);
  service.Shutdown();
}

TEST(Retry, PriorityAwareBackoffStretchesWeakerClasses) {
  WhyNotService service(MakeCatalog(), {});
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 8;
  policy.multiplier = 1.0;
  policy.max_backoff_ms = 8;
  policy.jitter = 0;
  policy.priority_aware_backoff = true;
  WhyNotRequest interactive = TinyRequest("pb-i");
  interactive.inject_transient_failures = 100;
  WhyNotRequest background = TinyRequest("pb-bg");
  background.priority = Priority::kBackground;
  background.inject_transient_failures = 100;
  RetryOutcome oi = SubmitWithRetry(service, interactive, policy);
  RetryOutcome obg = SubmitWithRetry(service, background, policy);
  EXPECT_TRUE(oi.exhausted);
  EXPECT_TRUE(obg.exhausted);
  // Two sleeps of 8ms each, deterministic (jitter 0, multiplier 1):
  // background pays exactly the 4x class factor.
  EXPECT_EQ(oi.backoff_total_ms, 16);
  EXPECT_EQ(obg.backoff_total_ms, 64);
  service.Shutdown();
}

// ---- catalog reload atomicity, as seen from the service --------------------

TEST(Service, KeepsServingIdenticallyAcrossAFailedReload) {
  auto catalog = MakeCatalog();
  WhyNotService service(catalog, {});
  WhyNotRequest before = TinyRequest("before");
  before.bypass_answer_cache = true;
  auto sub1 = service.Submit(std::move(before));
  ASSERT_TRUE(sub1.status.ok());
  WhyNotResponse r1 = sub1.response.get();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.snapshot_version, 1u);
  // A reload that fails mid-parse must be a no-op: ReloadCsv builds the new
  // snapshot off to the side and publishes only on success.
  Status bad = catalog->ReloadCsv("tiny", "R", "id,k,v\n1,\"open\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(catalog->VersionOf("tiny"), 1u);
  WhyNotRequest after = TinyRequest("after");
  after.bypass_answer_cache = true;
  auto sub2 = service.Submit(std::move(after));
  ASSERT_TRUE(sub2.status.ok());
  WhyNotResponse r2 = sub2.response.get();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.snapshot_version, 1u);
  EXPECT_EQ(r2.answer.ToString(), r1.answer.ToString());
  service.Shutdown();
}

// ---- drain-vs-shutdown contract (the durable half lives in persist_test) ---

/// Recursive rm -rf via dirent (the repo avoids <filesystem>).
void RemoveTreeForTest(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTreeForTest(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

TEST(Durability, DrainContractAndIdempotentRecover) {
  const std::string dir = ::testing::TempDir() + "service_test_drain";
  RemoveTreeForTest(dir);
  ASSERT_TRUE(EnsureDir(dir).ok());

  // Phase 1: a pinned worker (blocker on manual time) plus one queued
  // request, then Drain. The contract: the running request is allowed to
  // finish (cancelled at the deadline into an honest partial, COMPLETE-
  // journaled), the queued one resolves retryably with its journal ACCEPT
  // left open for the next start.
  {
    ManualClock clock;
    ServiceOptions options;
    options.workers = 1;
    options.clock = &clock;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    auto blk = service.Submit(SlowRequest("blk", 500));
    ASSERT_TRUE(blk.status.ok());
    WaitForEmptyQueue(service);
    auto q = service.Submit(TinyRequest("q1"));
    ASSERT_TRUE(q.status.ok());
    EXPECT_EQ(service.stats().journaled_accepts, 2u);

    // Drain polls on real time but reads its deadline from the injected
    // clock: advance manual time from the side until the cancel rung fires.
    std::atomic<bool> drained{false};
    std::thread advancer([&] {
      while (!drained.load()) {
        clock.AdvanceMs(5);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const WhyNotService::DrainReport report = service.Drain(/*deadline_ms=*/40);
    drained.store(true);
    advancer.join();

    EXPECT_EQ(report.completed_inflight, 1u);  // the blocker was running
    EXPECT_EQ(report.journaled_queued, 1u);    // q1 never reached a worker
    EXPECT_EQ(report.cancelled, 1u);  // the deadline rung stopped the blocker

    WhyNotResponse qr = q.response.get();
    EXPECT_EQ(qr.status.code(), StatusCode::kUnavailable);
    WhyNotResponse br = blk.response.get();
    ASSERT_TRUE(br.status.ok()) << br.status.ToString();
    EXPECT_FALSE(br.answer.complete);  // honest partial, not a fabrication

    // The books: both ACCEPTs journaled, only the blocker COMPLETEd. q1's
    // open ACCEPT is exactly what Recover() looks for.
    const auto stats = service.stats();
    EXPECT_EQ(stats.journaled_accepts, 2u);
    EXPECT_EQ(stats.journaled_completes, 1u);
    EXPECT_EQ(stats.journaled_sheds, 0u);
  }

  // Phase 2: a fresh service over the same directory recovers exactly the
  // stranded request -- once. The second Recover is a no-op by contract
  // (never double-enqueue), not merely empty by coincidence.
  {
    ServiceOptions options;
    options.workers = 1;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    const WhyNotService::RecoveryReport rec = service.Recover();
    EXPECT_EQ(rec.replayed_records, 3u);  // ACCEPT blk, ACCEPT q1, COMPLETE blk
    EXPECT_EQ(rec.pending_found, 1u);
    EXPECT_EQ(rec.resubmitted, 1u);
    EXPECT_EQ(rec.served_from_store, 0u);  // a partial is never stored
    EXPECT_EQ(rec.restored_completed, 0u);
    EXPECT_EQ(rec.dropped, 0u);

    const WhyNotService::RecoveryReport again = service.Recover();
    EXPECT_EQ(again.replayed_records, 0u);
    EXPECT_EQ(again.pending_found, 0u);
    EXPECT_EQ(again.resubmitted, 0u);

    // The client retries its drained key: it attaches to the re-enqueued
    // job (or its completion) instead of spawning a second execution.
    auto retry = service.Submit(TinyRequest("q1"));
    ASSERT_TRUE(retry.status.ok());
    WhyNotResponse resp = retry.response.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_TRUE(resp.answer.complete);
    service.Shutdown(/*drain=*/true);
    // Exactly-once across the restart: one execution for q1, total.
    EXPECT_EQ(service.stats().accepted, 1u);
  }
  RemoveTreeForTest(dir);
}

TEST(Durability, AutoKeysStayUniqueAcrossRestart) {
  const std::string dir = ::testing::TempDir() + "service_test_autokey";
  RemoveTreeForTest(dir);
  ASSERT_TRUE(EnsureDir(dir).ok());

  // Phase 1: an empty-key request gets the first auto key of this
  // incarnation and completes (full answer, so the store spills it and the
  // COMPLETE record makes it restorable).
  std::string first_key;
  {
    ServiceOptions options;
    options.workers = 1;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    auto sub = service.Submit(TinyRequest(""));
    ASSERT_TRUE(sub.status.ok()) << sub.status.ToString();
    WhyNotResponse r = sub.response.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    first_key = r.key;
    EXPECT_EQ(first_key, "auto-1");
    service.Shutdown();
  }

  // Phase 2: after recovery restores "auto-1" into the completed book, a
  // fresh empty-key submission must mint a key the previous incarnation
  // never used. A counter restarting at 0 would hand out "auto-1" again
  // and dedupe this *different* request onto the recovered answer.
  {
    ServiceOptions options;
    options.workers = 1;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    const WhyNotService::RecoveryReport rec = service.Recover();
    EXPECT_EQ(rec.restored_completed, 1u);

    WhyNotRequest other = TinyRequest("");
    CTuple tc;
    tc.Add("R.v", Value::Str("nonexistent"));  // not the phase-1 question
    other.question = WhyNotQuestion(tc);
    auto sub = service.Submit(std::move(other));
    ASSERT_TRUE(sub.status.ok()) << sub.status.ToString();
    EXPECT_FALSE(sub.deduped);
    WhyNotResponse r = sub.response.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_NE(r.key, first_key);
    EXPECT_FALSE(r.served_from_answer_store);
    service.Shutdown();
    // The new request really executed -- it did not ride the old key's
    // cached response.
    EXPECT_EQ(service.stats().accepted, 1u);
  }
  RemoveTreeForTest(dir);
}

// ---- observability: per-request traces + the unified metrics registry ------

/// Rendered span structure of a delivered trace ("" when absent).
std::string Structure(const std::shared_ptr<const obs::Trace>& trace) {
  return trace != nullptr ? trace->RenderStructure() : std::string();
}

bool HasSpan(const std::string& structure, const std::string& name) {
  return structure.find(name) != std::string::npos;
}

TEST(Observability, TraceCoversTheFullRequestLifecycle) {
  ServiceOptions options;
  options.workers = 1;
  WhyNotService service(MakeCatalog(), options);
  WhyNotRequest req = TinyRequest("t1");
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  ASSERT_TRUE(sub.status.ok());
  WhyNotResponse resp = sub.response.get();
  ASSERT_TRUE(resp.status.ok());
  const std::string structure = Structure(resp.trace);
  // Serving phases in order: admission -> queue_wait -> execute -> finalize,
  // with the engine's Fig. 5 phases nested under execute/engine.
  for (const char* span :
       {"admission", "snapshot_pin", "queue_wait", "execute", "compile",
        "engine", "Initialization", "CompatibleFinder", "render",
        "finalize"}) {
    EXPECT_TRUE(HasSpan(structure, span)) << span << " missing:\n"
                                          << structure;
  }
  // Nesting: the engine phases sit under execute, not at the root.
  EXPECT_NE(structure.find("  engine\n"), std::string::npos) << structure;
  service.Shutdown();
}

TEST(Observability, UntracedRequestsCarryNoTrace) {
  WhyNotService service(MakeCatalog(), {});
  auto sub = service.Submit(TinyRequest("plain"));
  ASSERT_TRUE(sub.status.ok());
  EXPECT_EQ(sub.trace, nullptr);
  EXPECT_EQ(sub.response.get().trace, nullptr);
  service.Shutdown();
}

TEST(Observability, AnswerCacheHitTraceIsDeliveredSynchronously) {
  WhyNotService service(MakeCatalog(), {});
  ASSERT_TRUE(service.Submit(TinyRequest("warm")).response.get().status.ok());
  // Same content, different idempotency key: served from the answer cache
  // at Submit. The trace arrives on the Submission (admission-side only).
  WhyNotRequest req = TinyRequest("hit");
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  ASSERT_TRUE(sub.status.ok());
  WhyNotResponse resp = sub.response.get();
  EXPECT_TRUE(resp.served_from_answer_cache);
  const std::string structure = Structure(sub.trace);
  EXPECT_TRUE(HasSpan(structure, "admission")) << structure;
  EXPECT_TRUE(HasSpan(structure, "answer_cache_lookup")) << structure;
  EXPECT_FALSE(HasSpan(structure, "queue_wait")) << structure;
  EXPECT_FALSE(HasSpan(structure, "execute")) << structure;
  service.Shutdown();
}

TEST(Observability, ShedTraceIsDeliveredOnTheSubmission) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.clock = &clock;
  WhyNotService service(MakeCatalog(), options);
  auto blk = service.Submit(SlowRequest("blk", 500));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  ASSERT_TRUE(service.Submit(TinyRequest("fill")).status.ok());
  WhyNotRequest req = TinyRequest("shed-me");
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  EXPECT_EQ(sub.status.code(), StatusCode::kUnavailable);
  const std::string structure = Structure(sub.trace);
  EXPECT_TRUE(HasSpan(structure, "admission")) << structure;
  EXPECT_FALSE(HasSpan(structure, "queue_wait")) << structure;
  clock.AdvanceMs(600);  // let the blocker's deadline trip
  service.Shutdown();
}

TEST(Observability, QueueWaitSpanIsExactUnderManualClock) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.clock = &clock;
  WhyNotService service(MakeCatalog(), options);
  // The blocker's deadline *is* the release instant: it runs on the only
  // worker until manual time reaches 7ms, when the watchdog cancels it and
  // the worker dispatches the queued target. Every instant in between is
  // frozen, so the target's queue_wait span is exactly 7ms.
  auto blk = service.Submit(SlowRequest("blk", 7));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  WhyNotRequest req = TinyRequest("timed");
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  ASSERT_TRUE(sub.status.ok());
  clock.AdvanceMs(7);
  WhyNotResponse resp = sub.response.get();
  ASSERT_TRUE(resp.status.ok());
  ASSERT_NE(resp.trace, nullptr);
  EXPECT_EQ(resp.trace->PhaseNanos("queue_wait"), 7'000'000)
      << resp.trace->Render();
  service.Shutdown();
}

TEST(Observability, ExpiredInQueueTraceHasNoExecuteSpan) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.clock = &clock;
  WhyNotService service(MakeCatalog(), options);
  auto blk = service.Submit(SlowRequest("blk", 500));
  ASSERT_TRUE(blk.status.ok());
  WaitForEmptyQueue(service);
  WhyNotRequest req = TinyRequest("expire-me");
  req.deadline_ms = 20;
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  ASSERT_TRUE(sub.status.ok());
  clock.AdvanceMs(30);
  WhyNotResponse resp = sub.response.get();
  EXPECT_TRUE(resp.expired_in_queue);
  const std::string structure = Structure(resp.trace);
  EXPECT_TRUE(HasSpan(structure, "admission")) << structure;
  EXPECT_TRUE(HasSpan(structure, "queue_wait")) << structure;
  EXPECT_TRUE(HasSpan(structure, "finalize")) << structure;
  EXPECT_FALSE(HasSpan(structure, "execute")) << structure;
  // The defensive close in Finalize sealed the span: nothing is left open.
  for (const obs::Span& span : resp.trace->spans()) {
    EXPECT_GE(span.end_ns, 0) << span.name << " left open";
  }
  clock.AdvanceMs(500);
  service.Shutdown();
}

TEST(Observability, BreakerFastFailTraceShowsTheSynchronousCheck) {
  ManualClock clock;
  ServiceOptions options;
  options.workers = 1;
  options.clock = &clock;
  options.breaker.failure_threshold = 2;
  WhyNotService service(MakeCatalog(), options);
  auto poison = [](const std::string& key) {
    WhyNotRequest req;
    req.key = key;
    req.db_name = "tiny";
    req.sql = "SELECT X.v FROM X, S WHERE X.k = S.k";  // X does not exist
    CTuple tc;
    tc.Add("X.v", Value::Str("c"));
    req.question = WhyNotQuestion(tc);
    return req;
  };
  EXPECT_FALSE(service.Submit(poison("p1")).response.get().status.ok());
  EXPECT_FALSE(service.Submit(poison("p2")).response.get().status.ok());
  WhyNotRequest req = poison("p3");
  req.collect_trace = true;
  auto sub = service.Submit(std::move(req));
  EXPECT_TRUE(sub.breaker_fast_fail);
  const std::string structure = Structure(sub.trace);
  EXPECT_TRUE(HasSpan(structure, "admission")) << structure;
  EXPECT_TRUE(HasSpan(structure, "breaker_check")) << structure;
  EXPECT_FALSE(HasSpan(structure, "snapshot_pin")) << structure;
  service.Shutdown();
}

TEST(Observability, StoreHitTraceShowsTheDurableLookup) {
  const std::string dir = ::testing::TempDir() + "service_test_obs_store";
  RemoveTreeForTest(dir);
  ASSERT_TRUE(EnsureDir(dir).ok());
  {
    ServiceOptions options;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    ASSERT_TRUE(
        service.Submit(TinyRequest("seed")).response.get().status.ok());
    service.Shutdown();
  }
  {
    // Fresh process incarnation, identical database content: the answer is
    // replayed from the durable store at Submit, and the trace records the
    // off-lock store lookup.
    ServiceOptions options;
    options.persist_dir = dir;
    WhyNotService service(MakeCatalog(), options);
    WhyNotRequest req = TinyRequest("recovered");
    req.collect_trace = true;
    auto sub = service.Submit(std::move(req));
    ASSERT_TRUE(sub.status.ok());
    WhyNotResponse resp = sub.response.get();
    EXPECT_TRUE(resp.served_from_answer_store);
    const std::string structure = Structure(sub.trace);
    EXPECT_TRUE(HasSpan(structure, "store_lookup")) << structure;
    EXPECT_FALSE(HasSpan(structure, "execute")) << structure;
    service.Shutdown();
  }
  RemoveTreeForTest(dir);
}

TEST(Observability, RegistryExposesServiceCountersAndHistograms) {
  ServiceOptions options;
  options.workers = 2;
  WhyNotService service(MakeCatalog(), options);
  // m1 executes; m2 has identical content under a fresh key, so it is
  // served from the content-addressed answer cache at Submit.
  ASSERT_TRUE(service.Submit(TinyRequest("m1")).response.get().status.ok());
  ASSERT_TRUE(service.Submit(TinyRequest("m2")).response.get().status.ok());
  const std::string text =
      obs::FormatPrometheus(service.metrics()->Collect());
  EXPECT_NE(
      text.find("ned_service_requests_total{event=\"submitted\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("ned_service_requests_total{event=\"accepted\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("ned_service_requests_total{event=\"completed\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("ned_answer_cache_total{event=\"hit\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ned_request_total_us histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ned_request_total_us_count 1"), std::string::npos)
      << text;
  // Mirror gauges refreshed by the collector.
  EXPECT_NE(text.find("ned_queue_depth 0"), std::string::npos) << text;
  EXPECT_NE(text.find("ned_cache_hits{cache=\"answer\"} 1"),
            std::string::npos)
      << text;
  service.Shutdown();
}

// The counter-race regression (previously: plain uint64 fields written under
// mu_ but read off-lock by tools): stats(), the registry and the exposition
// path are hammered concurrently with a submit storm. Meaningful under TSan,
// which CI runs over this binary.
TEST(Observability, StatsReadsRaceASubmitStormWithoutTearing) {
  ServiceOptions options;
  options.workers = 4;
  WhyNotService service(MakeCatalog(), options);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Relaxed counters give no cross-field ordering mid-race, so the loop
    // only exercises the read paths (the TSan target); exact totals are
    // asserted below once the writers have joined.
    while (!stop.load(std::memory_order_relaxed)) {
      (void)service.stats();
      (void)obs::FormatPrometheus(service.metrics()->Collect());
      (void)service.journal_stats();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto sub = service.Submit(
            TinyRequest(StrCat("storm-", t, "-", i)));
        if (sub.status.ok()) (void)sub.response.get();
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 200u);
  service.Shutdown();
}

}  // namespace
}  // namespace ned
