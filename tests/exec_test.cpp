/// \file exec_test.cpp
/// \brief Unit + property tests for the lineage-tracking evaluator.

#include <gtest/gtest.h>

#include <unordered_set>

#include "exec/evaluator.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::Column;
using testing::MakeTinyDb;
using testing::MustCompile;
using testing::MustEvaluate;

// ---- BaseSet helpers --------------------------------------------------------------

TEST(BaseSet, UnionMergesSorted) {
  BaseSet a = {1, 3, 5}, b = {2, 3, 6};
  EXPECT_EQ(BaseSetUnion(a, b), (BaseSet{1, 2, 3, 5, 6}));
  EXPECT_EQ(BaseSetUnion({}, b), b);
}

TEST(BaseSet, SubsetAndIntersection) {
  std::unordered_set<TupleId> super = {1, 2, 3};
  EXPECT_TRUE(BaseSetSubsetOf({1, 3}, super));
  EXPECT_FALSE(BaseSetSubsetOf({1, 4}, super));
  EXPECT_TRUE(BaseSetSubsetOf({}, super));
  EXPECT_TRUE(BaseSetIntersects({4, 2}, super));
  EXPECT_FALSE(BaseSetIntersects({9}, super));
  EXPECT_EQ(BaseSetIntersection({1, 4, 3}, super), (BaseSet{1, 3}));
}

// ---- QueryInput ----------------------------------------------------------------------

TEST(QueryInput, AssignsDistinctIdsPerAlias) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R1.v FROM R R1, R R2 WHERE R1.k = R2.k", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  auto r1 = input->AliasTuples("R1");
  auto r2 = input->AliasTuples("R2");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ((*r1)->size(), (*r2)->size());
  // Same stored rows, distinct ids: the formal device for self-joins.
  std::unordered_set<TupleId> ids;
  for (const auto& t : **r1) ids.insert(t.rid);
  for (const auto& t : **r2) EXPECT_EQ(ids.count(t.rid), 0u);
}

TEST(QueryInput, FindByIdAndDisplay) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  auto tuples = input->AliasTuples("R");
  ASSERT_TRUE(tuples.ok());
  TupleId id = (*tuples)->at(1).rid;
  const TraceTuple* found = input->FindById(id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->values.at(0).as_int(), 2);
  EXPECT_EQ(input->AliasOfId(id), "R");
  EXPECT_EQ(input->DisplayTuple(id), "R.id:2");
  EXPECT_EQ(input->FindById(MakeTupleId(9, 9)), nullptr);
}

// ---- operator semantics ---------------------------------------------------------------

TEST(Evaluator, SelectFiltersAndLinksPreds) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.id, R.k, R.v FROM R WHERE R.k = 10", db);
  auto out = MustEvaluate(tree, db);
  EXPECT_EQ(Column(out, tree.target_type(), "R.id"),
            (std::vector<std::string>{"1", "2"}));
  for (const auto& t : out) {
    EXPECT_EQ(t.preds.size(), 1u);
    EXPECT_EQ(t.lineage.size(), 1u);
  }
}

TEST(Evaluator, ProjectMergesDuplicatesAndUnionsLineage) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.k FROM R", db);
  auto out = MustEvaluate(tree, db);
  // k values 10, 10, 20 -> two output tuples; the merged one carries both
  // contributing base tuples in its lineage (Cui & Widom projection lineage).
  ASSERT_EQ(out.size(), 2u);
  size_t merged = out[0].values.at(0).as_int() == 10 ? 0 : 1;
  EXPECT_EQ(out[merged].lineage.size(), 2u);
  EXPECT_EQ(out[merged].preds.size(), 2u);
  EXPECT_EQ(out[1 - merged].lineage.size(), 1u);
}

TEST(Evaluator, HashJoinMatchesAndCombinesLineage) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.id, S.id FROM R, S WHERE R.k = S.k", db);
  auto out = MustEvaluate(tree, db);
  // k=10: R rows 1,2 join S row 1. k=20/30: no partner. (The root is the
  // projection; lineage flows through it unchanged.)
  ASSERT_EQ(out.size(), 2u);
  for (const auto& t : out) {
    EXPECT_EQ(t.lineage.size(), 2u);
  }
  EXPECT_EQ(Column(out, tree.target_type(), "R.id"),
            (std::vector<std::string>{"1", "2"}));
  // The join node itself links both children as immediate predecessors.
  const OperatorNode* join = nullptr;
  for (const OperatorNode* node : tree.bottom_up()) {
    if (node->kind == OpKind::kJoin) join = node;
  }
  ASSERT_NE(join, nullptr);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  auto join_out = evaluator.EvalNode(join);
  ASSERT_TRUE(join_out.ok());
  for (const auto& t : **join_out) EXPECT_EQ(t.preds.size(), 2u);
}

TEST(Evaluator, JoinSkipsNullKeys) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "id,k\n1,10\n2,\n").ok());
  NED_CHECK(db.LoadCsv("S", "id,k\n7,10\n8,\n").ok());
  QueryTree tree = MustCompile("SELECT R.id, S.id FROM R, S WHERE R.k = S.k", db);
  auto out = MustEvaluate(tree, db);
  // NULL keys never join, including NULL = NULL.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.at(0).as_int(), 1);
}

TEST(Evaluator, JoinWithNumericCoercedKeys) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "id,k\n1,10\n").ok());
  Relation s("S", Schema({{"S", "id"}, {"S", "k"}}));
  s.AddRow({Value::Int(7), Value::Real(10.0)});  // double key
  NED_CHECK(db.AddRelation(std::move(s)).ok());
  QueryTree tree = MustCompile("SELECT R.id, S.id FROM R, S WHERE R.k = S.k", db);
  auto out = MustEvaluate(tree, db);
  EXPECT_EQ(out.size(), 1u);  // int 10 joins double 10.0
}

TEST(Evaluator, SelfJoinProducesDistinctLineages) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R1.id, R2.id FROM R R1, R R2 WHERE R1.k = R2.k", db);
  auto out = MustEvaluate(tree, db);
  // k=10 pairs: (1,1) (1,2) (2,1) (2,2); k=20: (3,3) -> 5 tuples.
  ASSERT_EQ(out.size(), 5u);
  for (const auto& t : out) {
    // Even the (1,1) pair has two lineage entries: the R1 copy and the R2
    // copy of the same stored row are distinct tuples of I_Q.
    EXPECT_EQ(t.lineage.size(), 2u);
    EXPECT_NE(TupleIdAlias(t.lineage[0]), TupleIdAlias(t.lineage[1]));
  }
}

TEST(Evaluator, UnionDeduplicatesAcrossSides) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "v\nx\ny\n").ok());
  NED_CHECK(db.LoadCsv("S", "w\ny\nz\n").ok());
  QueryTree tree = MustCompile("SELECT R.v FROM R UNION SELECT S.w FROM S", db);
  auto out = MustEvaluate(tree, db);
  ASSERT_EQ(out.size(), 3u);  // x, y, z with y merged
  for (const auto& t : out) {
    if (t.values.at(0).as_string() == "y") {
      EXPECT_EQ(t.lineage.size(), 2u);  // both sides contribute
      EXPECT_EQ(t.preds.size(), 2u);
    } else {
      EXPECT_EQ(t.lineage.size(), 1u);
    }
  }
}

TEST(Evaluator, AggregateGroupsAndComputes) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.k, count(R.id) AS c, sum(R.id) AS s, avg(R.id) AS a, "
      "min(R.id) AS lo, max(R.id) AS hi FROM R GROUP BY R.k",
      db);
  auto out = MustEvaluate(tree, db);
  ASSERT_EQ(out.size(), 2u);
  const Schema& type = tree.target_type();
  for (const auto& t : out) {
    int64_t k = t.values.at(*type.IndexOf(Attribute::Parse("R.k"))).as_int();
    auto get = [&](const char* attr) {
      return t.values.at(*type.IndexOf(Attribute::Parse(attr)));
    };
    if (k == 10) {  // rows id 1 and 2
      EXPECT_EQ(get("c").as_int(), 2);
      EXPECT_DOUBLE_EQ(get("s").as_double(), 3.0);
      EXPECT_DOUBLE_EQ(get("a").as_double(), 1.5);
      EXPECT_EQ(get("lo").as_int(), 1);
      EXPECT_EQ(get("hi").as_int(), 2);
      EXPECT_EQ(t.lineage.size(), 2u);
    } else {
      EXPECT_EQ(get("c").as_int(), 1);
      EXPECT_EQ(t.lineage.size(), 1u);
    }
  }
}

TEST(Evaluator, AggregateSkipsNulls) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "k,v\n1,10\n1,\n2,\n").ok());
  QueryTree tree = MustCompile(
      "SELECT R.k, count(R.v) AS c, sum(R.v) AS s FROM R GROUP BY R.k", db);
  auto out = MustEvaluate(tree, db);
  ASSERT_EQ(out.size(), 2u);
  const Schema& type = tree.target_type();
  for (const auto& t : out) {
    int64_t k = t.values.at(0).as_int();
    const Value& c = t.values.at(*type.IndexOf(Attribute::Parse("c")));
    const Value& s = t.values.at(*type.IndexOf(Attribute::Parse("s")));
    if (k == 1) {
      EXPECT_EQ(c.as_int(), 1);  // NULL not counted
      EXPECT_DOUBLE_EQ(s.as_double(), 10.0);
    } else {
      EXPECT_EQ(c.as_int(), 0);
      EXPECT_TRUE(s.is_null());  // sum over empty = NULL
    }
  }
}

TEST(Evaluator, SumOverStringsErrors) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "k,v\n1,abc\n").ok());
  QueryTree tree = MustCompile(
      "SELECT R.k, sum(R.v) AS s FROM R GROUP BY R.k", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  EXPECT_FALSE(evaluator.EvalAll().ok());
}

TEST(Evaluator, EmptyInputYieldsEmptyAggregate) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "k,v\n").ok());
  QueryTree tree = MustCompile(
      "SELECT R.k, sum(R.v) AS s FROM R GROUP BY R.k", db);
  auto out = MustEvaluate(tree, db);
  EXPECT_TRUE(out.empty());
}

TEST(Evaluator, MemoizationReturnsSamePointer) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R WHERE R.k = 10", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  auto first = evaluator.EvalAll();
  auto second = evaluator.EvalAll();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_NE(evaluator.TryGetOutput(tree.root()), nullptr);
}

TEST(Evaluator, HowProvenanceRendersLineageProducts) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.id, S.id FROM R, S WHERE R.k = S.k", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  auto out = evaluator.EvalAll();
  ASSERT_TRUE(out.ok());
  for (const TraceTuple& t : **out) {
    std::string how = HowProvenance(t, *input);
    EXPECT_NE(how.find("R.id:"), std::string::npos);
    EXPECT_NE(how.find(" * S.id:"), std::string::npos);
  }
}

// ---- whole-tree lineage invariants ----------------------------------------------------

TEST(Evaluator, LineageInvariantsHoldEverywhere) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.k, count(S.w) AS c FROM R, S WHERE R.k = S.k GROUP BY R.k", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  Evaluator evaluator(&tree, &*input);
  ASSERT_TRUE(evaluator.EvalAll().ok());

  std::unordered_set<TupleId> base_ids;
  for (const auto& alias : input->aliases()) {
    for (const auto& t : **input->AliasTuples(alias)) base_ids.insert(t.rid);
  }
  for (const OperatorNode* node : tree.bottom_up()) {
    const std::vector<TraceTuple>* out = evaluator.TryGetOutput(node);
    ASSERT_NE(out, nullptr);
    for (const TraceTuple& t : *out) {
      EXPECT_FALSE(t.lineage.empty());
      EXPECT_TRUE(std::is_sorted(t.lineage.begin(), t.lineage.end()));
      EXPECT_TRUE(BaseSetSubsetOf(t.lineage, base_ids));
      if (!node->is_leaf()) {
        EXPECT_FALSE(t.preds.empty());
        EXPECT_TRUE(IsBaseRid(t.lineage.front()));
      }
    }
  }
}

}  // namespace
}  // namespace ned
