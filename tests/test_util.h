/// \file test_util.h
/// \brief Shared fixtures for the test suite: tiny databases, query-building
/// shortcuts and result-inspection helpers.

#ifndef NED_TESTS_TEST_UTIL_H_
#define NED_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "canonical/canonicalizer.h"
#include "core/nedexplain.h"
#include "exec/evaluator.h"
#include "relational/database.h"
#include "sql/binder.h"

namespace ned {
namespace testing {

/// Asserts that a Result<T> is OK and returns its value.
#define NED_ASSERT_OK_AND_MOVE(lhs, expr)                 \
  auto NED_CONCAT_(_r_, __LINE__) = (expr);               \
  ASSERT_TRUE(NED_CONCAT_(_r_, __LINE__).ok())            \
      << NED_CONCAT_(_r_, __LINE__).status().ToString(); \
  lhs = std::move(NED_CONCAT_(_r_, __LINE__)).value()

#define NED_EXPECT_OK(expr)                                       \
  do {                                                            \
    auto _st = (expr);                                            \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

/// Two-relation test database:
///   R(id, k, v): (1,10,a) (2,10,b) (3,20,c)
///   S(id, k, w): (1,10,x) (2,30,y)
inline Database MakeTinyDb() {
  Database db;
  Relation r("R", Schema({{"R", "id"}, {"R", "k"}, {"R", "v"}}));
  r.AddRow({Value::Int(1), Value::Int(10), Value::Str("a")});
  r.AddRow({Value::Int(2), Value::Int(10), Value::Str("b")});
  r.AddRow({Value::Int(3), Value::Int(20), Value::Str("c")});
  NED_CHECK(db.AddRelation(std::move(r)).ok());
  Relation s("S", Schema({{"S", "id"}, {"S", "k"}, {"S", "w"}}));
  s.AddRow({Value::Int(1), Value::Int(10), Value::Str("x")});
  s.AddRow({Value::Int(2), Value::Int(30), Value::Str("y")});
  NED_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

/// Compiles SQL against `db`, asserting success.
inline QueryTree MustCompile(const std::string& sql, const Database& db,
                             const CanonicalizeOptions& options = {}) {
  auto tree = CompileSql(sql, db, options);
  NED_CHECK_MSG(tree.ok(), tree.status().ToString());
  return std::move(tree).value();
}

/// Evaluates the full tree, asserting success; returns the root output.
inline std::vector<TraceTuple> MustEvaluate(const QueryTree& tree,
                                            const Database& db) {
  auto input = QueryInput::Build(tree, db);
  NED_CHECK_MSG(input.ok(), input.status().ToString());
  Evaluator evaluator(&tree, &*input);
  auto out = evaluator.EvalAll();
  NED_CHECK_MSG(out.ok(), out.status().ToString());
  return **out;
}

/// The values of one attribute across an output, as strings (sorted).
inline std::vector<std::string> Column(const std::vector<TraceTuple>& tuples,
                                       const Schema& schema,
                                       const std::string& dotted_attr) {
  auto idx = schema.IndexOf(Attribute::Parse(dotted_attr));
  NED_CHECK_MSG(idx.has_value(), "no attribute " + dotted_attr);
  std::vector<std::string> out;
  for (const auto& t : tuples) out.push_back(t.values.at(*idx).ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs NedExplain end to end, asserting success.
inline NedExplainResult MustExplain(const QueryTree& tree, const Database& db,
                                    const WhyNotQuestion& question,
                                    NedExplainOptions options = {}) {
  auto engine = NedExplainEngine::Create(&tree, &db, options);
  NED_CHECK_MSG(engine.ok(), engine.status().ToString());
  auto result = engine->Explain(question);
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

/// Names of the condensed-answer nodes.
inline std::vector<std::string> CondensedNames(const WhyNotAnswer& answer) {
  std::vector<std::string> names;
  for (const OperatorNode* node : answer.condensed) names.push_back(node->name);
  return names;
}

/// Operator kinds of the condensed-answer nodes (sorted by name).
inline std::vector<OpKind> CondensedKinds(const WhyNotAnswer& answer) {
  std::vector<OpKind> kinds;
  for (const OperatorNode* node : answer.condensed) kinds.push_back(node->kind);
  return kinds;
}

/// True if some condensed node has the given kind.
inline bool CondensedHasKind(const WhyNotAnswer& answer, OpKind kind) {
  for (const OperatorNode* node : answer.condensed) {
    if (node->kind == kind) return true;
  }
  return false;
}

}  // namespace testing
}  // namespace ned

#endif  // NED_TESTS_TEST_UTIL_H_
