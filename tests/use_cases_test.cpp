/// \file use_cases_test.cpp
/// \brief Locks in the Table 5 reproduction: for every use case of the
/// paper's evaluation, the qualitative answer shape (which operator class is
/// blamed, where the baseline fails) must match the paper -- plus golden-file
/// snapshots of the *full* answers under tests/golden/, regenerated with
/// `use_cases_test --update-golden`.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/whynot_baseline.h"
#include "common/atomic_file.h"
#include "common/csv.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/crime.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "datasets/gov.h"
#include "datasets/imdb.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {

/// Set by main() on --update-golden: rewrite tests/golden/*.golden instead of
/// comparing against them.
bool g_update_golden = false;

namespace {

using testing::CondensedHasKind;

const UseCaseRegistry& Registry() {
  static const UseCaseRegistry* registry = [] {
    auto r = UseCaseRegistry::Build();
    NED_CHECK(r.ok());
    return new UseCaseRegistry(std::move(r).value());
  }();
  return *registry;
}

struct CaseRun {
  QueryTree tree;
  NedExplainResult ned;
  WhyNotBaselineResult baseline;
  const Database* db;
  std::shared_ptr<NedExplainEngine> engine;
};

CaseRun RunCase(const std::string& name) {
  auto uc = Registry().Find(name);
  NED_CHECK(uc.ok());
  const Database& db = Registry().database((*uc)->db_name);
  auto tree = Registry().BuildTree(**uc);
  NED_CHECK_MSG(tree.ok(), tree.status().ToString());
  CaseRun run{std::move(tree).value(), {}, {}, &db, nullptr};
  auto engine = NedExplainEngine::Create(&run.tree, &db);
  NED_CHECK(engine.ok());
  run.engine = std::make_shared<NedExplainEngine>(std::move(engine).value());
  auto ned = run.engine->Explain((*uc)->question);
  NED_CHECK_MSG(ned.ok(), ned.status().ToString());
  run.ned = std::move(ned).value();
  auto baseline = WhyNotBaseline::Create(&run.tree, &db);
  NED_CHECK(baseline.ok());
  auto base = baseline->Explain((*uc)->question);
  NED_CHECK(base.ok());
  run.baseline = std::move(base).value();
  return run;
}

/// The set of Dir-tuple display names blamed in the detailed answer.
std::set<std::string> BlamedTuples(const CaseRun& run) {
  std::set<std::string> out;
  for (const auto& entry : run.ned.answer.detailed) {
    if (!entry.is_bottom()) {
      out.insert(run.engine->last_input().DisplayTuple(entry.dir_tuple));
    }
  }
  return out;
}

// ---- golden snapshots -----------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(NED_TEST_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string NodeLabel(const OperatorNode* node) {
  return node->name + ": " + node->Describe();
}

/// Deterministic rendering of everything Table 5 talks about: the full
/// detailed/condensed/secondary answers, per-c-tuple compatible-set sizes
/// and survivors, and the baseline's verdict. List entries whose order is
/// not semantically meaningful are sorted so incidental iteration-order
/// changes do not churn the files.
std::string Snapshot(const UseCase& uc, const CaseRun& run) {
  std::ostringstream os;
  os << "use-case: " << uc.name << " (" << uc.query_name << " over "
     << uc.db_name << ")\n";
  os << "sql: " << uc.sql << "\n";
  os << "question: " << uc.question.ToString() << "\n";
  os << "== nedexplain ==\n";
  std::vector<std::string> detailed;
  for (const auto& entry : run.ned.answer.detailed) {
    std::string who = entry.is_bottom()
                          ? "(bottom)"
                          : run.engine->last_input().DisplayTuple(
                                entry.dir_tuple);
    detailed.push_back(who + " @ " + NodeLabel(entry.subquery));
  }
  std::sort(detailed.begin(), detailed.end());
  for (const auto& line : detailed) os << "detailed: " << line << "\n";
  for (const OperatorNode* node : run.ned.answer.condensed) {
    os << "condensed: " << NodeLabel(node) << "\n";
  }
  std::vector<std::string> secondary;
  for (const OperatorNode* node : run.ned.answer.secondary) {
    secondary.push_back(NodeLabel(node));
  }
  std::sort(secondary.begin(), secondary.end());
  for (const auto& line : secondary) os << "secondary: " << line << "\n";
  for (size_t i = 0; i < run.ned.per_ctuple.size(); ++i) {
    const auto& part = run.ned.per_ctuple[i];
    os << "ctuple[" << i << "]: " << part.ctuple.ToString()
       << " | dir=" << part.compat.dir.size()
       << " indir=" << part.compat.indir.size()
       << " survivors=" << part.survivors_at_root << "\n";
  }
  os << "== baseline ==\n";
  if (!run.baseline.supported) {
    os << "supported: no (" << run.baseline.unsupported_reason << ")\n";
    return os.str();
  }
  os << "supported: yes\n";
  os << "answer: " << run.baseline.AnswerToString() << "\n";
  for (size_t i = 0; i < run.baseline.per_ctuple.size(); ++i) {
    const auto& part = run.baseline.per_ctuple[i];
    os << "ctuple[" << i << "]: unpicked=" << part.unpicked_items
       << " frontier="
       << (part.frontier_picky ? part.frontier_picky->name : "-")
       << " present=" << (part.answer_deemed_present ? "yes" : "no") << "\n";
  }
  return os.str();
}

TEST(Golden, AllUseCasesMatchCheckedInSnapshots) {
  ASSERT_EQ(Registry().use_cases().size(), 19u);
  for (const UseCase& uc : Registry().use_cases()) {
    CaseRun run = RunCase(uc.name);
    std::string snapshot = Snapshot(uc, run);
    std::string path = GoldenPath(uc.name);
    if (g_update_golden) {
      // Atomic replace: an interrupted --update-golden run must leave each
      // golden either untouched or fully rewritten, never torn.
      ASSERT_TRUE(AtomicWriteFile(path, snapshot).ok()) << path;
      continue;
    }
    auto golden = ReadFile(path);
    ASSERT_TRUE(golden.ok())
        << "missing golden file " << path
        << "; generate with: use_cases_test --update-golden";
    EXPECT_EQ(*golden, snapshot)
        << uc.name << " drifted from " << path
        << "\n(if the change is intentional, rerun with --update-golden "
           "and review the file diff)";
  }
}

// The same 19 snapshots must be byte-identical at every thread count: the
// golden files pin serial output, so this transitively proves intra-query
// parallelism never changes a published answer (see docs/PARALLELISM.md).
TEST(Golden, AllUseCasesAreThreadCountInvariant) {
  ASSERT_EQ(Registry().use_cases().size(), 19u);
  TaskPool pool(3);
  for (const UseCase& uc : Registry().use_cases()) {
    auto tree = Registry().BuildTree(uc);
    ASSERT_TRUE(tree.ok()) << uc.name;
    const Database& db = Registry().database(uc.db_name);
    auto engine = NedExplainEngine::Create(&*tree, &db);
    ASSERT_TRUE(engine.ok()) << uc.name;

    auto serial = engine->Explain(uc.question);
    ASSERT_TRUE(serial.ok()) << uc.name;
    const std::string serial_report =
        RenderExplainReport(*engine, uc.question, *serial);

    for (int threads : {1, 2, 4}) {
      ExecContext ctx;
      ctx.set_parallelism(&pool, threads);
      ctx.set_parallel_min_rows(4);
      auto par = engine->Explain(uc.question, &ctx);
      ASSERT_TRUE(par.ok()) << uc.name << " threads=" << threads;
      EXPECT_TRUE(par->completeness.complete)
          << uc.name << " threads=" << threads;
      EXPECT_EQ(RenderExplainReport(*engine, uc.question, *par),
                serial_report)
          << uc.name << ": report changed at threads=" << threads;
    }
  }
  EXPECT_LE(pool.peak_active(), static_cast<size_t>(pool.thread_count()));
}

// ---- databases themselves ------------------------------------------------------

TEST(Datasets, RelationSizesAreInPaperRange) {
  // Paper: 89 to 9341 records per relation.
  for (const char* db_name : {"crime", "imdb", "gov"}) {
    const Database& db = Registry().database(db_name);
    for (const auto& name : db.RelationNames()) {
      auto rel = db.GetRelation(name);
      ASSERT_TRUE(rel.ok());
      EXPECT_GE((*rel)->size(), 9u) << db_name << "." << name;
      EXPECT_LE((*rel)->size(), 9341u) << db_name << "." << name;
    }
  }
}

TEST(Datasets, ScaleGrowsVolume) {
  auto r1 = BuildCrimeDb(1);
  auto r2 = BuildCrimeDb(2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->TotalRows(), r1->TotalRows());
  auto i2 = BuildImdbDb(2);
  ASSERT_TRUE(i2.ok());
  auto g2 = BuildGovDb(2);
  ASSERT_TRUE(g2.ok());
}

TEST(Datasets, AskedTuplesAreGenuinelyMissing) {
  // Every use case's question must describe data truly absent from the
  // result (except where the paper discusses survivors explicitly).
  for (const UseCase& uc : Registry().use_cases()) {
    auto tree = Registry().BuildTree(uc);
    ASSERT_TRUE(tree.ok()) << uc.name;
    auto engine =
        NedExplainEngine::Create(&*tree, &Registry().database(uc.db_name));
    ASSERT_TRUE(engine.ok());
    auto result = engine->Explain(uc.question);
    ASSERT_TRUE(result.ok()) << uc.name;
    for (const auto& part : result->per_ctuple) {
      // For aggregation questions a *group* survivor can reach the root
      // while violating the aggregate condition (Crime9: Betsy's count is 7,
      // not > 8), so only SPJ(U) cases must have zero survivors.
      if (!part.compat.cond_alpha.empty()) continue;
      EXPECT_EQ(part.survivors_at_root, 0u)
          << uc.name << ": question data is present in the result";
    }
  }
}

// ---- Table 5, row by row ----------------------------------------------------------

TEST(Table5, Crime1BothCompatiblesDieAtTheTopJoin) {
  CaseRun run = RunCase("Crime1");
  // NedExplain: Hank and both car thefts die at the same (top) join.
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  EXPECT_EQ(BlamedTuples(run),
            (std::set<std::string>{"P.id:1", "C.id:100", "C.id:101"}));
  // Baseline: Hank's plain successors reach the result -> deemed present.
  EXPECT_TRUE(run.baseline.answer.empty());
  EXPECT_TRUE(run.baseline.per_ctuple[0].answer_deemed_present);
}

TEST(Table5, Crime2TwoNodesForNedOneForBaseline) {
  CaseRun run = RunCase("Crime2");
  // Roger (never described) dies at the P-S join; the car thefts at the top.
  ASSERT_EQ(run.ned.answer.condensed.size(), 2u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  EXPECT_EQ(run.ned.answer.condensed[1]->kind, OpKind::kJoin);
  EXPECT_EQ(run.baseline.answer.size(), 1u);
}

TEST(Table5, Crime3EmptiedSelectionBlamedForCarThefts) {
  CaseRun run = RunCase("Crime3");
  // Q2's sector>99 empties: the car thefts are blocked at that selection.
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kSelect));
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kJoin));
}

TEST(Table5, Crime5SecondaryPointsAtTheEmptiedSelection) {
  CaseRun run = RunCase("Crime5");
  // Hank is blocked at the top join; the *secondary* answer surfaces the
  // emptied sector selection (the paper's m4) among the killers of the
  // indirect relations.
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  bool has_selection = false;
  for (const OperatorNode* node : run.ned.answer.secondary) {
    if (node->kind == OpKind::kSelect) has_selection = true;
  }
  EXPECT_TRUE(has_selection);
  // Baseline blames the emptied selection directly.
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0]->kind, OpKind::kSelect);
}

TEST(Table5, Crime6NedBlamesTheJoinBaselineTheWrongSelection) {
  CaseRun run = RunCase("Crime6");
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  EXPECT_EQ(BlamedTuples(run),
            (std::set<std::string>{"C2.id:130", "C2.id:131"}));
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0]->kind, OpKind::kSelect);
}

TEST(Table5, Crime7AddsSusansJoin) {
  CaseRun run = RunCase("Crime7");
  // Two picky joins: kidnappings at the crime join, Susan at the witness
  // join; the baseline still reports only the wrong selection.
  ASSERT_EQ(run.ned.answer.condensed.size(), 2u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  EXPECT_EQ(run.ned.answer.condensed[1]->kind, OpKind::kJoin);
  EXPECT_EQ(BlamedTuples(run).count("W.id:2"), 1u);
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0]->kind, OpKind::kSelect);
}

TEST(Table5, Crime8NedFindsTheBlockingOperator) {
  CaseRun run = RunCase("Crime8");
  // Audrey's only valid successor pairs her with her own P1 copy (same
  // hair), which the name-inequality selection removes -- so per Defs.
  // 2.9-2.12 the picky subquery is that selection. (The paper's prose
  // reports the hair join because its narrative ignores the self-pairing;
  // see EXPERIMENTS.md.) The headline contrast holds either way: the
  // baseline concludes Audrey is not missing at all.
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kSelect);
  EXPECT_NE(run.ned.answer.condensed[0]->predicate->ToString().find("!="),
            std::string::npos);
  EXPECT_EQ(BlamedTuples(run), (std::set<std::string>{"P2.id:3"}));  // Audrey
  EXPECT_TRUE(run.baseline.answer.empty());
  EXPECT_TRUE(run.baseline.per_ctuple[0].answer_deemed_present);
}

TEST(Table5, Crime9BottomEntryAtTheSectorFilter) {
  CaseRun run = RunCase("Crime9");
  ASSERT_EQ(run.ned.answer.detailed.size(), 1u);
  EXPECT_TRUE(run.ned.answer.detailed[0].is_bottom());
  EXPECT_EQ(run.ned.answer.detailed[0].subquery->kind, OpKind::kSelect);
  EXPECT_FALSE(run.baseline.supported);
}

TEST(Table5, Crime10RogerErasedInsideV) {
  CaseRun run = RunCase("Crime10");
  ASSERT_EQ(run.ned.answer.detailed.size(), 1u);
  EXPECT_FALSE(run.ned.answer.detailed[0].is_bottom());
  EXPECT_EQ(run.ned.answer.detailed[0].subquery->kind, OpKind::kJoin);
  EXPECT_EQ(BlamedTuples(run), (std::set<std::string>{"P.id:2"}));
  EXPECT_FALSE(run.baseline.supported);
}

TEST(Table5, Imdb1SelectionPlusJoin) {
  CaseRun run = RunCase("Imdb1");
  ASSERT_EQ(run.ned.answer.condensed.size(), 2u);
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kSelect));
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kJoin));
  // Avatar's movie row dies at the year filter; its rating row at the join.
  EXPECT_EQ(BlamedTuples(run), (std::set<std::string>{"M.id:18", "R.id:124"}));
  // Baseline: only the year selection (it stops at the first frontier).
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0]->kind, OpKind::kSelect);
}

TEST(Table5, Imdb2ValidSuccessorsFindWhatPlainTracingMisses) {
  CaseRun run = RunCase("Imdb2");
  // NedExplain: everything converges on the location join.
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  EXPECT_EQ(BlamedTuples(run),
            (std::set<std::string>{"M.id:40", "R.id:200", "L.id:301"}));
  // Baseline: plain successors reach the result -> no answer at all.
  EXPECT_TRUE(run.baseline.answer.empty());
  EXPECT_TRUE(run.baseline.per_ctuple[0].answer_deemed_present);
}

TEST(Table5, Gov1FourChristophersTwoOperators) {
  CaseRun run = RunCase("Gov1");
  ASSERT_EQ(run.ned.answer.condensed.size(), 2u);
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kSelect));
  EXPECT_TRUE(CondensedHasKind(run.ned.answer, OpKind::kJoin));
  EXPECT_EQ(BlamedTuples(run),
            (std::set<std::string>{"Co.id:569", "Co.id:1495", "Co.id:772",
                                   "Co.id:1072"}));
  // MURPHY (1072) is the one blamed on the join.
  for (const auto& entry : run.ned.answer.detailed) {
    std::string display = run.engine->last_input().DisplayTuple(entry.dir_tuple);
    if (display == "Co.id:1072") {
      EXPECT_EQ(entry.subquery->kind, OpKind::kJoin);
    } else {
      EXPECT_EQ(entry.subquery->kind, OpKind::kSelect);
    }
  }
}

TEST(Table5, Gov2And3SingleTupleAnswers) {
  CaseRun murphy = RunCase("Gov2");
  ASSERT_EQ(murphy.ned.answer.detailed.size(), 1u);
  EXPECT_EQ(murphy.ned.answer.detailed[0].subquery->kind, OpKind::kJoin);
  CaseRun gibson = RunCase("Gov3");
  ASSERT_EQ(gibson.ned.answer.detailed.size(), 1u);
  EXPECT_EQ(gibson.ned.answer.detailed[0].subquery->kind, OpKind::kSelect);
}

TEST(Table5, Gov4SponsorAtThePartyFilterStagesAtTheJoin) {
  CaseRun run = RunCase("Gov4");
  EXPECT_EQ(BlamedTuples(run),
            (std::set<std::string>{"SPO.id:9", "ES.id:78", "ES.id:79",
                                   "ES.id:80"}));
  ASSERT_EQ(run.ned.answer.condensed.size(), 2u);
  // Baseline finds only the party selection.
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0]->kind, OpKind::kSelect);
}

TEST(Table5, Gov5EverythingAtTheTopJoin) {
  CaseRun run = RunCase("Gov5");
  ASSERT_EQ(run.ned.answer.condensed.size(), 1u);
  EXPECT_EQ(run.ned.answer.condensed[0]->kind, OpKind::kJoin);
  // Lugar plus many large earmarks.
  EXPECT_GT(run.ned.answer.detailed.size(), 100u);
  EXPECT_EQ(BlamedTuples(run).count("SPO.id:199"), 1u);
  // Baseline agrees on the join here (Lugar's piece dies there).
  ASSERT_EQ(run.baseline.answer.size(), 1u);
  EXPECT_EQ(run.baseline.answer[0], run.ned.answer.condensed[0]);
}

TEST(Table5, Gov6BennettsSumFlipsAtTheSubstageFilter) {
  CaseRun run = RunCase("Gov6");
  ASSERT_EQ(run.ned.answer.detailed.size(), 1u);
  EXPECT_TRUE(run.ned.answer.detailed[0].is_bottom());
  const OperatorNode* node = run.ned.answer.detailed[0].subquery;
  EXPECT_EQ(node->kind, OpKind::kSelect);
  EXPECT_NE(node->predicate->ToString().find("substage"), std::string::npos);
  EXPECT_FALSE(run.baseline.supported);
}

TEST(Table5, Gov7FirstDisjunctAnswersSecondEmpty) {
  CaseRun run = RunCase("Gov7");
  ASSERT_EQ(run.ned.per_ctuple.size(), 2u);
  EXPECT_FALSE(run.ned.per_ctuple[0].answer.detailed.empty());
  EXPECT_TRUE(run.ned.per_ctuple[1].answer.detailed.empty());
  EXPECT_EQ(BlamedTuples(run), (std::set<std::string>{"Co.id:800"}));
  EXPECT_FALSE(run.baseline.supported);
}

TEST(Table5, NedExplainAnswersAreAtLeastAsInformative) {
  // For every supported use case, the baseline's (single) answer never
  // exceeds NedExplain's condensed answer in size, and NedExplain always
  // produces an answer where the baseline produces one.
  for (const UseCase& uc : Registry().use_cases()) {
    CaseRun run = RunCase(uc.name);
    if (!run.baseline.supported) continue;
    EXPECT_LE(run.baseline.answer.size(), run.ned.answer.condensed.size() +
                                              run.ned.answer.secondary.size())
        << uc.name;
    if (!run.baseline.answer.empty()) {
      EXPECT_FALSE(run.ned.answer.condensed.empty()) << uc.name;
    }
  }
}

}  // namespace
}  // namespace ned

// Custom main (instead of gtest_main) so `--update-golden` can rewrite the
// snapshots under tests/golden/ in place.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") ned::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
