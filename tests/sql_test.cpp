/// \file sql_test.cpp
/// \brief Unit tests for the SQL lexer, parser and binder.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "testing/workload.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;

// ---- lexer -----------------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, 42 FROM t WHERE x >= 2.5 AND y != 'hi'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(Lexer, NumberLiterals) {
  auto tokens = Tokenize("42 -7 2.5 -0.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].literal.as_int(), 42);
  EXPECT_EQ((*tokens)[1].literal.as_int(), -7);
  EXPECT_DOUBLE_EQ((*tokens)[2].literal.as_double(), 2.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].literal.as_double(), -0.25);
}

TEST(Lexer, DottedAttributeIsNotADouble) {
  auto tokens = Tokenize("t1.col");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // t1, ., col, END
  EXPECT_EQ((*tokens)[0].text, "t1");
  EXPECT_TRUE((*tokens)[1].IsSymbol("."));
  EXPECT_EQ((*tokens)[2].text, "col");
}

TEST(Lexer, StringLiteralsWithEscapedQuote) {
  auto tokens = Tokenize("'Senate Committee' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].literal.as_string(), "Senate Committee");
  EXPECT_EQ((*tokens)[1].literal.as_string(), "it's");
}

TEST(Lexer, OperatorVariants) {
  auto tokens = Tokenize("a <> b != c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "!=");  // <> normalised
  EXPECT_EQ((*tokens)[3].text, "!=");
  EXPECT_EQ((*tokens)[5].text, "<=");
  EXPECT_EQ((*tokens)[7].text, ">=");
}

TEST(Lexer, RejectsJunkAndUnterminatedString) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("'open").ok());
}

// ---- parser -----------------------------------------------------------------------

TEST(Parser, BasicSelect) {
  auto q = ParseSql("SELECT a, t.b FROM t");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->blocks.size(), 1u);
  const auto& block = q->blocks[0];
  ASSERT_EQ(block.select.size(), 2u);
  EXPECT_EQ(block.select[0].column.FullName(), "a");
  EXPECT_EQ(block.select[1].column.FullName(), "t.b");
  ASSERT_EQ(block.from.size(), 1u);
  EXPECT_EQ(block.from[0].first, "t");
}

TEST(Parser, FromAliases) {
  auto q = ParseSql("SELECT C1.type FROM C C1, C C2");
  ASSERT_TRUE(q.ok());
  const auto& from = q->blocks[0].from;
  ASSERT_EQ(from.size(), 2u);
  EXPECT_EQ(from[0], (std::pair<std::string, std::string>{"C", "C1"}));
  EXPECT_EQ(from[1], (std::pair<std::string, std::string>{"C", "C2"}));
}

TEST(Parser, WhereConjuncts) {
  auto q = ParseSql("SELECT a FROM t WHERE t.x = s.y AND t.z > 5 AND 3 < t.w");
  ASSERT_TRUE(q.ok());
  const auto& where = q->blocks[0].where;
  ASSERT_EQ(where.size(), 3u);
  EXPECT_TRUE(where[0].left.is_column);
  EXPECT_TRUE(where[0].right.is_column);
  EXPECT_EQ(where[1].op, CompareOp::kGt);
  EXPECT_FALSE(where[2].left.is_column);
}

TEST(Parser, AggregatesAndGroupBy) {
  auto q = ParseSql(
      "SELECT P.name, count(C.type) AS ct FROM P, C GROUP BY P.name");
  ASSERT_TRUE(q.ok());
  const auto& block = q->blocks[0];
  EXPECT_FALSE(block.select[0].is_aggregate);
  EXPECT_TRUE(block.select[1].is_aggregate);
  EXPECT_EQ(block.select[1].function, "count");
  EXPECT_EQ(block.select[1].alias, "ct");
  ASSERT_EQ(block.group_by.size(), 1u);
  EXPECT_EQ(block.group_by[0].FullName(), "P.name");
}

TEST(Parser, Union) {
  auto q = ParseSql("SELECT a FROM t UNION SELECT b FROM s");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->blocks.size(), 2u);
}

TEST(Parser, SelectStar) {
  auto q = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->blocks[0].select_star);
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSql("select a from t where a = 1 group by a").ok());
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra junk").ok());
  EXPECT_FALSE(ParseSql("SELECT count(a FROM t").ok());
}

// ---- binder -----------------------------------------------------------------------

TEST(Binder, ClassifiesJoinsVsSelections) {
  Database db = MakeTinyDb();
  auto ast = ParseSql(
      "SELECT R.v FROM R, S WHERE R.k = S.k AND R.id > 1 AND R.v != R.v");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const QueryBlock& block = spec->blocks[0];
  ASSERT_EQ(block.joins.size(), 1u);
  EXPECT_EQ(block.joins[0].left.FullName(), "R.k");
  EXPECT_EQ(block.joins[0].out_name, "k");
  EXPECT_EQ(block.selections.size(), 2u);  // R.id > 1 and the same-alias comp
}

TEST(Binder, ResolvesUnqualifiedColumns) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT v FROM R WHERE w = 'x' AND v = 'a'");
  ASSERT_TRUE(ast.ok());
  // w only exists in S, which is not in scope.
  EXPECT_FALSE(BindSql(*ast, db).ok());
  auto ast2 = ParseSql("SELECT v FROM R WHERE v = 'a'");
  ASSERT_TRUE(ast2.ok());
  auto spec = BindSql(*ast2, db);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->blocks[0].projection[0].FullName(), "R.v");
}

TEST(Binder, AmbiguousUnqualifiedColumnRejected) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT k FROM R, S");  // k in both R and S, no join
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(BindSql(*ast, db).ok());
}

TEST(Binder, RenamedOutputNameResolvableInSelect) {
  // "SELECT k FROM R, S WHERE R.k = S.k": `k` is ambiguous among the base
  // attributes but names the join renaming's output.
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT k FROM R, S WHERE R.k = S.k");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->blocks[0].projection[0].FullName(), "k");
}

TEST(Binder, JoinNameCollisionGetsSuffix) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "k\n1\n").ok());
  NED_CHECK(db.LoadCsv("B", "k\n1\n").ok());
  NED_CHECK(db.LoadCsv("C", "k\n1\n").ok());
  auto ast = ParseSql("SELECT A.k FROM A, B, C WHERE A.k = B.k AND B.k = C.k");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->blocks[0].joins[0].out_name, "k");
  EXPECT_EQ(spec->blocks[0].joins[1].out_name, "k_2");
}

TEST(Binder, NonGroupedSelectColumnRejected) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT R.v, count(R.id) AS c FROM R GROUP BY R.k");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(BindSql(*ast, db).ok());
}

TEST(Binder, DefaultAggregateOutputName) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT R.k, sum(R.id) FROM R GROUP BY R.k");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->blocks[0].agg->calls[0].out_name, "sum_id");
}

TEST(Binder, UnionAliasSetsOutputNames) {
  // A first-block column alias under a set op renames the union's output
  // columns (how Q12's "name" survives the SQL round-trip in the service).
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT R.v AS out FROM R UNION SELECT S.w FROM S");
  ASSERT_TRUE(ast.ok());
  auto spec = BindSql(*ast, db);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->union_names.size(), 1u);
  EXPECT_EQ(spec->union_names[0], "out");
  // Single-block aliases stay inert: projection keeps attribute names.
  auto single = ParseSql("SELECT R.v AS out FROM R");
  ASSERT_TRUE(single.ok());
  auto single_spec = BindSql(*single, db);
  ASSERT_TRUE(single_spec.ok());
  EXPECT_TRUE(single_spec->union_names.empty());
}

TEST(Binder, UnknownTableRejected) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT x FROM nosuch");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(BindSql(*ast, db).ok());
}

TEST(Binder, DuplicateAliasRejected) {
  Database db = MakeTinyDb();
  auto ast = ParseSql("SELECT R.v FROM R, R");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(BindSql(*ast, db).ok());
}

TEST(CompileSql, EndToEnd) {
  Database db = MakeTinyDb();
  auto tree = CompileSql("SELECT R.v FROM R, S WHERE R.k = S.k AND S.w = 'x'",
                         db);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->target_type().ToString(), "{R.v}");
  auto out = testing::MustEvaluate(*tree, db);
  EXPECT_EQ(out.size(), 2u);  // a and b (both join S row 1 with w=x)
}

// ---- round-trip of the workload generator's printed queries ---------------

TEST(SqlRoundTrip, GeneratedWorkloadQueriesCompile) {
  // Every query shape the differential generator emits must survive
  // SpecToSql -> lexer -> parser -> binder against its own database. The
  // differential harness additionally checks result equivalence; here we pin
  // the front end alone over a wide seed slice, with the seed in the message.
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    GenWorkload w = MakeDiffWorkload(seed);
    std::string sql = SpecToSql(w.spec);
    ASSERT_FALSE(sql.empty()) << "seed " << seed << " (" << w.scenario << ")";
    Database db;
    for (const Relation& rel : w.relations) {
      ASSERT_TRUE(db.AddRelation(rel).ok()) << "seed " << seed;
    }
    auto tree = CompileSql(sql, db);
    EXPECT_TRUE(tree.ok()) << "seed " << seed << " (" << w.scenario
                           << "): " << tree.status().ToString() << "\nsql: "
                           << sql;
  }
}

// ---- malformed input: always a positioned ParseError, never a crash -------

TEST(SqlRoundTrip, MalformedInputsYieldPositionedParseErrors) {
  Database db = MakeTinyDb();
  const char* kMalformed[] = {
      "",
      "   ",
      "SELECT",
      "SELECT R.v FROM",
      "SELECT R.v FROM R WHERE R.k =",
      "SELECT R.v FROM R GROUP",
      "SELECT R.v FROM R UNION",
      "SELECT , FROM R",
      "SELECT R.v R.k FROM R",
      "SELECT R..v FROM R",
      "SELECT R.v FROM R R2 R3",
      "SELECT count((R.v) FROM R",
      "SELECT R.v FROM R WHERE AND R.k = 1",
      "SELECT R.v FROM R WHERE R.k = 'open",
      "SELECT R.v FROM R; DROP TABLE R",
      "WHERE R.k = 1",
      "SELECT R.v FROM R EXCEPT SELECT",
      "@#$%^&*",
  };
  for (const char* sql : kMalformed) {
    auto tree = CompileSql(sql, db);
    ASSERT_FALSE(tree.ok()) << "accepted malformed input: " << sql;
    EXPECT_EQ(tree.status().code(), StatusCode::kParseError)
        << sql << " -> " << tree.status().ToString();
    // Both the lexer ("... at <pos>") and the parser ("... (near offset
    // <pos> ...)") report where things went wrong.
    std::string message = tree.status().ToString();
    EXPECT_TRUE(message.find("offset") != std::string::npos ||
                message.find(" at ") != std::string::npos)
        << "no position in error for: " << sql << " -> " << message;
  }
}

TEST(SqlRoundTrip, EveryPrefixOfAValidQueryIsHandledGracefully) {
  // Truncation fuzz: chopping a valid query at any byte must produce either
  // a clean error or a (shorter) valid query -- never a crash or a success
  // that later dereferences missing clauses.
  Database db = MakeTinyDb();
  const std::string sql =
      "SELECT R.v, count(S.id) AS c FROM R, S "
      "WHERE R.k = S.k AND S.w != 'x' GROUP BY R.v";
  for (size_t len = 0; len < sql.size(); ++len) {
    auto tree = CompileSql(sql.substr(0, len), db);
    if (!tree.ok()) {
      EXPECT_NE(tree.status().code(), StatusCode::kInternal)
          << "prefix of length " << len << ": "
          << tree.status().ToString();
    }
  }
}

}  // namespace
}  // namespace ned
