/// \file whynot_test.cpp
/// \brief Tests for the Why-Not question model: c-tuples, unrenaming
/// (Def. 2.7) and compatibility / CompatibleFinder (Def. 2.8, Sec. 3.1 2a).

#include <gtest/gtest.h>

#include "datasets/running_example.h"
#include "tests/test_util.h"
#include "whynot/compatible_finder.h"
#include "whynot/ctuple.h"
#include "whynot/unrenaming.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;

// ---- c-tuples -----------------------------------------------------------------

TEST(CTuple, BuilderAndToString) {
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"))
      .AddVar("ap", "x1")
      .Where("x1", CompareOp::kGt, Value::Int(25));
  EXPECT_EQ(tc.ToString(), "((A.name:Homer, ap:x1), x1 > 25)");
  EXPECT_EQ(tc.fields().size(), 2u);
  EXPECT_EQ(tc.Type().ToString(), "{A.name, ap}");
  const CValue* field = tc.Find(Attribute::Parse("ap"));
  ASSERT_NE(field, nullptr);
  EXPECT_TRUE(field->is_var);
  EXPECT_EQ(tc.Find(Attribute::Parse("zzz")), nullptr);
}

TEST(WhyNotQuestion, DisjunctionToString) {
  WhyNotQuestion q = RunningExampleQuestion();
  EXPECT_EQ(q.ctuples().size(), 2u);
  EXPECT_NE(q.ToString().find(" OR "), std::string::npos);
}

// ---- unrenaming -----------------------------------------------------------------

TEST(Unrenaming, QualifiedFieldsPassThrough) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R WHERE R.k > 5", db);
  CTuple tc;
  tc.Add("R.v", Value::Str("a"));
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].ToString(), tc.ToString());
}

TEST(Unrenaming, JoinExpandsIntoBothOrigins) {
  // Ex. 2.2 analogue: the renamed attribute unfolds into both qualified
  // attributes inside the *same* c-tuple.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT k FROM R, S WHERE R.k = S.k", db);
  CTuple tc;
  tc.Add("k", Value::Int(10));
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  const CTuple& u = (*out)[0];
  EXPECT_EQ(u.fields().size(), 2u);
  EXPECT_NE(u.Find(Attribute::Parse("R.k")), nullptr);
  EXPECT_NE(u.Find(Attribute::Parse("S.k")), nullptr);
}

TEST(Unrenaming, ChainedRenamingsUnfoldTransitively) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "k\n1\n").ok());
  NED_CHECK(db.LoadCsv("B", "k\n1\n").ok());
  NED_CHECK(db.LoadCsv("C", "k\n1\n").ok());
  QueryTree tree = MustCompile(
      "SELECT k_2 FROM A, B, C WHERE A.k = B.k AND B.k = C.k", db);
  CTuple tc;
  tc.Add("k_2", Value::Int(1));
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  // k_2 -> {k, C.k} -> {A.k, B.k, C.k}.
  EXPECT_EQ((*out)[0].fields().size(), 3u);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("A.k")), nullptr);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("B.k")), nullptr);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("C.k")), nullptr);
}

TEST(Unrenaming, UnionForksIntoDisjunction) {
  Database db;
  NED_CHECK(db.LoadCsv("A", "x\n1\n").ok());
  NED_CHECK(db.LoadCsv("B", "y\n2\n").ok());
  QueryTree tree = MustCompile("SELECT A.x FROM A UNION SELECT B.y FROM B", db);
  CTuple tc;
  tc.Add("x", Value::Int(7));  // the union output attribute
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("A.x")), nullptr);
  EXPECT_NE((*out)[1].Find(Attribute::Parse("B.y")), nullptr);
}

TEST(Unrenaming, AggregateOutputsStayUntouched) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer")).AddVar("ap", "x1");
  auto out = UnrenameCTuple(*tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("ap")), nullptr);
  EXPECT_NE((*out)[0].Find(Attribute::Parse("A.name")), nullptr);
}

TEST(Unrenaming, ConditionsAreCarried) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT k FROM R, S WHERE R.k = S.k", db);
  CTuple tc;
  tc.AddVar("k", "x").Where("x", CompareOp::kGt, Value::Int(5));
  auto out = UnrenameCTuple(tree, tc);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].cond().size(), 1u);
}

// ---- compatibility (Def. 2.8) -------------------------------------------------------

Schema ASchema() { return Schema({{"A", "aid"}, {"A", "name"}, {"A", "dob"}}); }

TEST(Compatibility, ConstantFieldMustMatch) {
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"));
  Tuple homer({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});
  Tuple sophocles({Value::Str("a2"), Value::Str("Sophocles"), Value::Int(-400)});
  EXPECT_TRUE(IsCompatible(tc, homer, ASchema()));
  EXPECT_FALSE(IsCompatible(tc, sophocles, ASchema()));
}

TEST(Compatibility, VariableFieldBindsAndChecksCondition) {
  // Ex. 2.1's second c-tuple: name x2 with x2 != Homer, x2 != Sophocles.
  CTuple tc;
  tc.AddVar("A.name", "x2")
      .Where("x2", CompareOp::kNe, Value::Str("Homer"))
      .Where("x2", CompareOp::kNe, Value::Str("Sophocles"));
  Tuple homer({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});
  Tuple euripides({Value::Str("a3"), Value::Str("Euripides"), Value::Int(-400)});
  EXPECT_FALSE(IsCompatible(tc, homer, ASchema()));
  EXPECT_TRUE(IsCompatible(tc, euripides, ASchema()));
}

TEST(Compatibility, FreeVariablesStayExistential) {
  // Ex. 2.3: t4 is compatible with ((Homer, x1), x1 > 25): x1 is free.
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"))
      .AddVar("ap", "x1")
      .Where("x1", CompareOp::kGt, Value::Int(25));
  Tuple homer({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});
  EXPECT_TRUE(IsCompatible(tc, homer, ASchema()));
}

TEST(Compatibility, RequiresSharedType) {
  CTuple tc;
  tc.Add("B.price", Value::Int(49));
  Tuple homer({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});
  EXPECT_FALSE(IsCompatible(tc, homer, ASchema()));  // no shared attribute
}

TEST(Compatibility, AllFieldsOfTheRelationMustCoOccur) {
  // Sec. 3.1 (2a): fields referencing the same relation must co-occur in the
  // same tuple.
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer")).Add("A.dob", Value::Int(-400));
  Tuple homer({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});
  EXPECT_FALSE(IsCompatible(tc, homer, ASchema()));
}

TEST(Compatibility, SameVariableTwiceMustAgree) {
  Schema schema({{"R", "a"}, {"R", "b"}});
  CTuple tc;
  tc.AddVar("R.a", "x").AddVar("R.b", "x");
  EXPECT_TRUE(IsCompatible(tc, Tuple({Value::Int(1), Value::Int(1)}), schema));
  EXPECT_FALSE(IsCompatible(tc, Tuple({Value::Int(1), Value::Int(2)}), schema));
}

// ---- CompatibleFinder -----------------------------------------------------------------

TEST(CompatibleFinder, PartitionsDirAndInDir) {
  // Ex. 2.4 analogue on the running example: Dir = {t4}, InDir = AB u B.
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto input = QueryInput::Build(*tree, *db);
  ASSERT_TRUE(input.ok());

  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"))
      .AddVar("ap", "x1")
      .Where("x1", CompareOp::kGt, Value::Int(25));
  auto sets = FindCompatibles(tc, *input, {"ap"});
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ(sets->dir.size(), 1u);  // t4 only
  EXPECT_EQ(sets->indir.size(), 6u);  // 3 AB rows + 3 B rows
  EXPECT_EQ(sets->all.size(), 7u);
  ASSERT_EQ(sets->dir_by_alias.count("A"), 1u);
  EXPECT_EQ(sets->dir_by_alias.at("A").size(), 1u);
  EXPECT_EQ(sets->indir_aliases.size(), 2u);
  // Dir and InDir are disjoint (Def. 2.8).
  for (TupleId id : sets->dir) EXPECT_EQ(sets->indir.count(id), 0u);
  // cond-alpha captured the aggregate field.
  EXPECT_EQ(sets->cond_alpha.agg_fields.size(), 1u);
  EXPECT_FALSE(sets->cond_alpha.empty());
}

TEST(CompatibleFinder, ReferencedAliasWithNoMatchYieldsEmptyDir) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto input = QueryInput::Build(*tree, *db);
  ASSERT_TRUE(input.ok());
  CTuple tc;
  tc.Add("A.name", Value::Str("Nobody"));
  auto sets = FindCompatibles(tc, *input, {"ap"});
  ASSERT_TRUE(sets.ok());
  EXPECT_TRUE(sets->dir.empty());
  // A is still "referenced": it is not part of InDir.
  EXPECT_EQ(sets->indir_aliases.size(), 2u);
}

TEST(CompatibleFinder, UnknownUnqualifiedFieldRejected) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto input = QueryInput::Build(*tree, *db);
  ASSERT_TRUE(input.ok());
  CTuple tc;
  tc.Add("mystery", Value::Int(1));  // neither qualified nor an agg output
  EXPECT_FALSE(FindCompatibles(tc, *input, {"ap"}).ok());
}

TEST(CompatibleFinder, SelfJoinPlacesDirInTheRightAliasOnly) {
  // The core fix over the baseline: a qualified question field selects
  // compatible tuples only in the matching alias of a self-joined relation.
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R2.v FROM R R1, R R2 WHERE R1.k = R2.k", db);
  auto input = QueryInput::Build(tree, db);
  ASSERT_TRUE(input.ok());
  CTuple tc;
  tc.Add("R2.v", Value::Str("a"));
  auto sets = FindCompatibles(tc, *input, {});
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->dir_by_alias.size(), 1u);
  EXPECT_EQ(sets->dir_by_alias.begin()->first, "R2");
  EXPECT_EQ(sets->indir_aliases, (std::vector<std::string>{"R1"}));
}

}  // namespace
}  // namespace ned
