/// \file integration_test.cpp
/// \brief Full-pipeline integration tests: SQL text -> parse -> bind ->
/// canonicalize -> evaluate -> explain, plus CSV persistence round trips.

#include <gtest/gtest.h>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "datasets/running_example.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::Column;
using testing::MustCompile;
using testing::MustEvaluate;
using testing::MustExplain;

TEST(Integration, RunningExampleQueryResult) {
  // Fig. 1: the query result is exactly (Sophocles, 49).
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  ASSERT_TRUE(tree.ok());
  auto out = MustEvaluate(*tree, *db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.at(0).as_string(), "Sophocles");
  EXPECT_DOUBLE_EQ(out[0].values.at(1).as_double(), 49.0);
}

TEST(Integration, UseCaseQueriesProduceSaneResults) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  // Q1 (Crime1): the result is non-empty and contains car thefts -- that is
  // what misleads the baseline on Crime1/2.
  auto uc = registry->Find("Crime1");
  ASSERT_TRUE(uc.ok());
  auto tree = registry->BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto out = MustEvaluate(*tree, registry->database("crime"));
  EXPECT_FALSE(out.empty());
  auto types = Column(out, tree->target_type(), "C.type");
  EXPECT_NE(std::find(types.begin(), types.end(), "Car theft"), types.end());
  // But never paired with Hank or Roger.
  const Schema& type = tree->target_type();
  size_t name_idx = *type.IndexOf(Attribute::Parse("P.name"));
  size_t type_idx = *type.IndexOf(Attribute::Parse("C.type"));
  for (const auto& t : out) {
    if (t.values.at(type_idx).as_string() == "Car theft") {
      EXPECT_NE(t.values.at(name_idx).as_string(), "Hank");
      EXPECT_NE(t.values.at(name_idx).as_string(), "Roger");
    }
  }
}

TEST(Integration, Q2HasEmptyResult) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  auto uc = registry->Find("Crime3");
  ASSERT_TRUE(uc.ok());
  auto tree = registry->BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto out = MustEvaluate(*tree, registry->database("crime"));
  EXPECT_TRUE(out.empty());  // sector > 99 matches nothing
}

TEST(Integration, CsvRoundTripPreservesAnswers) {
  // Dump the crime database to CSV, reload it, and verify Crime6's answer
  // is unchanged (id-stability across persistence).
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  const Database& crime = registry->database("crime");

  Database reloaded;
  for (const auto& name : crime.RelationNames()) {
    auto csv = crime.DumpCsv(name);
    ASSERT_TRUE(csv.ok());
    ASSERT_TRUE(reloaded.LoadCsv(name, *csv).ok());
  }

  auto uc = registry->Find("Crime6");
  ASSERT_TRUE(uc.ok());
  auto tree1 = registry->BuildTree(**uc);
  ASSERT_TRUE(tree1.ok());
  auto tree2 = Canonicalize((*uc)->spec, reloaded);
  ASSERT_TRUE(tree2.ok());

  auto r1 = MustExplain(*tree1, crime, (*uc)->question);
  auto r2 = MustExplain(*tree2, reloaded, (*uc)->question);
  EXPECT_EQ(r1.answer.detailed.size(), r2.answer.detailed.size());
  EXPECT_EQ(testing::CondensedNames(r1.answer),
            testing::CondensedNames(r2.answer));
}

TEST(Integration, ExplainIsDeterministicAcrossRuns) {
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  for (const char* name : {"Crime2", "Gov1", "Imdb2"}) {
    auto uc = registry->Find(name);
    ASSERT_TRUE(uc.ok());
    auto tree = registry->BuildTree(**uc);
    ASSERT_TRUE(tree.ok());
    const Database& db = registry->database((*uc)->db_name);
    auto r1 = MustExplain(*tree, db, (*uc)->question);
    auto r2 = MustExplain(*tree, db, (*uc)->question);
    ASSERT_EQ(r1.answer.detailed.size(), r2.answer.detailed.size()) << name;
    for (size_t i = 0; i < r1.answer.detailed.size(); ++i) {
      EXPECT_EQ(r1.answer.detailed[i].dir_tuple,
                r2.answer.detailed[i].dir_tuple);
      EXPECT_EQ(r1.answer.detailed[i].subquery->name,
                r2.answer.detailed[i].subquery->name);
    }
  }
}

TEST(Integration, RegistryRebuildIsDeterministic) {
  auto r1 = UseCaseRegistry::Build();
  auto r2 = UseCaseRegistry::Build();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (const char* db_name : {"crime", "imdb", "gov"}) {
    const Database& a = r1->database(db_name);
    const Database& b = r2->database(db_name);
    ASSERT_EQ(a.RelationNames(), b.RelationNames());
    for (const auto& rel_name : a.RelationNames()) {
      auto ra = a.GetRelation(rel_name);
      auto rb = b.GetRelation(rel_name);
      ASSERT_EQ((*ra)->size(), (*rb)->size()) << db_name << "." << rel_name;
      for (size_t i = 0; i < (*ra)->size(); ++i) {
        ASSERT_EQ((*ra)->row(i), (*rb)->row(i));
      }
    }
  }
}

TEST(Integration, FreshSqlQueryOverTheCrimeDb) {
  // A query not in the use-case registry exercises the whole pipeline.
  auto registry = UseCaseRegistry::Build();
  ASSERT_TRUE(registry.ok());
  const Database& db = registry->database("crime");
  QueryTree tree = MustCompile(
      "SELECT W.name FROM W, C WHERE W.sector = C.sector "
      "AND C.type = 'Kidnapping'",
      db);
  auto out = MustEvaluate(tree, db);
  EXPECT_TRUE(out.empty());  // nobody witnesses in the kidnapping sectors

  CTuple tc;
  tc.Add("W.name", Value::Str("Susan"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.condensed.size(), 1u);
  EXPECT_EQ(result.answer.condensed[0]->kind, OpKind::kJoin);
}

TEST(Integration, BaselineAndNedAgreeOnSimpleSingleCulprit) {
  // When exactly one selection is responsible and traces are simple, both
  // algorithms converge on the same operator.
  Database db;
  NED_CHECK(db.LoadCsv("T", "id,grade\n1,A\n2,B\n").ok());
  QueryTree tree = MustCompile("SELECT T.id FROM T WHERE T.grade = 'A'", db);
  CTuple tc;
  tc.Add("T.id", Value::Int(2));
  WhyNotQuestion q{tc};
  auto ned = MustExplain(tree, db, q);
  auto baseline = WhyNotBaseline::Create(&tree, &db);
  ASSERT_TRUE(baseline.ok());
  auto base = baseline->Explain(q);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(ned.answer.condensed.size(), 1u);
  ASSERT_EQ(base->answer.size(), 1u);
  EXPECT_EQ(ned.answer.condensed[0], base->answer[0]);
}

}  // namespace
}  // namespace ned
