/// \file robustness_test.cpp
/// \brief Failure injection and edge cases across the public API: malformed
/// questions, empty instances, degenerate queries, and error propagation.

#include <gtest/gtest.h>

#include <chrono>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "datasets/running_example.h"
#include "exec/exec_context.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MakeTinyDb;
using testing::MustCompile;
using testing::MustExplain;

// ---- degenerate instances ---------------------------------------------------------

TEST(Robustness, EmptyBaseRelation) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "id,v\n").ok());  // header only
  QueryTree tree = MustCompile("SELECT R.v FROM R WHERE R.v > 1", db);
  CTuple tc;
  tc.Add("R.v", Value::Int(5));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  // No compatible tuple exists; the answer is empty, not an error.
  EXPECT_TRUE(result.answer.detailed.empty());
  EXPECT_EQ(result.dir_total, 0u);
}

TEST(Robustness, AllRelationsEmptyWithJoins) {
  Database db;
  NED_CHECK(db.LoadCsv("R", "id,k\n").ok());
  NED_CHECK(db.LoadCsv("S", "id,k\n").ok());
  QueryTree tree = MustCompile("SELECT R.id FROM R, S WHERE R.k = S.k", db);
  CTuple tc;
  tc.Add("R.id", Value::Int(1));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_TRUE(result.answer.detailed.empty());
  auto baseline = WhyNotBaseline::Create(&tree, &db);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->Explain(WhyNotQuestion(tc)).ok());
}

TEST(Robustness, SingleRowSingleColumn) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "x\n1\n").ok());
  QueryTree tree = MustCompile("SELECT T.x FROM T WHERE T.x > 5", db);
  CTuple tc;
  tc.Add("T.x", Value::Int(1));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kSelect);
}

// ---- malformed questions -----------------------------------------------------------

TEST(Robustness, QuestionWithUnknownAttributeFails) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("Z.nope", Value::Int(1));  // alias Z does not exist
  auto result = engine->Explain(WhyNotQuestion(tc));
  // Unknown alias: the relation is simply "not referenced"; the question
  // yields an empty Dir but no crash.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dir_total, 0u);
}

TEST(Robustness, QuestionWithUnknownUnqualifiedAttributeErrors) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("mystery", Value::Int(1));
  auto result = engine->Explain(WhyNotQuestion(tc));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Robustness, EmptyQuestionIsHarmless) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  WhyNotQuestion empty;
  auto result = engine->Explain(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
  EXPECT_TRUE(result->per_ctuple.empty());
}

TEST(Robustness, UnsatisfiableConditionYieldsEmptyDir) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.k FROM R", db);
  CTuple tc;
  tc.AddVar("R.k", "x")
      .Where("x", CompareOp::kGt, Value::Int(10))
      .Where("x", CompareOp::kLt, Value::Int(0));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_EQ(result.dir_total, 0u);
  EXPECT_TRUE(result.answer.empty());
}

TEST(Robustness, TypeMismatchedQuestionValueMatchesNothing) {
  Database db = MakeTinyDb();  // R.k is an int column
  QueryTree tree = MustCompile("SELECT R.k FROM R", db);
  CTuple tc;
  tc.Add("R.k", Value::Str("ten"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  EXPECT_EQ(result.dir_total, 0u);
}

TEST(Robustness, ManyDisjunctsScale) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.id FROM R WHERE R.k = 999", db);
  WhyNotQuestion question;
  for (int i = 0; i < 50; ++i) {
    CTuple tc;
    tc.Add("R.id", Value::Int(i % 3 + 1));
    question.AddCTuple(std::move(tc));
  }
  auto result = MustExplain(tree, db, question);
  EXPECT_EQ(result.per_ctuple.size(), 50u);
  // All three rows die at the selection, however often they are asked about.
  for (const auto& entry : result.answer.detailed) {
    EXPECT_EQ(entry.subquery->kind, OpKind::kSelect);
  }
  EXPECT_EQ(result.answer.detailed.size(), 3u);  // deduplicated
}

// ---- degenerate queries -------------------------------------------------------------

TEST(Robustness, ProjectionToSingleRepeatedValue) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "a,b\n1,x\n2,x\n3,x\n").ok());
  QueryTree tree = MustCompile("SELECT T.b FROM T WHERE T.a > 10", db);
  CTuple tc;
  tc.Add("T.b", Value::Str("x"));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  // All three compatible rows are blocked at the selection.
  EXPECT_EQ(result.answer.detailed.size(), 3u);
  EXPECT_EQ(result.answer.condensed.size(), 1u);
}

TEST(Robustness, CrossProductQuery) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile(
      "SELECT R.id, S.id FROM R, S WHERE S.w = 'nothing'", db);
  CTuple tc;
  tc.Add("R.id", Value::Int(1));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  // R.id:1 is blocked at the cross-product join (the S side is empty after
  // the selection), and the emptied S selection appears in the secondary
  // answer for the indirect relation S.
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  EXPECT_EQ(result.answer.detailed[0].subquery->kind, OpKind::kJoin);
  ASSERT_FALSE(result.answer.secondary.empty());
  EXPECT_EQ(result.answer.secondary[0]->kind, OpKind::kSelect);
}

TEST(Robustness, DeepSelectionStack) {
  Database db;
  NED_CHECK(db.LoadCsv("T", "x\n5\n").ok());
  std::string sql = "SELECT T.x FROM T WHERE T.x > 0";
  for (int i = 1; i <= 20; ++i) {
    sql += " AND T.x != " + std::to_string(100 + i);
  }
  sql += " AND T.x = 6";  // the one that blocks
  QueryTree tree = MustCompile(sql, db);
  CTuple tc;
  tc.Add("T.x", Value::Int(5));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_EQ(result.answer.detailed.size(), 1u);
  const OperatorNode* blamed = result.answer.detailed[0].subquery;
  EXPECT_NE(blamed->predicate->ToString().find("= 6"), std::string::npos);
}

TEST(Robustness, SelfJoinOfThreeAliases) {
  Database db;
  NED_CHECK(db.LoadCsv("P", "id,boss\n1,2\n2,3\n3,3\n").ok());
  QueryTree tree = MustCompile(
      "SELECT A.id FROM P A, P B, P C "
      "WHERE A.boss = B.id AND B.boss = C.id AND C.id = 99",
      db);
  CTuple tc;
  tc.Add("A.id", Value::Int(1));
  auto result = MustExplain(tree, db, WhyNotQuestion(tc));
  ASSERT_FALSE(result.answer.detailed.empty());
}

// ---- engine misuse -------------------------------------------------------------------

TEST(Robustness, NullTreeRejected) {
  Database db = MakeTinyDb();
  EXPECT_FALSE(NedExplainEngine::Create(nullptr, &db).ok());
  EXPECT_FALSE(WhyNotBaseline::Create(nullptr, &db).ok());
}

TEST(Robustness, RepeatedExplainCallsAreIndependent) {
  Database db = MakeTinyDb();
  QueryTree tree = MustCompile("SELECT R.v FROM R WHERE R.k = 999", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("R.v", Value::Str("a"));
  for (int i = 0; i < 5; ++i) {
    auto result = engine->Explain(WhyNotQuestion(tc));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->answer.detailed.size(), 1u);
  }
}

TEST(Robustness, QueryAgainstMissingTableFailsAtCompile) {
  Database db = MakeTinyDb();
  EXPECT_FALSE(CompileSql("SELECT ghost.x FROM ghost", db).ok());
}

// ---- resource-governed runs ---------------------------------------------------------
// (exec_limits_test.cpp covers the subsystem in depth; these are the
// API-level guarantees: a limit is never an error and never a wrong answer.)

TEST(Robustness, TimeoutOnCrossJoinYieldsFlaggedPartial) {
  Database db;
  std::string r = "a\n", s = "b\n";
  for (int i = 0; i < 1200; ++i) {
    r += std::to_string(i) + "\n";
    s += std::to_string(i) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  QueryTree tree = MustCompile("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());
  CTuple tc;
  tc.Add("R.a", Value::Int(3));  // compatible, so the join must be evaluated

  ExecContext ctx;
  ctx.set_deadline_after_ms(25);
  auto result = engine->Explain(WhyNotQuestion(tc), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kDeadlineExceeded);
}

TEST(Robustness, RowBudgetOnAggregateYieldsFlaggedPartial) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  ExecContext ctx;
  ctx.set_row_budget(4);
  auto result = engine->Explain(RunningExampleQuestionHomer(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  EXPECT_EQ(result->completeness.tripped, StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsResourceLimit(Status(result->completeness.tripped,
                                     result->completeness.detail)));
}

TEST(Robustness, PartialAnswerReportsCompletenessHonestly) {
  Database db;
  NED_ASSERT_OK_AND_MOVE(db, BuildRunningExampleDb());
  QueryTree tree;
  NED_ASSERT_OK_AND_MOVE(tree, BuildRunningExampleTree(db));
  auto engine = NedExplainEngine::Create(&tree, &db);
  ASSERT_TRUE(engine.ok());

  // A clean run is marked complete with all c-tuples accounted for.
  auto full = engine->Explain(RunningExampleQuestion());
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->completeness.complete);
  EXPECT_EQ(full->completeness.ToString(), "complete");
  EXPECT_EQ(full->completeness.ctuples_finished,
            full->completeness.ctuples_total);

  // An interrupted run says what tripped and how far it got, and its answer
  // never invents subqueries the complete run does not blame.
  ExecContext ctx;
  ctx.InjectFailureAt(2);
  auto partial = engine->Explain(RunningExampleQuestion(), &ctx);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_FALSE(partial->completeness.complete);
  EXPECT_LT(partial->completeness.ctuples_finished,
            partial->completeness.ctuples_total);
  EXPECT_NE(partial->completeness.ToString().find("partial"),
            std::string::npos);
  EXPECT_LE(partial->answer.condensed.size(), full->answer.condensed.size());
}

}  // namespace
}  // namespace ned
