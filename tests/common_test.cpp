/// \file common_test.cpp
/// \brief Unit tests for the common layer: strings, status, CSV, RNG,
/// timers, and the shared JSON codec (escaping + hostile-input parsing).

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/csv.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace ned {
namespace {

// ---- strings ----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "zz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUPS", "group"));
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("m12", "m"));
  EXPECT_FALSE(StartsWith("m", "m12"));
}

TEST(Strings, StrCat) {
  EXPECT_EQ(StrCat("m", 3, " picky=", true), "m3 picky=1");
}

TEST(Strings, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");  // never truncates
}

TEST(Strings, RenderTableAlignsColumns) {
  std::string table = RenderTable({"a", "bb"}, {{"xxx", "y"}, {"z", "wwww"}});
  std::vector<std::string> lines = Split(table, '\n');
  ASSERT_GE(lines.size(), 5u);
  for (const auto& line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), lines[0].size());
    }
  }
  EXPECT_NE(table.find("xxx"), std::string::npos);
  EXPECT_NE(table.find("wwww"), std::string::npos);
}

// ---- status -------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorAccess) {
  Result<int> r = Status::ParseError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, ValueOrOnLvalueCopiesLeavingResultIntact) {
  Result<std::string> r(std::string("payload"));
  std::string got = r.value_or("fallback");
  EXPECT_EQ(got, "payload");
  // The lvalue overload must copy, not move-from, the stored value.
  EXPECT_EQ(*r, "payload");
}

TEST(Result, ValueOrOnRvalueMovesStoredValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  // A move-only payload compiles only through the && overload.
  std::unique_ptr<int> got = std::move(r).value_or(nullptr);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 5);

  Result<std::unique_ptr<int>> err = Status::NotFound("gone");
  std::unique_ptr<int> fb = std::move(err).value_or(std::make_unique<int>(9));
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(*fb, 9);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NED_ASSIGN_OR_RETURN(int h, Half(x));
  NED_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

// ---- csv ---------------------------------------------------------------------

TEST(Csv, ParsesSimpleRows) {
  auto doc = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 3u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, HandlesQuotingAndEscapes) {
  auto doc = ParseCsv("name\n\"says \"\"hi\"\", twice\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][0], "says \"hi\", twice");
}

TEST(Csv, HandlesCrLfAndMissingFinalNewline) {
  auto doc = ParseCsv("a,b\r\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, EmptyTrailingFieldSurvives) {
  auto doc = ParseCsv("a,b\n1,\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", ""}));
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(Csv, WriteRoundTrips) {
  std::vector<std::vector<std::string>> rows = {
      {"h1", "h2"}, {"plain", "with,comma"}, {"with\"quote", "with\nnewline"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, rows);
}

// ---- rng ----------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PickCoversElements) {
  Rng rng(1);
  std::vector<int> values = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Pick(values));
  EXPECT_EQ(seen.size(), 3u);
}

// ---- timer ---------------------------------------------------------------------

TEST(Timer, PhaseAccumulation) {
  PhaseTimer timer;
  timer.Add("a", 100);
  timer.Add("a", 50);
  timer.Add("b", 25);
  EXPECT_EQ(timer.Nanos("a"), 150);
  EXPECT_EQ(timer.Nanos("b"), 25);
  EXPECT_EQ(timer.Nanos("absent"), 0);
  EXPECT_EQ(timer.TotalNanos(), 175);
  timer.Reset();
  EXPECT_EQ(timer.TotalNanos(), 0);
}

TEST(Timer, ScopeChargesElapsedTime) {
  PhaseTimer timer;
  {
    PhaseTimer::Scope scope(&timer, "phase");
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_GT(timer.Nanos("phase"), 0);
}

TEST(Timer, StopwatchMonotone) {
  Stopwatch watch;
  int64_t t1 = watch.ElapsedNanos();
  int64_t t2 = watch.ElapsedNanos();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0);
}

// ---- json: the one shared escaper -------------------------------------------

TEST(Json, EscapesExactlyLikeTheExpositionLayerAlwaysDid) {
  // This is the contract obs/expose.cpp (metrics JSON goldens) depends on:
  // backslash, quote, \n \t \r by name, every other control char as \u00XX,
  // all other bytes verbatim. A change here breaks checked-in goldens.
  EXPECT_EQ(json::Quote("plain"), "\"plain\"");
  EXPECT_EQ(json::Quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json::Quote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(json::Quote("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(json::Quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json::Quote("cr\rend"), "\"cr\\rend\"");
  EXPECT_EQ(json::Quote(std::string("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  EXPECT_EQ(json::Quote("utf8 caf\xc3\xa9 ok"), "\"utf8 caf\xc3\xa9 ok\"");
}

TEST(Json, EscapeParseRoundTripsArbitraryBytes) {
  std::string hostile;
  for (int c = 1; c < 256; ++c) hostile += static_cast<char>(c);
  auto parsed = json::Parse(json::Quote(hostile));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_string());
  EXPECT_EQ(parsed->as_string(), hostile);
}

TEST(Json, ParsePreservesIntVsDouble) {
  auto doc = json::Parse("{\"i\": 42, \"d\": 42.0, \"e\": 1e2, \"n\": -7}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_TRUE(doc->Find("i")->is_int());
  EXPECT_EQ(doc->Find("i")->as_int(), 42);
  EXPECT_TRUE(doc->Find("d")->is_double());
  EXPECT_EQ(doc->Find("d")->as_double(), 42.0);
  EXPECT_TRUE(doc->Find("e")->is_double());
  EXPECT_TRUE(doc->Find("n")->is_int());
  EXPECT_EQ(doc->Find("n")->as_int(), -7);
}

TEST(Json, ObjectsPreserveMemberOrder) {
  auto doc = json::Parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_TRUE(doc.ok());
  const auto& members = doc->as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, HostileInputsAreStatusNotCrash) {
  for (const char* bad :
       {"", "{", "}", "[1,", "\"unterminated", "{\"k\": }", "01", "+1",
        "1.2.3", "tru", "nul", "\"bad \\x escape\"", "{\"a\": 1} trailing",
        "\x80\xff", "[1, 2,]", "{\"a\" 1}"}) {
    EXPECT_FALSE(json::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(Json, DepthLimitBoundsRecursion) {
  std::string deep(10'000, '[');
  deep += std::string(10'000, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
  // Within the limit, nesting is fine.
  EXPECT_TRUE(json::Parse("[[[[[[[[[[1]]]]]]]]]]").ok());
}

TEST(Json, AppendDoubleRoundTripsAndHandlesNonFinite) {
  std::string out;
  json::AppendDouble(&out, 0.1);
  auto back = json::Parse(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_double(), 0.1);  // %.17g is lossless for doubles
  out.clear();
  json::AppendDouble(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  json::AppendDouble(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
}

}  // namespace
}  // namespace ned
