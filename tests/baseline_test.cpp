/// \file baseline_test.cpp
/// \brief Tests for the Why-Not baseline [Chapman & Jagadish] and its
/// documented shortcomings (paper Secs. 1 and 4).

#include <gtest/gtest.h>

#include "baseline/whynot_baseline.h"
#include "datasets/running_example.h"
#include "datasets/use_cases.h"
#include "tests/test_util.h"

namespace ned {
namespace {

using testing::MustCompile;

const UseCaseRegistry& Registry() {
  static const UseCaseRegistry* registry = [] {
    auto r = UseCaseRegistry::Build();
    NED_CHECK(r.ok());
    return new UseCaseRegistry(std::move(r).value());
  }();
  return *registry;
}

/// Keeps the tree alive: the result's answer references its nodes.
struct BaselineRun {
  std::shared_ptr<QueryTree> tree;
  WhyNotBaselineResult result;
  const WhyNotBaselineResult* operator->() const { return &result; }
};

BaselineRun RunBaseline(const std::string& name) {
  auto uc = Registry().Find(name);
  NED_CHECK(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  NED_CHECK_MSG(tree.ok(), tree.status().ToString());
  BaselineRun run;
  run.tree = std::make_shared<QueryTree>(std::move(tree).value());
  auto baseline = WhyNotBaseline::Create(run.tree.get(),
                                         &Registry().database((*uc)->db_name));
  NED_CHECK(baseline.ok());
  auto result = baseline->Explain((*uc)->question);
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  run.result = std::move(result).value();
  return run;
}

TEST(Baseline, AggregationIsUnsupported) {
  // Crime9/10 and Gov6 report "n.a." in Table 5.
  BaselineRun run = RunBaseline("Crime9");
  EXPECT_FALSE(run.result.supported);
  EXPECT_EQ(run.result.AnswerToString(), "n.a.");
  EXPECT_NE(run.result.unsupported_reason.find("aggregation"), std::string::npos);
}

TEST(Baseline, UnionIsUnsupported) {
  BaselineRun run = RunBaseline("Gov7");
  EXPECT_FALSE(run.result.supported);
  EXPECT_NE(run.result.unsupported_reason.find("union"), std::string::npos);
}

TEST(Baseline, SelfJoinBlamesTheWrongSelection) {
  // Crime6: the correct answer is the co-location join (NedExplain's m3),
  // but the baseline finds kidnapping "compatibles" in the *filtered* C1
  // alias too and blames the type selection (paper Sec. 4, Crime6/7).
  BaselineRun run = RunBaseline("Crime6");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.answer.size(), 1u);
  EXPECT_EQ(run.result.answer[0]->kind, OpKind::kSelect);
  EXPECT_NE(run.result.answer[0]->predicate->ToString().find("Aiding"),
            std::string::npos);
}

TEST(Baseline, Crime8DeemsAudreyPresent) {
  // Paper Sec. 4: "Why-Not believes that Audrey is actually not missing"
  // because successors of the *other* Audrey instance reach the result.
  BaselineRun run = RunBaseline("Crime8");
  ASSERT_TRUE(run.result.supported);
  EXPECT_TRUE(run.result.answer.empty());
  ASSERT_EQ(run.result.per_ctuple.size(), 1u);
  EXPECT_TRUE(run.result.per_ctuple[0].answer_deemed_present);
}

TEST(Baseline, PiecesFoundIndependentlyMeansNotMissing) {
  // The Sec. 1 Q2-output example: asking for (Homer, price 49) on the plain
  // join -- both pieces appear in the result (in different tuples), so the
  // baseline concludes nothing is missing.
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  QueryTree tree = MustCompile(
      "SELECT A.name, B.price FROM A, AB, B "
      "WHERE A.aid = AB.aid AND B.bid = AB.bid",
      db.value());
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer")).Add("B.price", Value::Int(49));
  auto baseline = WhyNotBaseline::Create(&tree, &*db);
  ASSERT_TRUE(baseline.ok());
  auto result = baseline->Explain(WhyNotQuestion(tc));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
  EXPECT_TRUE(result->per_ctuple[0].answer_deemed_present);
}

TEST(Baseline, EmptyOutputRuleFiresOnEmptiedSelection) {
  // Crime5: the baseline blames the sector>99 selection whose output is
  // empty, even though it blocks no Hank successor directly.
  BaselineRun run = RunBaseline("Crime5");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.answer.size(), 1u);
  EXPECT_EQ(run.result.answer[0]->kind, OpKind::kSelect);
  EXPECT_NE(run.result.answer[0]->predicate->ToString().find("sector"),
            std::string::npos);
}

TEST(Baseline, ReportsAtMostOneManipulationPerCTuple) {
  // The frontier-picky traversal stops at the first blocking manipulation;
  // NedExplain's per-tuple answers are strictly more informative (Gov1,
  // Gov4 report two operators; the baseline one).
  for (const char* name : {"Crime2", "Crime3", "Gov1", "Gov4", "Imdb1"}) {
    BaselineRun run = RunBaseline(name);
    ASSERT_TRUE(run.result.supported) << name;
    EXPECT_LE(run.result.answer.size(), 1u) << name;
  }
}

TEST(Baseline, Gov1MissesTheByearSelection) {
  // Three of the four Christophers die at the Byear selection, but MURPHY
  // survives it, so the baseline's set-level check keeps going and only the
  // affiliation join is blamed.
  BaselineRun run = RunBaseline("Gov1");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.answer.size(), 1u);
  EXPECT_EQ(run.result.answer[0]->kind, OpKind::kJoin);
}

TEST(Baseline, Gov3FindsTheSelectionWhenAllItemsDieThere) {
  BaselineRun run = RunBaseline("Gov3");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.answer.size(), 1u);
  EXPECT_EQ(run.result.answer[0]->kind, OpKind::kSelect);
}

TEST(Baseline, UnqualifiedMatchingCountsBothAliases) {
  // For Crime6 the kidnapping items live in C1 *and* C2.
  BaselineRun run = RunBaseline("Crime6");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.per_ctuple.size(), 1u);
  // 2 kidnappings per alias = 4 items (one field -> one piece).
  EXPECT_EQ(run.result.per_ctuple[0].unpicked_items, 4u);
}

TEST(Baseline, VariableFieldsSelectByCondition) {
  // Gov5's E.camount:x with x >= 1000 matches only large amounts.
  BaselineRun run = RunBaseline("Gov5");
  ASSERT_TRUE(run.result.supported);
  ASSERT_EQ(run.result.answer.size(), 1u);
  EXPECT_EQ(run.result.answer[0]->kind, OpKind::kJoin);
  EXPECT_GT(run.result.per_ctuple[0].unpicked_items, 100u);  // many big earmarks
}

// ---- top-down variant ([2] proposes both traversals) -------------------------

TEST(BaselineTopDown, EquivalentToBottomUpOnAllSupportedUseCases) {
  // The paper: "both approaches are equivalent as they produce the same set
  // of answers" -- verified here for every supported use case.
  for (const UseCase& uc : Registry().use_cases()) {
    auto tree = Registry().BuildTree(uc);
    ASSERT_TRUE(tree.ok()) << uc.name;
    const Database& db = Registry().database(uc.db_name);
    auto bottom_up =
        WhyNotBaseline::Create(&*tree, &db, BaselineTraversal::kBottomUp);
    auto top_down =
        WhyNotBaseline::Create(&*tree, &db, BaselineTraversal::kTopDown);
    ASSERT_TRUE(bottom_up.ok());
    ASSERT_TRUE(top_down.ok());
    auto r1 = bottom_up->Explain(uc.question);
    auto r2 = top_down->Explain(uc.question);
    ASSERT_TRUE(r1.ok()) << uc.name;
    ASSERT_TRUE(r2.ok()) << uc.name;
    EXPECT_EQ(r1->supported, r2->supported) << uc.name;
    if (!r1->supported) continue;
    ASSERT_EQ(r1->answer.size(), r2->answer.size()) << uc.name;
    for (size_t i = 0; i < r1->answer.size(); ++i) {
      EXPECT_EQ(r1->answer[i], r2->answer[i]) << uc.name;
    }
    ASSERT_EQ(r1->per_ctuple.size(), r2->per_ctuple.size());
    for (size_t i = 0; i < r1->per_ctuple.size(); ++i) {
      EXPECT_EQ(r1->per_ctuple[i].answer_deemed_present,
                r2->per_ctuple[i].answer_deemed_present)
          << uc.name;
    }
  }
}

TEST(BaselineTopDown, PrunesWhenSuccessorsSurviveToTheRoot) {
  // Crime8: the Audrey piece reaches the result, so the top-down variant
  // concludes "not missing" directly at the root.
  auto uc = Registry().Find("Crime8");
  ASSERT_TRUE(uc.ok());
  auto tree = Registry().BuildTree(**uc);
  ASSERT_TRUE(tree.ok());
  auto baseline = WhyNotBaseline::Create(
      &*tree, &Registry().database("crime"), BaselineTraversal::kTopDown);
  ASSERT_TRUE(baseline.ok());
  auto result = baseline->Explain((*uc)->question);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
  EXPECT_TRUE(result->per_ctuple[0].answer_deemed_present);
}

TEST(Baseline, DisjunctionAccumulatesAnswers) {
  auto db = BuildRunningExampleDb();
  ASSERT_TRUE(db.ok());
  QueryTree tree = MustCompile(
      "SELECT A.name, B.price FROM A, AB, B "
      "WHERE A.aid = AB.aid AND B.bid = AB.bid AND A.dob > -500",
      db.value());
  WhyNotQuestion question;
  CTuple homer;
  homer.Add("A.name", Value::Str("Homer"));
  CTuple euripides;
  euripides.Add("A.name", Value::Str("Euripides"));
  question.AddCTuple(homer).AddCTuple(euripides);
  auto baseline = WhyNotBaseline::Create(&tree, &*db);
  ASSERT_TRUE(baseline.ok());
  auto result = baseline->Explain(question);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_ctuple.size(), 2u);
  // Homer dies at the dob selection; Euripides (no books) at a join.
  EXPECT_EQ(result->answer.size(), 2u);
}

}  // namespace
}  // namespace ned
