/// \file crime_investigation.cpp
/// \brief Debugging self-join queries on the crime database (use cases
/// Crime6, Crime7, Crime8 of the paper).
///
/// The scenario: an analyst wonders why no kidnapping shows up in a query
/// that pairs crimes with co-located aiding crimes (Q3), and why Audrey is
/// missing from a "same hair as an A-named person" query (Q4). The example
/// contrasts NedExplain's answers with the Why-Not baseline's, reproducing
/// the self-join shortcoming of Sec. 4: the baseline locates compatible
/// tuples in *both* instances of the self-joined relation and blames the
/// wrong operator -- or concludes nothing is missing at all.

#include <iostream>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/crime.h"
#include "datasets/use_cases.h"

namespace {

using namespace ned;

int RunCase(const UseCaseRegistry& registry, const std::string& name) {
  auto uc = registry.Find(name);
  if (!uc.ok()) {
    std::cerr << uc.status().ToString() << "\n";
    return 1;
  }
  const Database& db = registry.database((*uc)->db_name);
  auto tree = registry.BuildTree(**uc);
  if (!tree.ok()) {
    std::cerr << tree.status().ToString() << "\n";
    return 1;
  }

  std::cout << "---- " << name << " ----\n";
  std::cout << "SQL      : " << (*uc)->sql << "\n";
  std::cout << "Question : " << (*uc)->question.ToString() << "\n";
  std::cout << "Canonical tree:\n" << tree->ToString();

  auto engine = NedExplainEngine::Create(&*tree, &db);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  auto ned_result = engine->Explain((*uc)->question);
  if (!ned_result.ok()) {
    std::cerr << ned_result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "NedExplain:\n"
            << ned_result->answer.ToString(engine->last_input());

  auto baseline = WhyNotBaseline::Create(&*tree, &db);
  if (!baseline.ok()) {
    std::cerr << baseline.status().ToString() << "\n";
    return 1;
  }
  auto base_result = baseline->Explain((*uc)->question);
  if (!base_result.ok()) {
    std::cerr << base_result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Why-Not baseline: " << base_result->AnswerToString();
  for (const auto& part : base_result->per_ctuple) {
    if (part.answer_deemed_present) {
      std::cout << "  (concluded the answer is not missing!)";
    }
  }
  std::cout << "\n\n";
  return 0;
}

}  // namespace

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();

  std::cout << "=== Crime investigation: why-not debugging with self-joins "
               "===\n\n";
  std::cout << "The crime database:\n"
            << registry.database("crime").ToString() << "\n";

  // Crime6: "why does no kidnapping appear next to an aiding crime?" The
  // baseline blames the C1 selection (it finds kidnapping tuples in the
  // *filtered* alias too); NedExplain correctly blames the co-location join.
  if (RunCase(registry, "Crime6") != 0) return 1;

  // Crime7 adds the witness constraint; NedExplain reports two picky
  // subqueries (the crime join for the kidnappings, the witness join for
  // Susan), the baseline still only the wrong selection.
  if (RunCase(registry, "Crime7") != 0) return 1;

  // Crime8: the P1/P2 self-join trap -- the baseline believes Audrey is not
  // missing because successors of the *other* Audrey instance reach the
  // result; NedExplain pinpoints the name-inequality selection that removes
  // Audrey's only valid (self-paired) successor.
  if (RunCase(registry, "Crime8") != 0) return 1;

  std::cout << "Planted tuple ids: Audrey=P." << CrimeIds::kAudrey
            << ", kidnappings=C." << CrimeIds::kKidnap1 << "/C."
            << CrimeIds::kKidnap2 << "\n";
  return 0;
}
