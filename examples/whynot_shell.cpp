/// \file whynot_shell.cpp
/// \brief Interactive why-not shell: load a database, run SQL, ask why-not
/// questions.
///
/// Commands (one per line; also works non-interactively via stdin):
///   use crime|imdb|gov|example     -- switch to a built-in database
///   load <relation> <file.csv>     -- load a CSV file as a relation
///   tables                          -- list relations
///   show <relation>                 -- print (a prefix of) a relation
///   sql <query>                     -- compile, canonicalize and run a query
///   tree                            -- print the current canonical tree
///   whynot <attr>:<value>[, ...]    -- explain why no such tuple appears
///       e.g.  whynot P.name:Hank, C.type:Car theft
///       variables: <attr>:?x plus conditions via `where x > 25`
///   where <var> <op> <value>        -- add a condition to the next whynot
///   baseline on|off                 -- also run the Why-Not baseline
///   \timeout <ms>                   -- bound sql/whynot wall time (0 = off);
///       a tripped deadline yields a flagged partial answer
///   help / quit
///
/// The shell never dies on a bad command: errors print as a Status plus a
/// usage hint and the prompt returns.

#include <iostream>
#include <memory>
#include <sstream>

#include "baseline/whynot_baseline.h"
#include "common/csv.h"
#include "common/strings.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "core/suggest.h"
#include "datasets/running_example.h"
#include "datasets/use_cases.h"
#include "sql/binder.h"

namespace {

using namespace ned;

struct ShellState {
  std::shared_ptr<Database> db;
  std::shared_ptr<QueryTree> tree;
  std::vector<CPred> pending_conds;
  bool run_baseline = true;
  /// Wall-clock budget applied to `sql` and `whynot`; 0 = unlimited.
  int64_t timeout_ms = 0;
};

/// Fresh deadline-armed context for one command; nullptr when unlimited.
std::unique_ptr<ExecContext> MakeContext(const ShellState& state) {
  if (state.timeout_ms <= 0) return nullptr;
  auto ctx = std::make_unique<ExecContext>();
  ctx->set_deadline_after_ms(state.timeout_ms);
  return ctx;
}

/// Usage hint appended to a command's error so a typo never strands the user.
const char* UsageFor(const std::string& cmd) {
  if (cmd == "use") return "use crime|imdb|gov|example";
  if (cmd == "load") return "load <relation> <file.csv>";
  if (cmd == "show") return "show <relation>";
  if (cmd == "sql") return "sql select ... from ... [where ...]";
  if (cmd == "where") return "where <var> <op> <value>   e.g. where x > 25";
  if (cmd == "whynot")
    return "whynot <attr>:<value>[, ...]   e.g. whynot P.name:Hank";
  if (cmd == "baseline") return "baseline on|off";
  if (cmd == "timeout" || cmd == "\\timeout")
    return "\\timeout <ms>   (0 disables)";
  return nullptr;
}

Result<Value> ParseShellValue(const std::string& text) {
  return Value::ParseLenient(Trim(text));
}

Result<CompareOp> ParseShellOp(const std::string& op) {
  if (op == "=" || op == "==") return CompareOp::kEq;
  if (op == "!=" || op == "<>") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return Status::ParseError("unknown comparison operator: " + op);
}

Status HandleWhynot(ShellState* state, const std::string& args) {
  if (state->tree == nullptr) {
    return Status::InvalidArgument("run `sql <query>` first");
  }
  if (Trim(args).empty()) {
    return Status::InvalidArgument("whynot needs at least one <attr>:<value>");
  }
  CTuple tc;
  for (const std::string& field : Split(args, ',')) {
    size_t colon = field.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("expected <attr>:<value> in: " + field);
    }
    std::string attr = Trim(field.substr(0, colon));
    std::string value = Trim(field.substr(colon + 1));
    if (!value.empty() && value[0] == '?') {
      tc.AddVar(attr, value.substr(1));
    } else {
      NED_ASSIGN_OR_RETURN(Value v, ParseShellValue(value));
      tc.AddField(Attribute::Parse(attr), CValue::Const(std::move(v)));
    }
  }
  for (const auto& pred : state->pending_conds) tc.Where(pred);
  state->pending_conds.clear();

  WhyNotQuestion question{tc};
  NedExplainOptions options;
  options.keep_tabq_dump = false;
  NED_ASSIGN_OR_RETURN(NedExplainEngine engine,
                       NedExplainEngine::Create(state->tree.get(),
                                                state->db.get(), options));
  std::unique_ptr<ExecContext> ctx = MakeContext(*state);
  NED_ASSIGN_OR_RETURN(NedExplainResult result,
                       engine.Explain(question, ctx.get()));
  std::cout << RenderExplainReport(engine, question, result);

  NED_ASSIGN_OR_RETURN(std::vector<ModificationHint> hints,
                       SuggestModifications(engine, result));
  if (!hints.empty()) {
    std::cout << "hints:\n";
    for (const auto& hint : hints) {
      std::cout << "  - " << hint.description << "\n";
    }
  }

  if (state->run_baseline) {
    NED_ASSIGN_OR_RETURN(
        WhyNotBaseline baseline,
        WhyNotBaseline::Create(state->tree.get(), state->db.get()));
    std::unique_ptr<ExecContext> base_ctx = MakeContext(*state);
    NED_ASSIGN_OR_RETURN(WhyNotBaselineResult base,
                         baseline.Explain(question, base_ctx.get()));
    std::cout << "Why-Not baseline: " << base.AnswerToString();
    if (!base.complete) {
      std::cout << "  (partial: " << base.limit_status.ToString() << ")";
    }
    std::cout << "\n";
  }
  return Status::OK();
}

Status HandleLine(ShellState* state, const std::string& line) {
  std::string trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return Status::OK();
  size_t space = trimmed.find(' ');
  std::string cmd = ToLower(trimmed.substr(0, space));
  std::string args =
      space == std::string::npos ? "" : Trim(trimmed.substr(space + 1));

  if (cmd == "use") {
    if (args == "example") {
      NED_ASSIGN_OR_RETURN(Database db, BuildRunningExampleDb());
      state->db = std::make_shared<Database>(std::move(db));
    } else {
      NED_ASSIGN_OR_RETURN(UseCaseRegistry registry, UseCaseRegistry::Build());
      if (args != "crime" && args != "imdb" && args != "gov") {
        return Status::InvalidArgument("unknown database: " + args);
      }
      state->db = std::make_shared<Database>(registry.database(args));
    }
    state->tree = nullptr;
    std::cout << "database " << args << ":\n" << state->db->ToString();
    return Status::OK();
  }
  if (cmd == "load") {
    size_t sep = args.find(' ');
    if (sep == std::string::npos) {
      return Status::InvalidArgument("usage: load <relation> <file.csv>");
    }
    if (state->db == nullptr) state->db = std::make_shared<Database>();
    std::string relation = args.substr(0, sep);
    NED_ASSIGN_OR_RETURN(std::string csv, ReadFile(Trim(args.substr(sep + 1))));
    NED_RETURN_NOT_OK(state->db->LoadCsv(relation, csv));
    std::cout << "loaded " << relation << "\n";
    return Status::OK();
  }
  if (cmd == "tables") {
    if (state->db == nullptr) return Status::InvalidArgument("no database");
    std::cout << state->db->ToString();
    return Status::OK();
  }
  if (cmd == "show") {
    if (state->db == nullptr) return Status::InvalidArgument("no database");
    NED_ASSIGN_OR_RETURN(const Relation* rel, state->db->GetRelation(args));
    std::cout << rel->ToString();
    return Status::OK();
  }
  if (cmd == "sql") {
    if (state->db == nullptr) return Status::InvalidArgument("no database");
    NED_ASSIGN_OR_RETURN(QueryTree tree, CompileSql(args, *state->db));
    state->tree = std::make_shared<QueryTree>(std::move(tree));
    std::cout << "canonical tree:\n" << state->tree->ToString();
    // Evaluate and show the result, under the session timeout if one is set.
    std::unique_ptr<ExecContext> ctx = MakeContext(*state);
    NED_ASSIGN_OR_RETURN(QueryInput input,
                         QueryInput::Build(*state->tree, *state->db, ctx.get()));
    Evaluator evaluator(state->tree.get(), &input, ctx.get());
    Result<const std::vector<TraceTuple>*> eval = evaluator.EvalAll();
    if (!eval.ok()) {
      if (IsResourceLimit(eval.status())) {
        std::cout << "evaluation stopped: " << eval.status().ToString()
                  << " (raise or disable with \\timeout)\n";
        return Status::OK();
      }
      return eval.status();
    }
    const std::vector<TraceTuple>* out = *eval;
    std::cout << "result (" << out->size() << " tuples):\n";
    size_t shown = 0;
    for (const TraceTuple& t : *out) {
      if (++shown > 10) {
        std::cout << "  ...\n";
        break;
      }
      std::cout << "  " << t.values.ToString(state->tree->target_type()) << "\n";
    }
    return Status::OK();
  }
  if (cmd == "tree") {
    if (state->tree == nullptr) return Status::InvalidArgument("no query yet");
    std::cout << state->tree->ToString();
    return Status::OK();
  }
  if (cmd == "where") {
    std::istringstream in(args);
    std::string var, op, value;
    in >> var >> op;
    std::getline(in, value);
    NED_ASSIGN_OR_RETURN(CompareOp cop, ParseShellOp(op));
    NED_ASSIGN_OR_RETURN(Value v, ParseShellValue(value));
    state->pending_conds.push_back(CPred::VsConst(var, cop, std::move(v)));
    std::cout << "condition queued: " << state->pending_conds.back().ToString()
              << "\n";
    return Status::OK();
  }
  if (cmd == "whynot") return HandleWhynot(state, args);
  if (cmd == "timeout" || cmd == "\\timeout") {
    int64_t ms = 0;
    std::istringstream in(args);
    if (!(in >> ms) || ms < 0) {
      return Status::InvalidArgument("timeout needs a non-negative millisecond "
                                     "count");
    }
    state->timeout_ms = ms;
    if (ms == 0) {
      std::cout << "timeout disabled\n";
    } else {
      std::cout << "timeout set to " << ms << " ms; long runs now return "
                << "flagged partial answers\n";
    }
    return Status::OK();
  }
  if (cmd == "baseline") {
    state->run_baseline = args != "off";
    std::cout << "baseline " << (state->run_baseline ? "on" : "off") << "\n";
    return Status::OK();
  }
  if (cmd == "help") {
    std::cout
        << "commands: use <db> | load <rel> <csv> | tables | show <rel> | "
           "sql <query> | tree | where <var> <op> <val> | whynot <a>:<v>,... "
           "| baseline on/off | \\timeout <ms> | quit\n"
           "  \\timeout bounds sql/whynot wall time; a tripped deadline "
           "yields a flagged partial answer instead of an error\n";
    return Status::OK();
  }
  if (cmd == "quit" || cmd == "exit") {
    return Status(StatusCode::kUnsupported, "__quit__");
  }
  return Status::InvalidArgument("unknown command: " + cmd + " (try help)");
}

}  // namespace

int main() {
  ShellState state;
  std::cout << "nedexplain why-not shell -- `help` for commands, `use "
               "example` to start\n";
  std::string line;
  while (true) {
    std::cout << "> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    ned::Status status = HandleLine(&state, line);
    if (!status.ok()) {
      if (status.message() == "__quit__") break;
      // Errors never kill the shell: print the status and, when the command
      // is known, how to invoke it correctly.
      std::cout << status.ToString() << "\n";
      std::string t = ned::Trim(line);
      const char* usage = UsageFor(ned::ToLower(t.substr(0, t.find(' '))));
      if (usage != nullptr) std::cout << "  usage: " << usage << "\n";
    }
  }
  std::cout << "bye\n";
  return 0;
}
