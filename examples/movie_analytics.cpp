/// \file movie_analytics.cpp
/// \brief Why-not questions over *renamed* attributes (use cases Imdb1 and
/// Imdb2 of the paper).
///
/// Q5 joins Movies and Ratings on the movie name -- the renaming introduces
/// a fresh unqualified attribute `name` that the user's question refers to.
/// This example shows how the question is *unrenamed* (Def. 2.7) into
/// qualified attributes before compatible tuples are located, and why valid
/// successors (lineage within the compatible set) matter: the baseline keeps
/// tracing plain successors into the result and misses the Imdb2 answer.

#include <iostream>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/imdb.h"
#include "datasets/use_cases.h"
#include "whynot/unrenaming.h"

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();
  const Database& db = registry.database("imdb");

  std::cout << "=== Movie analytics: questions over renamed attributes ===\n\n";
  std::cout << "The imdb database:\n" << db.ToString() << "\n";

  for (const char* name : {"Imdb1", "Imdb2"}) {
    auto uc = registry.Find(name);
    NED_CHECK(uc.ok());
    auto tree = registry.BuildTree(**uc);
    if (!tree.ok()) {
      std::cerr << tree.status().ToString() << "\n";
      return 1;
    }

    std::cout << "---- " << name << " ----\n";
    std::cout << "SQL      : " << (*uc)->sql << "\n";
    std::cout << "Question : " << (*uc)->question.ToString() << "\n";

    // Show the unrenaming step explicitly (Def. 2.7): `name` expands into
    // M.name and R.name inside one c-tuple.
    auto unrenamed = UnrenameQuestion(*tree, (*uc)->question);
    NED_CHECK(unrenamed.ok());
    std::cout << "Unrenamed: " << unrenamed->ToString() << "\n";
    std::cout << "Canonical tree:\n" << tree->ToString();

    auto engine = NedExplainEngine::Create(&*tree, &db);
    NED_CHECK(engine.ok());
    auto result = engine->Explain((*uc)->question);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "NedExplain:\n" << result->answer.ToString(engine->last_input());

    auto baseline = WhyNotBaseline::Create(&*tree, &db);
    NED_CHECK(baseline.ok());
    auto base_result = baseline->Explain((*uc)->question);
    NED_CHECK(base_result.ok());
    std::cout << "Why-Not baseline: " << base_result->AnswerToString();
    for (const auto& part : base_result->per_ctuple) {
      if (part.answer_deemed_present) {
        std::cout << "  (kept tracing plain successors into the result and "
                     "concluded nothing is missing)";
      }
    }
    std::cout << "\n\n";
  }

  std::cout << "Planted rows: Avatar = M." << ImdbIds::kAvatarMovie << "/R."
            << ImdbIds::kAvatarRating << "; Christmas Story = M."
            << ImdbIds::kChristmasMovie << " filmed at L."
            << ImdbIds::kChristmasLocation
            << " (Toronto); the only USANewYork location is L."
            << ImdbIds::kNewYorkLocation << " of a different movie.\n";
  return 0;
}
