/// \file gov_aggregates.cpp
/// \brief Aggregation-aware why-not provenance (use cases Gov4-Gov6 of the
/// paper) plus a secondary-answer demonstration.
///
/// Shows the breakpoint view V (the minimal join covering the grouped and
/// aggregated attributes), cond-alpha flips -- a subquery whose *input*
/// still aggregates to the asked-for value while its *output* no longer does
/// (Gov6's "why doesn't Bennett's sum equal 18700?") -- and the secondary
/// answer produced when an indirect-compatible relation is emptied.

#include <iostream>

#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/gov.h"
#include "datasets/use_cases.h"
#include "sql/binder.h"

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();
  const Database& db = registry.database("gov");

  std::cout << "=== Earmark analytics: aggregation and secondary answers "
               "===\n\n";

  for (const char* name : {"Gov4", "Gov6"}) {
    auto uc = registry.Find(name);
    NED_CHECK(uc.ok());
    auto tree = registry.BuildTree(**uc);
    NED_CHECK(tree.ok());

    std::cout << "---- " << name << " ----\n";
    std::cout << "SQL      : " << (*uc)->sql << "\n";
    std::cout << "Question : " << (*uc)->question.ToString() << "\n";
    std::cout << "Canonical tree:\n" << tree->ToString();

    auto engine = NedExplainEngine::Create(&*tree, &db);
    NED_CHECK(engine.ok());
    if (engine->breakpoint() != nullptr) {
      std::cout << "Breakpoint view V = " << engine->breakpoint()->name
                << " (" << engine->breakpoint()->Describe() << ")\n";
    }
    auto result = engine->Explain((*uc)->question);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "NedExplain:\n"
              << result->answer.ToString(engine->last_input()) << "\n";
  }

  // ---- Secondary answer (Ex. 2.7 style) --------------------------------------
  // A query whose ES filter matches nothing: the why-not question only
  // constrains SPO, so ES/E are indirect-compatible -- the emptied selection
  // surfaces through the secondary answer.
  std::cout << "---- Secondary answer: an emptied indirect relation ----\n";
  const char* sql =
      "SELECT SPO.sponsorln, E.camount FROM E, ES, SPO "
      "WHERE E.earmarkId = ES.earmarkId AND ES.sponsorId = SPO.sponsorId "
      "AND ES.substage = 'Conference Floor'";
  std::cout << "SQL      : " << sql << "\n";
  auto tree = CompileSql(sql, db);
  NED_CHECK(tree.ok());
  std::cout << "Canonical tree:\n" << tree->ToString();

  CTuple tc;
  tc.Add("SPO.sponsorln", Value::Str("Bennett"));
  WhyNotQuestion question{tc};
  std::cout << "Question : " << question.ToString() << "\n";

  auto engine = NedExplainEngine::Create(&*tree, &db);
  NED_CHECK(engine.ok());
  auto result = engine->Explain(question);
  NED_CHECK(result.ok());
  std::cout << "NedExplain:\n" << result->answer.ToString(engine->last_input());
  std::cout << "\nThe detailed answer blames the join that lost Bennett; the "
               "secondary answer points at the substage selection that "
               "emptied the ES side (no earmark is at 'Conference Floor'), "
               "the deeper root cause.\n";
  return 0;
}
