/// \file quickstart.cpp
/// \brief The paper's running example, end to end (Fig. 1, Ex. 2.1-2.6,
/// Tables 1-2).
///
/// Builds the authors/books instance of Fig. 1(b), compiles the SQL query of
/// Fig. 1(a) into the canonical tree of Fig. 1(c), asks "why is there no
/// result tuple with author Homer and average price > 25?", and prints the
/// detailed, condensed and secondary Why-Not answers along with the final
/// TabQ state (Table 2).

#include <iostream>

#include "core/nedexplain.h"
#include "core/report.h"
#include "core/suggest.h"
#include "datasets/running_example.h"

int main() {
  using namespace ned;

  // 1. The database instance of Fig. 1(b).
  auto db_result = BuildRunningExampleDb();
  if (!db_result.ok()) {
    std::cerr << db_result.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(db_result).value();
  std::cout << "=== Database (Fig. 1b) ===\n" << db.ToString() << "\n";

  // 2. Compile the SQL of Fig. 1(a) into the canonical tree of Fig. 1(c).
  std::cout << "SQL: " << RunningExampleSql() << "\n\n";
  auto tree_result = BuildRunningExampleTree(db);
  if (!tree_result.ok()) {
    std::cerr << tree_result.status().ToString() << "\n";
    return 1;
  }
  QueryTree tree = std::move(tree_result).value();
  std::cout << "=== Canonical query tree (Fig. 1c) ===\n"
            << tree.ToString() << "\n";

  // 3. Ask the Why-Not question of Ex. 2.1 and run NedExplain.
  NedExplainOptions options;
  options.keep_tabq_dump = true;  // show the Table 1/2 style TabQ state
  auto engine_result = NedExplainEngine::Create(&tree, &db, options);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status().ToString() << "\n";
    return 1;
  }
  NedExplainEngine engine = std::move(engine_result).value();

  WhyNotQuestion question = RunningExampleQuestion();
  auto result = engine.Explain(question);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== NedExplain ===\n"
            << RenderExplainReport(engine, question, *result) << "\n";
  std::cout << "=== Phase breakdown (Fig. 5 phases) ===\n"
            << RenderPhaseBreakdown(result->phases);

  // 4. Modification-based hints derived from the query-based answer -- the
  // paper's introduction example re-derived automatically: relax the dob
  // selection to >= and Homer appears.
  auto hints = SuggestModifications(engine, *result);
  if (hints.ok() && !hints->empty()) {
    std::cout << "\n=== Suggested modifications ===\n";
    for (const auto& hint : *hints) {
      std::cout << "  - " << hint.description << "\n";
    }
  }
  return 0;
}
