/// \file bench_service.cpp
/// \brief Serving performance: throughput and p50/p99 latency vs workers.
///
/// Drives the Fig. 6 workloads (the paper's 19 use cases) through the
/// concurrent WhyNotService at several worker-pool sizes, measuring
/// end-to-end request latency (queue wait + execution) and aggregate
/// throughput. Emits BENCH_service.json so the serving-perf trajectory can
/// be tracked across PRs; the console table is the human view.
///
/// Usage: bench_service [--requests N] [--out path.json]

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "datasets/use_cases.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::Database;
using ned::ServiceOptions;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotRequest;
using ned::WhyNotResponse;
using ned::WhyNotService;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

struct RunResult {
  int workers = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int requests = 400;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_service [--requests N] [--out path.json]\n";
      return 2;
    }
  }

  auto registry = UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }
  auto catalog = std::make_shared<Catalog>();
  for (const char* name : {"crime", "imdb", "gov"}) {
    Database copy = registry->database(name);
    NED_CHECK(catalog->Register(name, std::move(copy)).ok());
  }
  const std::vector<UseCase>& cases = registry->use_cases();

  // Worker scaling is bounded by physical parallelism; record it so the
  // JSON is interpretable on whatever machine produced it.
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "bench_service: " << requests << " requests round-robin over "
            << cases.size() << " Fig. 6 use cases, " << cores << " cores\n";
  std::cout << "workers  wall_ms  req/s    p50_ms  p99_ms\n";

  std::vector<RunResult> results;
  for (int workers : {1, 2, 4, 8}) {
    ServiceOptions options;
    options.workers = workers;
    // Deep queue: this measures execution scaling, not admission control.
    options.queue_capacity = static_cast<size_t>(requests) + 1;
    options.default_deadline_ms = 60'000;
    // Caches off: repeated use cases would otherwise be served at Submit
    // and this would measure the cache, not the workers (bench_cache does
    // that on purpose).
    options.answer_cache_bytes = 0;
    options.subtree_cache_bytes = 0;
    WhyNotService service(catalog, options);

    // Warm-up pass so first-touch costs don't land on worker-count 1.
    for (size_t i = 0; i < cases.size(); ++i) {
      WhyNotRequest req;
      req.key = ned::StrCat("warm-", i);
      req.db_name = cases[i].db_name;
      req.sql = cases[i].sql;
      req.question = cases[i].question;
      auto sub = service.Submit(std::move(req));
      if (sub.status.ok()) sub.response.get();
    }

    std::vector<std::shared_future<WhyNotResponse>> futures;
    futures.reserve(static_cast<size_t>(requests));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < requests; ++i) {
      const UseCase& uc = cases[static_cast<size_t>(i) % cases.size()];
      WhyNotRequest req;
      req.key = ned::StrCat("w", workers, "-r", i);
      req.db_name = uc.db_name;
      req.sql = uc.sql;
      req.question = uc.question;
      auto sub = service.Submit(std::move(req));
      NED_CHECK_MSG(sub.status.ok(), sub.status.ToString());
      futures.push_back(sub.response);
    }
    std::vector<double> latencies;
    latencies.reserve(futures.size());
    size_t completed = 0;
    for (auto& f : futures) {
      WhyNotResponse resp = f.get();
      if (resp.status.ok()) {
        ++completed;
        latencies.push_back(resp.queue_ms + resp.exec_ms);
      }
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    service.Shutdown();

    RunResult r;
    r.workers = workers;
    r.wall_ms = wall_ms;
    r.throughput_rps = 1000.0 * static_cast<double>(completed) / wall_ms;
    r.p50_ms = Percentile(latencies, 0.50);
    r.p99_ms = Percentile(latencies, 0.99);
    r.completed = completed;
    results.push_back(r);
    std::printf("%7d  %7.1f  %7.1f  %6.3f  %6.3f\n", r.workers, r.wall_ms,
                r.throughput_rps, r.p50_ms, r.p99_ms);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"service\",\n  \"requests\": " << requests
      << ",\n  \"use_cases\": " << cases.size() << ",\n  \"cores\": " << cores
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"workers\": " << r.workers << ", \"completed\": "
        << r.completed << ", \"wall_ms\": " << r.wall_ms
        << ", \"throughput_rps\": " << r.throughput_rps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
