/// \file bench_parallel.cpp
/// \brief Intra-query parallelism: T=1 overhead and T=2/4 scaling on the
/// Fig. 6 workloads (the paper's 19 use cases) plus a 90k-row cross join
/// where morsel fan-out genuinely has rows to chew on.
///
/// Four engine configurations per case, measured interleaved so drift hits
/// them equally:
///   serial -- no task pool attached (the pre-PR evaluation),
///   t1     -- pool attached, threads=1: takes the serial code paths
///             byte-for-byte; its delta vs. serial is the configuration
///             overhead of the parallelism layer (< 3% acceptance gate),
///   t2/t4  -- morsel fan-out over a shared 3-worker pool.
/// Every parallel run's rendered report is checked byte-identical to the
/// serial run's (the bit-identity contract, enforced here too so a perf run
/// can never silently trade answers for speed).
///
/// Emits BENCH_parallel.json with per-case medians, aggregate medians and
/// the machine's core count -- scaling numbers are only meaningful relative
/// to the cores that were actually available, so the file records them.
/// `--smoke` is the CI-sized run (also the exit-code gate).
///
/// Usage: bench_parallel [--reps N] [--smoke] [--out path.json]

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "sql/binder.h"

namespace {

using ned::CTuple;
using ned::Database;
using ned::ExecContext;
using ned::NedExplainEngine;
using ned::QueryTree;
using ned::TaskPool;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::Value;
using ned::WhyNotQuestion;

double MedianMs(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct CaseResult {
  std::string name;
  double serial_ms = 0;
  double t1_ms = 0;
  double t2_ms = 0;
  double t4_ms = 0;

  double t1_overhead() const {
    return serial_ms > 0 ? t1_ms / serial_ms - 1.0 : 0;
  }
  double t2_speedup() const { return t2_ms > 0 ? serial_ms / t2_ms : 0; }
  double t4_speedup() const { return t4_ms > 0 ? serial_ms / t4_ms : 0; }
};

/// One timed Explain under `ctx` (nullptr = ungoverned serial). The result's
/// rendered report is returned through `report` when non-null (rendering is
/// outside the timed window).
double TimeExplainMs(NedExplainEngine& engine, const WhyNotQuestion& question,
                     ExecContext* ctx, std::string* report) {
  const auto start = std::chrono::steady_clock::now();
  auto result = engine.Explain(question, ctx);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  NED_CHECK_MSG(result->completeness.complete, "benchmark run was partial");
  if (report != nullptr) {
    *report = RenderExplainReport(engine, question, *result);
  }
  return ms;
}

/// Two `n`-row relations whose cross join has n*n rows -- the workload where
/// scan/probe partitioning actually sees large inputs (n=300 -> 90k joined
/// rows), unlike the sub-10k-row use cases.
Database MakeCrossJoinDb(int n) {
  Database db;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < n; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
      reps = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr
          << "usage: bench_parallel [--reps N] [--smoke] [--out path.json]\n";
      return 2;
    }
  }

  auto registry = UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }

  // Case list: the 19 paper use cases + the synthetic 90k-row cross join.
  struct BenchCase {
    std::string name;
    std::unique_ptr<QueryTree> tree;
    const Database* db;
    WhyNotQuestion question;
  };
  std::vector<BenchCase> cases;
  for (const UseCase& uc : registry->use_cases()) {
    auto tree = registry->BuildTree(uc);
    NED_CHECK_MSG(tree.ok(), tree.status().ToString());
    cases.push_back({uc.name,
                     std::make_unique<QueryTree>(std::move(tree).value()),
                     &registry->database(uc.db_name), uc.question});
  }
  Database cross_db = MakeCrossJoinDb(300);
  {
    auto tree =
        ned::CompileSql("SELECT R.a FROM R, S WHERE R.a >= 0", cross_db);
    NED_CHECK_MSG(tree.ok(), tree.status().ToString());
    CTuple tc;
    tc.Add("R.a", Value::Int(0));  // compatible: the 90k-row join materialises
    cases.push_back({"CrossJoin90k",
                     std::make_unique<QueryTree>(std::move(tree).value()),
                     &cross_db, WhyNotQuestion(tc)});
  }

  const unsigned cores = std::thread::hardware_concurrency();
  TaskPool pool(3);
  std::cout << "bench_parallel: " << cases.size()
            << " cases (19 Fig. 6 use cases + 90k-row cross join), " << reps
            << " reps (median), " << cores << " cores\n";
  std::cout << "case          serial_ms    t1_ms    t2_ms    t4_ms  t1_ovh  "
               "t2_x   t4_x\n";

  int failures = 0;
  std::vector<CaseResult> results;
  for (const BenchCase& c : cases) {
    auto engine = NedExplainEngine::Create(c.tree.get(), c.db);
    NED_CHECK_MSG(engine.ok(), engine.status().ToString());

    // Identity first (untimed): every thread count must render the serial
    // report byte-for-byte. This also first-touches the data.
    std::string serial_report;
    (void)TimeExplainMs(*engine, c.question, nullptr, &serial_report);
    for (int threads : {1, 2, 4}) {
      ExecContext ctx;
      ctx.set_parallelism(&pool, threads);
      std::string report;
      (void)TimeExplainMs(*engine, c.question, &ctx, &report);
      if (report != serial_report) {
        std::cerr << "FAIL " << c.name << ": threads=" << threads
                  << " changed the rendered report\n";
        ++failures;
      }
    }

    CaseResult r;
    r.name = c.name;
    std::vector<double> serial, t1, t2, t4;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleaved: serial, t1, t2, t4 back to back inside each rep.
      serial.push_back(TimeExplainMs(*engine, c.question, nullptr, nullptr));
      for (auto [threads, bucket] :
           {std::pair<int, std::vector<double>*>{1, &t1},
            {2, &t2},
            {4, &t4}}) {
        ExecContext ctx;
        ctx.set_parallelism(&pool, threads);
        bucket->push_back(
            TimeExplainMs(*engine, c.question, &ctx, nullptr));
      }
    }
    r.serial_ms = MedianMs(serial);
    r.t1_ms = MedianMs(t1);
    r.t2_ms = MedianMs(t2);
    r.t4_ms = MedianMs(t4);
    results.push_back(r);
    std::printf("%-12s %9.3f %8.3f %8.3f %8.3f %6.1f%% %6.2f %6.2f\n",
                r.name.c_str(), r.serial_ms, r.t1_ms, r.t2_ms, r.t4_ms,
                100.0 * r.t1_overhead(), r.t2_speedup(), r.t4_speedup());
  }

  std::vector<double> t1_overheads, t1_deltas, t2_speedups, t4_speedups;
  for (const CaseResult& r : results) {
    t1_overheads.push_back(r.t1_overhead());
    t1_deltas.push_back(r.t1_ms - r.serial_ms);
    t2_speedups.push_back(r.t2_speedup());
    t4_speedups.push_back(r.t4_speedup());
  }
  const double med_t1_overhead = MedianMs(t1_overheads);
  const double med_t1_delta = MedianMs(t1_deltas);
  const double med_t2 = MedianMs(t2_speedups);
  const double med_t4 = MedianMs(t4_speedups);
  std::cout << "aggregate medians: t1 overhead " << 100.0 * med_t1_overhead
            << "% (" << med_t1_delta << " ms), t2 speedup " << med_t2
            << "x, t4 speedup " << med_t4 << "x on " << cores << " cores\n";

  // Acceptance gate: attaching the parallelism layer at threads=1 must cost
  // < 3% vs. plain serial (with an absolute slack floor -- sub-millisecond
  // cases put 3% below timer noise). Scaling is *recorded*, not gated: on a
  // single-core machine honest speedup is <= 1x, and the JSON carries the
  // core count so readers can judge the numbers in context.
  const bool t1_ok = med_t1_overhead < 0.03 || med_t1_delta < 0.05;
#ifdef NED_FORCE_PARALLEL
  // Under the forced-parallel build the "serial" leg silently runs with the
  // process-global pool attached, so the overhead comparison is void.
  std::cout << "note: NED_FORCE_PARALLEL build, t1-overhead gate skipped\n";
#else
  if (!t1_ok) {
    std::cerr << "FAIL: t1 overhead " << 100.0 * med_t1_overhead
              << "% >= 3% (delta " << med_t1_delta << " ms)\n";
    ++failures;
  }
#endif

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"parallel\",\n  \"reps\": " << reps
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"cores\": " << cores
      << ",\n  \"aggregate\": {\"t1_overhead\": " << med_t1_overhead
      << ", \"t1_delta_ms\": " << med_t1_delta
      << ", \"t2_speedup\": " << med_t2 << ", \"t4_speedup\": " << med_t4
      << ", \"meets_targets\": " << (t1_ok && failures == 0 ? "true" : "false")
      << "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out << "    {\"case\": \"" << r.name
        << "\", \"serial_ms\": " << r.serial_ms << ", \"t1_ms\": " << r.t1_ms
        << ", \"t2_ms\": " << r.t2_ms << ", \"t4_ms\": " << r.t4_ms
        << ", \"t1_overhead\": " << r.t1_overhead()
        << ", \"t2_speedup\": " << r.t2_speedup()
        << ", \"t4_speedup\": " << r.t4_speedup() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (failures > 0) {
    std::cerr << "bench_parallel: FAIL (" << failures << " violations)\n";
    return 1;
  }
  std::cout << "bench_parallel: PASS\n";
  return 0;
}
