/// \file bench_operators.cpp
/// \brief Microbenchmarks of the lineage-tracking executor: per-operator
/// throughput (scan/select/join/aggregate) including provenance bookkeeping.

#include <benchmark/benchmark.h>

#include "canonical/canonicalizer.h"
#include "exec/evaluator.h"

namespace {

using namespace ned;

std::shared_ptr<Database> MakeTwoTableDb(int rows) {
  static std::map<int, std::shared_ptr<Database>> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;
  auto db = std::make_shared<Database>();
  Relation r("R", Schema({{"R", "id"}, {"R", "k"}, {"R", "v"}}));
  Relation s("S", Schema({{"S", "id"}, {"S", "k"}, {"S", "w"}}));
  for (int i = 0; i < rows; ++i) {
    r.AddRow({Value::Int(i), Value::Int(i % (rows / 4 + 1)), Value::Int(i % 97)});
    s.AddRow({Value::Int(i), Value::Int(i % (rows / 4 + 1)), Value::Int(i % 89)});
  }
  NED_CHECK(db->AddRelation(std::move(r)).ok());
  NED_CHECK(db->AddRelation(std::move(s)).ok());
  cache[rows] = db;
  return db;
}

QueryTree MakeTree(const Database& db, const char* kind) {
  QueryBlock block;
  block.tables.push_back({"R", "R"});
  if (std::string(kind) == "select") {
    block.selections.push_back(Gt(Col("R", "v"), Lit(static_cast<int64_t>(48))));
    block.projection = {Attribute("R", "id")};
  } else if (std::string(kind) == "join") {
    block.tables.push_back({"S", "S"});
    block.joins.push_back({Attribute("R", "k"), Attribute("S", "k"), "k"});
    block.projection = {Attribute("R", "id"), Attribute("S", "id")};
  } else if (std::string(kind) == "aggregate") {
    AggSpec agg;
    agg.group_by = {Attribute("R", "k")};
    agg.calls.push_back({AggFn::kSum, Attribute("R", "v"), "sv"});
    block.agg = agg;
    block.projection = {Attribute("R", "k"), Attribute::Unqualified("sv")};
  } else {
    block.projection = {Attribute("R", "id")};
  }
  auto tree = Canonicalize(QuerySpec{{block}, {}, {}}, db);
  NED_CHECK(tree.ok());
  return std::move(tree).value();
}

void RunOperator(benchmark::State& state, const char* kind) {
  int rows = static_cast<int>(state.range(0));
  std::shared_ptr<Database> db = MakeTwoTableDb(rows);
  QueryTree tree = MakeTree(*db, kind);
  size_t produced = 0;
  for (auto _ : state) {
    auto input = QueryInput::Build(tree, *db);
    NED_CHECK(input.ok());
    Evaluator evaluator(&tree, &*input);
    auto out = evaluator.EvalAll();
    NED_CHECK(out.ok());
    produced = (*out)->size();
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel("out=" + std::to_string(produced));
}

void BM_Scan(benchmark::State& state) { RunOperator(state, "scan"); }
void BM_Select(benchmark::State& state) { RunOperator(state, "select"); }
void BM_HashJoin(benchmark::State& state) { RunOperator(state, "join"); }
void BM_Aggregate(benchmark::State& state) { RunOperator(state, "aggregate"); }

BENCHMARK(BM_Scan)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Select)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Aggregate)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
