/// \file bench_limits.cpp
/// \brief Overhead of resource-governed execution: per-row checkpoint cost.
///
/// Compares ungoverned runs (ctx = nullptr: the tick macro is one pointer
/// compare) against runs under a permissive ExecContext (one add+branch per
/// row, a full CheckPoint every kCheckInterval rows) on the Fig. 6 use-case
/// workloads and a cross-join microbenchmark. The acceptance bar for the
/// governance subsystem is <2% median overhead on the Fig. 6 workloads.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "sql/binder.h"

namespace {

/// Median wall time in ms over `reps` runs of `fn`.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    ned::Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Interleaved A/B medians: alternating the two variants inside one loop
/// cancels clock drift and cache-warmth bias that back-to-back MedianMs
/// blocks would attribute to whichever ran second.
template <typename FnA, typename FnB>
std::pair<double, double> InterleavedMedianMs(int reps, FnA&& a, FnB&& b) {
  std::vector<double> ta, tb;
  for (int i = 0; i < reps; ++i) {
    {
      ned::Stopwatch watch;
      a();
      ta.push_back(watch.ElapsedMillis());
    }
    {
      ned::Stopwatch watch;
      b();
      tb.push_back(watch.ElapsedMillis());
    }
  }
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return {ta[ta.size() / 2], tb[tb.size() / 2]};
}

}  // namespace

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();
  constexpr int kReps = 15;

  std::printf("%-10s %12s %12s %9s\n", "use case", "plain ms", "governed ms",
              "overhead");
  double worst = 0, sum_plain = 0, sum_governed = 0;
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    if (!tree_result.ok()) continue;
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);
    auto engine = NedExplainEngine::Create(&tree, &db);
    if (!engine.ok()) continue;

    auto [plain_ms, governed_ms] = InterleavedMedianMs(
        kReps,
        [&] {
          auto r = engine->Explain(uc.question);
          NED_CHECK(r.ok());
        },
        [&] {
          // Permissive context: deadline an hour out, generous budgets --
          // every checkpoint runs its full battery of comparisons but never
          // trips.
          ExecContext ctx;
          ctx.set_deadline_after_ms(3600 * 1000);
          ctx.set_row_budget(static_cast<size_t>(1) << 40);
          ctx.set_memory_budget(static_cast<size_t>(1) << 50);
          auto r = engine->Explain(uc.question, &ctx);
          NED_CHECK(r.ok());
          NED_CHECK(r->completeness.complete);
        });
    double overhead =
        100.0 * (governed_ms - plain_ms) / std::max(plain_ms, 1e-9);
    worst = std::max(worst, overhead);
    sum_plain += plain_ms;
    sum_governed += governed_ms;
    std::printf("%-10s %12.3f %12.3f %+8.2f%%\n", uc.name.c_str(), plain_ms,
                governed_ms, overhead);
  }
  double aggregate =
      100.0 * (sum_governed - sum_plain) / std::max(sum_plain, 1e-9);
  std::printf("%-10s %12.3f %12.3f %+8.2f%%  (bar: <2%% aggregate)\n",
              "TOTAL", sum_plain, sum_governed, aggregate);

  // Cross-join microbenchmark: the worst case for per-row ticking, since
  // the join inner loop does almost no other work per output row.
  Database db;
  std::string r_csv = "a\n", s_csv = "b\n";
  for (int i = 0; i < 300; ++i) {
    r_csv += std::to_string(i) + "\n";
    s_csv += std::to_string(i) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r_csv).ok());
  NED_CHECK(db.LoadCsv("S", s_csv).ok());
  auto tree_result = CompileSql("SELECT R.a FROM R, S WHERE R.a >= 0", db);
  NED_CHECK(tree_result.ok());
  QueryTree tree = std::move(tree_result).value();

  // The root projection deduplicates; the join underneath still materialises
  // all 90k rows, which is the loop the ticking instruments.
  size_t expected = 0;
  auto eval_once = [&](ExecContext* ctx) {
    auto input = QueryInput::Build(tree, db, ctx);
    NED_CHECK(input.ok());
    Evaluator evaluator(&tree, &*input, ctx);
    auto out = evaluator.EvalAll();
    NED_CHECK(out.ok());
    if (expected == 0) expected = (*out)->size();
    NED_CHECK((*out)->size() == expected);
  };
  auto [plain_ms, governed_ms] = InterleavedMedianMs(
      kReps, [&] { eval_once(nullptr); },
      [&] {
        ExecContext ctx;
        ctx.set_deadline_after_ms(3600 * 1000);
        ctx.set_row_budget(static_cast<size_t>(1) << 40);
        ctx.set_memory_budget(static_cast<size_t>(1) << 50);
        eval_once(&ctx);
      });
  std::printf("%-10s %12.3f %12.3f %+8.2f%%  (90k-row cross join)\n",
              "xjoin", plain_ms, governed_ms,
              100.0 * (governed_ms - plain_ms) / std::max(plain_ms, 1e-9));
  return 0;
}
