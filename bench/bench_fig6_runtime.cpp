/// \file bench_fig6_runtime.cpp
/// \brief Regenerates paper Fig. 6: total execution time per use case,
/// Why-Not baseline vs NedExplain.
///
/// Expected shape: NedExplain at or below the baseline on every use case
/// (the baseline always evaluates the whole workflow up front and re-derives
/// successor sets per piece, mirroring its per-manipulation lineage queries;
/// NedExplain prunes through compatible sets and terminates early).
/// Aggregation/union cases are skipped for the baseline (n.a. in Table 5).

#include <algorithm>
#include <iostream>

#include "baseline/whynot_baseline.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"

namespace {

/// Median wall time in ms over `reps` runs of `fn`.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    ned::Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();
  constexpr int kReps = 7;

  std::vector<std::vector<std::string>> rows;
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    if (!tree_result.ok()) continue;
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);

    auto baseline = WhyNotBaseline::Create(&tree, &db);
    auto engine = NedExplainEngine::Create(&tree, &db);
    if (!baseline.ok() || !engine.ok()) continue;

    bool baseline_supported = true;
    {
      auto probe = baseline->Explain(uc.question);
      baseline_supported = probe.ok() && probe->supported;
    }
    double baseline_ms = 0;
    if (baseline_supported) {
      baseline_ms = MedianMs(kReps, [&] {
        auto r = baseline->Explain(uc.question);
        NED_CHECK(r.ok());
      });
    }
    double ned_ms = MedianMs(kReps, [&] {
      auto r = engine->Explain(uc.question);
      NED_CHECK(r.ok());
    });

    char b1[32], b2[32], b3[32];
    if (baseline_supported) {
      std::snprintf(b1, sizeof(b1), "%.3f", baseline_ms);
      std::snprintf(b3, sizeof(b3), "%.2fx", baseline_ms / std::max(ned_ms, 1e-9));
    } else {
      std::snprintf(b1, sizeof(b1), "n.a.");
      std::snprintf(b3, sizeof(b3), "-");
    }
    std::snprintf(b2, sizeof(b2), "%.3f", ned_ms);
    rows.push_back({uc.name, b1, b2, b3});
  }

  std::cout << "== Fig. 6: execution time (ms, median of " << kReps
            << ") ==\n";
  std::cout << RenderTable({"Use case", "Why-Not", "NedExplain", "speedup"},
                           rows);
  return 0;
}
