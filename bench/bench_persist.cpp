/// \file bench_persist.cpp
/// \brief Durability-layer cost: what the write-ahead journal adds to a
/// served request, and how long recovery takes as the journal grows.
///
/// Leg 1 -- Submit latency. The gated pair, measured interleaved (one
/// request per configuration per rep, so drift hits both equally): journal
/// off (no persist_dir) versus the journal alone in its default fsync-lazy
/// mode (kEveryNMs, persist_answers off). Every request uses a unique key
/// with bypass_answer_cache set, so each one executes and pays the full
/// ACCEPT + COMPLETE journal path -- nothing is served from a cache. The
/// gate: fsync-lazy journal p99 must stay within 5% of journal-off p99.
/// Three more configurations are then measured for the report, not gated:
/// lazy_store (journal + answer store, the full default persistence),
/// on_rotate, and every_record (power-loss durability per record; expected
/// to cost real fsyncs -- process death alone never needs any; see
/// docs/DURABILITY.md).
///
/// Leg 2 -- recovery time vs journal size. Populate a journal with N
/// executed requests (2N records), restart, and time Recover(): replay,
/// per-key classification, and the completed-book restore.
///
/// Emits BENCH_persist.json. `--smoke` is the CI-sized run and the exit
/// code is the gate either way.
///
/// Usage: bench_persist [--reps N] [--smoke] [--out path.json]

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "datasets/use_cases.h"
#include "persist/journal.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::Database;
using ned::FsyncPolicy;
using ned::ServiceOptions;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotRequest;
using ned::WhyNotResponse;
using ned::WhyNotService;

void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

double PercentileMs(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(std::ceil(p * static_cast<double>(values.size()))) -
          1);
  return values[idx];
}

/// One timed end-to-end request (Submit + future.get) with a unique key.
double TimedSubmitMs(WhyNotService& service, const UseCase& uc,
                     const std::string& key) {
  WhyNotRequest req;
  req.key = key;
  req.db_name = uc.db_name;
  req.sql = uc.sql;
  req.question = uc.question;
  req.bypass_answer_cache = true;  // every rep executes and journals
  const auto start = std::chrono::steady_clock::now();
  auto sub = service.Submit(std::move(req));
  NED_CHECK_MSG(sub.status.ok(), sub.status.ToString());
  WhyNotResponse resp = sub.response.get();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  NED_CHECK_MSG(resp.status.ok(), resp.status.ToString());
  return ms;
}

uint64_t JournalDirBytes(const std::string& dir) {
  uint64_t total = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  ::closedir(d);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 540;
  int lazy_interval_ms = 0;  // 0 = service default
  bool smoke = false;
  std::string out_path = "BENCH_persist.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--lazy-interval-ms" && i + 1 < argc) {
      lazy_interval_ms = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      // Smoke keeps the full rep count -- the submit leg is seconds, and
      // the gate needs the statistical power -- and shrinks the recovery
      // leg, which is where the real time goes.
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr
          << "usage: bench_persist [--reps N] [--smoke] [--out path.json]\n";
      return 2;
    }
  }

  char base_template[] = "/tmp/bench_persist.XXXXXX";
  const char* base_c = ::mkdtemp(base_template);
  NED_CHECK_MSG(base_c != nullptr, "mkdtemp failed");
  const std::string base = base_c;

  auto registry = UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }
  // Leg 1 cycles the same mixed workload as bench_service (all 19 Fig. 6
  // use cases), so its p99 is the serving mix's p99 and the journal's fixed
  // per-record cost is weighed the way production traffic would weigh it.
  // Leg 2 uses the cheapest case: it measures recovery, not execution.
  const std::vector<UseCase>& cases = registry->use_cases();
  const UseCase& uc = cases.front();

  auto make_catalog = [&registry] {
    auto catalog = std::make_shared<Catalog>();
    for (const char* name : {"crime", "imdb", "gov"}) {
      Database copy = registry->database(name);
      NED_CHECK(catalog->Register(name, std::move(copy)).ok());
    }
    return catalog;
  };

  int failures = 0;

  // ---- leg 1: Submit latency --------------------------------------------
  // Two measurement loops. The GATE loop interleaves only journal-off and
  // fsync-lazy: pairing them per rep cancels machine drift, and keeping the
  // sync-heavy configurations OUT of that loop matters on one filesystem --
  // fsync-every-record issues a synchronous fdatasync per submit, and every
  // jbd2 commit it triggers stalls whichever off/lazy sample happens to be
  // in flight (their answer-store temp+rename needs a transaction handle,
  // and starting one blocks during a running commit). The REFERENCE loop
  // then measures on_rotate and every_record against each other for the
  // report; they are not gated.
  struct Config {
    const char* name;
    std::string persist_dir;             // empty = journal off
    FsyncPolicy fsync = FsyncPolicy::kEveryNMs;
    bool persist_answers = true;
  };
  std::vector<Config> configs = {
      {"off", "", FsyncPolicy::kEveryNMs, true},
      // The gated configuration: the journal alone (persist_answers off),
      // because the gate is on what the JOURNAL adds to Submit p99. The
      // answer store's temp-file+rename runs inside the completion path and
      // is the bulk of full persistence's cost; it is measured separately
      // below as lazy_store.
      {"lazy", base + "/submit-lazy", FsyncPolicy::kEveryNMs, false},
      {"lazy_store", base + "/submit-lazystore", FsyncPolicy::kEveryNMs, true},
      {"on_rotate", base + "/submit-rotate", FsyncPolicy::kOnRotate, true},
      {"every_record", base + "/submit-every", FsyncPolicy::kEveryRecord, true},
  };
  std::vector<std::unique_ptr<WhyNotService>> services;
  for (const Config& config : configs) {
    ServiceOptions options;
    options.workers = 1;
    options.queue_capacity = 64;
    options.default_deadline_ms = 60'000;
    options.persist_dir = config.persist_dir;
    options.journal_fsync = config.fsync;
    options.persist_answers = config.persist_answers;
    if (lazy_interval_ms > 0) {
      options.journal_fsync_interval_ms = lazy_interval_ms;
    }
    services.push_back(
        std::make_unique<WhyNotService>(make_catalog(), options));
  }
  // Warm each service (first-touch of the data and code paths), then time.
  // Within a rep the paired configurations serve the SAME use case back to
  // back, so machine-wide noise epochs hit them equally.
  for (size_t c = 0; c < configs.size(); ++c) {
    for (size_t i = 0; i < cases.size(); ++i) {
      (void)TimedSubmitMs(*services[c], cases[i], ned::StrCat("warm-", c, "-", i));
    }
  }
  std::vector<std::vector<double>> samples(configs.size());
  for (int rep = 0; rep < reps; ++rep) {  // gate loop: off vs lazy only
    const UseCase& rep_case = cases[static_cast<size_t>(rep) % cases.size()];
    for (size_t c = 0; c < 2; ++c) {
      samples[c].push_back(
          TimedSubmitMs(*services[c], rep_case, ned::StrCat("r", rep, "-", c)));
    }
  }
  const int ref_reps = std::max(1, reps / 3);
  for (int rep = 0; rep < ref_reps; ++rep) {  // reference loop, report-only
    const UseCase& rep_case = cases[static_cast<size_t>(rep) % cases.size()];
    for (size_t c = 2; c < configs.size(); ++c) {
      samples[c].push_back(
          TimedSubmitMs(*services[c], rep_case, ned::StrCat("x", rep, "-", c)));
    }
  }
  std::cout << "bench_persist: Submit latency, " << cases.size()
            << "-case service mix, " << reps << " reps per gated config\n";
  std::cout << "config        p50_ms    p99_ms\n";
  std::vector<double> p50(configs.size()), p99(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    p50[c] = PercentileMs(samples[c], 0.50);
    p99[c] = PercentileMs(samples[c], 0.99);
    std::printf("%-12s %8.3f %9.3f\n", configs[c].name, p50[c], p99[c]);
    services[c]->Shutdown(/*drain=*/true);
  }
  // The gated statistic. A single p99 is an extreme order statistic -- on a
  // shared box its run-to-run spread is far wider than the 5% being tested
  // for -- so the overhead is estimated as the median over independent
  // interleaved batches of the per-batch p99 ratio (same medians-of-batches
  // idiom as the other benches). Samples stay paired: within each rep every
  // configuration served the same case back to back.
  const size_t batches = 9;
  const size_t per_batch = samples[0].size() / batches;
  std::vector<double> batch_overheads;
  for (size_t b = 0; b < batches; ++b) {
    auto batch_p99 = [&](size_t c) {
      std::vector<double> slice(
          samples[c].begin() + static_cast<long>(b * per_batch),
          samples[c].begin() + static_cast<long>((b + 1) * per_batch));
      return PercentileMs(std::move(slice), 0.99);
    };
    const double off_p99 = batch_p99(0);
    if (off_p99 > 0) batch_overheads.push_back(batch_p99(1) / off_p99 - 1.0);
  }
  std::sort(batch_overheads.begin(), batch_overheads.end());
  const double lazy_overhead =
      batch_overheads.empty() ? 0 : batch_overheads[batch_overheads.size() / 2];
  std::cout << "fsync-lazy p99 overhead vs journal-off (median of "
            << batches << " batches): " << 100.0 * lazy_overhead << "%\n";
  if (lazy_overhead >= 0.05) {
    std::cerr << "FAIL: fsync-lazy p99 overhead " << 100.0 * lazy_overhead
              << "% >= 5%\n";
    ++failures;
  }

  // ---- leg 2: recovery time vs journal size -------------------------------
  struct RecoveryPoint {
    int requests = 0;
    uint64_t journal_bytes = 0;
    uint64_t replayed = 0;
    double recover_ms = 0;
  };
  std::vector<int> sizes = smoke ? std::vector<int>{200}
                                 : std::vector<int>{200, 1000, 4000};
  std::vector<RecoveryPoint> recovery;
  for (int n : sizes) {
    const std::string dir = base + "/recover-" + std::to_string(n);
    {
      ServiceOptions options;
      options.workers = 2;
      options.queue_capacity = 64;
      options.default_deadline_ms = 60'000;
      options.persist_dir = dir;
      WhyNotService service(make_catalog(), options);
      std::vector<std::shared_future<WhyNotResponse>> futures;
      for (int i = 0; i < n; ++i) {
        WhyNotRequest req;
        req.key = ned::StrCat("rec-", i);
        req.db_name = uc.db_name;
        req.sql = uc.sql;
        req.question = uc.question;
        req.bypass_answer_cache = true;  // force 2 journal records apiece
        auto sub = service.Submit(std::move(req));
        NED_CHECK_MSG(sub.status.ok(), sub.status.ToString());
        futures.push_back(sub.response);
        // Keep the queue bounded: the point is journal growth, not overload.
        if (futures.size() >= 32) {
          futures.front().get();
          futures.erase(futures.begin());
        }
      }
      for (auto& f : futures) (void)f.get();
      service.Shutdown(/*drain=*/true);
    }
    RecoveryPoint point;
    point.requests = n;
    point.journal_bytes = JournalDirBytes(dir + "/journal");
    {
      ServiceOptions options;
      options.workers = 2;
      options.persist_dir = dir;
      WhyNotService service(make_catalog(), options);
      const auto start = std::chrono::steady_clock::now();
      const WhyNotService::RecoveryReport rec = service.Recover();
      point.recover_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
      point.replayed = rec.replayed_records;
      if (rec.replayed_records < static_cast<uint64_t>(2 * n)) {
        std::cerr << "FAIL: recovery replayed " << rec.replayed_records
                  << " records, expected >= " << 2 * n << "\n";
        ++failures;
      }
      if (rec.pending_found != 0 || rec.dropped != 0) {
        std::cerr << "FAIL: clean shutdown left pending=" << rec.pending_found
                  << " dropped=" << rec.dropped << "\n";
        ++failures;
      }
      service.Shutdown(/*drain=*/true);
    }
    recovery.push_back(point);
    std::printf("recover %5d requests: %8llu journal bytes, %6llu records, "
                "%8.2f ms\n",
                point.requests,
                static_cast<unsigned long long>(point.journal_bytes),
                static_cast<unsigned long long>(point.replayed),
                point.recover_ms);
  }

  RemoveTree(base);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"persist\",\n  \"reps\": " << reps
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"workload\": \"" << cases.size()
      << "-case service mix\",\n  \"submit\": {\n";
  for (size_t c = 0; c < configs.size(); ++c) {
    out << "    \"" << configs[c].name << "\": {\"p50_ms\": " << p50[c]
        << ", \"p99_ms\": " << p99[c] << "}"
        << (c + 1 < configs.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"lazy_p99_overhead\": " << lazy_overhead
      << ",\n  \"meets_target\": " << (lazy_overhead < 0.05 ? "true" : "false")
      << ",\n  \"recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryPoint& point = recovery[i];
    out << "    {\"requests\": " << point.requests
        << ", \"journal_bytes\": " << point.journal_bytes
        << ", \"replayed_records\": " << point.replayed
        << ", \"recover_ms\": " << point.recover_ms << "}"
        << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (failures > 0) {
    std::cerr << "bench_persist: FAIL (" << failures << " violations)\n";
    return 1;
  }
  std::cout << "bench_persist: PASS\n";
  return 0;
}
