/// \file bench_running_example.cpp
/// \brief Regenerates Tables 1 & 2 (TabQ state on the running example) and
/// times repeated NedExplain runs on it.

#include <iostream>

#include "common/timer.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/running_example.h"

int main() {
  using namespace ned;

  auto db = BuildRunningExampleDb();
  NED_CHECK(db.ok());
  auto tree = BuildRunningExampleTree(*db);
  NED_CHECK(tree.ok());

  NedExplainOptions options;
  options.keep_tabq_dump = true;
  auto engine = NedExplainEngine::Create(&*tree, &*db, options);
  NED_CHECK(engine.ok());

  WhyNotQuestion question = RunningExampleQuestionHomer();
  auto result = engine->Explain(question);
  NED_CHECK(result.ok());

  std::cout << "== Table 2: TabQ after running NedExplain on the running "
               "example ==\n";
  for (const auto& part : result->per_ctuple) {
    std::cout << part.tabq_dump;
  }
  std::cout << "Detailed answer: "
            << result->answer.DetailedToString(engine->last_input()) << "\n";

  // Timing: repeated runs (the whole pipeline re-materialises per run).
  constexpr int kReps = 200;
  Stopwatch watch;
  for (int i = 0; i < kReps; ++i) {
    auto r = engine->Explain(question);
    NED_CHECK(r.ok());
  }
  std::cout << "\nMean runtime over " << kReps
            << " runs: " << watch.ElapsedMillis() / kReps << " ms\n";
  return 0;
}
