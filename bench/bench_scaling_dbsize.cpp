/// \file bench_scaling_dbsize.cpp
/// \brief Ablation A: runtime vs database scale factor (the paper defers a
/// parameter-impact study to future work; this bench provides it).
///
/// Scales the crime database 1x..16x and measures NedExplain and the Why-Not
/// baseline on representative use cases. Expected shape: both grow roughly
/// linearly with the dominant intermediate result; the baseline grows faster
/// (its per-manipulation lineage re-derivation pays per output tuple).

#include <benchmark/benchmark.h>

#include "baseline/whynot_baseline.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"

namespace {

using namespace ned;

/// Builds (once per scale) the registry and a use case's tree.
struct ScaledCase {
  std::shared_ptr<UseCaseRegistry> registry;
  std::shared_ptr<QueryTree> tree;
  const UseCase* use_case = nullptr;
  const Database* db = nullptr;
};

ScaledCase MakeCase(const std::string& name, int scale) {
  static std::map<std::pair<std::string, int>, ScaledCase> cache;
  auto key = std::make_pair(name, scale);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  ScaledCase c;
  auto registry = UseCaseRegistry::Build(scale);
  NED_CHECK(registry.ok());
  c.registry = std::make_shared<UseCaseRegistry>(std::move(registry).value());
  auto uc = c.registry->Find(name);
  NED_CHECK(uc.ok());
  c.use_case = *uc;
  auto tree = c.registry->BuildTree(*c.use_case);
  NED_CHECK(tree.ok());
  c.tree = std::make_shared<QueryTree>(std::move(tree).value());
  c.db = &c.registry->database(c.use_case->db_name);
  cache[key] = c;
  return c;
}

void BM_NedExplain_CrimeScale(benchmark::State& state) {
  ScaledCase c = MakeCase("Crime1", static_cast<int>(state.range(0)));
  auto engine = NedExplainEngine::Create(c.tree.get(), c.db);
  NED_CHECK(engine.ok());
  for (auto _ : state) {
    auto result = engine->Explain(c.use_case->question);
    NED_CHECK(result.ok());
    benchmark::DoNotOptimize(result->answer.detailed.size());
  }
  state.SetLabel("rows=" + std::to_string(c.db->TotalRows()));
}
BENCHMARK(BM_NedExplain_CrimeScale)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WhyNotBaseline_CrimeScale(benchmark::State& state) {
  ScaledCase c = MakeCase("Crime1", static_cast<int>(state.range(0)));
  auto baseline = WhyNotBaseline::Create(c.tree.get(), c.db);
  NED_CHECK(baseline.ok());
  for (auto _ : state) {
    auto result = baseline->Explain(c.use_case->question);
    NED_CHECK(result.ok());
    benchmark::DoNotOptimize(result->answer.size());
  }
  state.SetLabel("rows=" + std::to_string(c.db->TotalRows()));
}
BENCHMARK(BM_WhyNotBaseline_CrimeScale)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_NedExplain_GovScale(benchmark::State& state) {
  ScaledCase c = MakeCase("Gov5", static_cast<int>(state.range(0)));
  auto engine = NedExplainEngine::Create(c.tree.get(), c.db);
  NED_CHECK(engine.ok());
  for (auto _ : state) {
    auto result = engine->Explain(c.use_case->question);
    NED_CHECK(result.ok());
    benchmark::DoNotOptimize(result->answer.detailed.size());
  }
  state.SetLabel("rows=" + std::to_string(c.db->TotalRows()));
}
BENCHMARK(BM_NedExplain_GovScale)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
