/// \file bench_overload.cpp
/// \brief Overload resilience: per-class goodput and admitted-latency tails
/// under 1x/2x/4x load, with the brownout ladder off vs on.
///
/// The workload is built for head-of-line pain: interactive clients submit a
/// cheap question against a small database, batch and background clients
/// submit a heavy cross-join that occupies a worker for tens of
/// milliseconds. Each load level runs the same closed-loop client mix twice
/// -- brownout disabled, then enabled -- against a small worker pool and
/// queue, and measures per class:
///
///   - goodput: OK answers (complete or honestly partial) per second,
///   - p50/p99 of admitted requests (queue wait + execution),
///   - degraded answers (the quality price brownout charges),
///   - sheds and retry exhaustions (the work overload refused).
///
/// Priority scheduling and fair-share quotas are on in both arms; the
/// comparison isolates what the degradation ladder itself buys once the
/// scheduler alone can no longer protect interactive latency. Emits
/// BENCH_overload.json for cross-PR tracking. `--smoke` is the CI-sized
/// run: shorter cells, 1x/2x only, and no expectations beyond "interactive
/// work still completes" -- single-core CI runners make real goodput claims
/// meaningless there.
///
/// Usage: bench_overload [--seconds S] [--out path.json] [--smoke]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "relational/catalog.h"
#include "service/retry.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::CTuple;
using ned::Database;
using ned::Priority;
using ned::PriorityName;
using ned::RetryOutcome;
using ned::RetryPolicy;
using ned::ServiceOptions;
using ned::Value;
using ned::WhyNotQuestion;
using ned::WhyNotRequest;
using ned::WhyNotService;

constexpr int kWorkers = 2;
constexpr size_t kQueue = 8;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Cheap database: a five-row join, answered in well under a millisecond.
Database MakeCheapDb() {
  Database db;
  NED_CHECK(db.LoadCsv("R", "id,k,v\n1,10,a\n2,10,b\n3,20,c\n4,30,d\n5,40,e\n")
                .ok());
  NED_CHECK(db.LoadCsv("S", "id,k,w\n1,10,x\n2,30,y\n3,50,z\n").ok());
  return db;
}

/// Heavy database: an n x n cross join whose full materialization occupies a
/// worker for on the order of a hundred milliseconds -- the head-of-line
/// blocker.
Database MakeHeavyDb(int n) {
  Database db;
  std::string r = "a,ra\n", s = "b,sb\n";
  for (int i = 0; i < n; ++i) {
    r += std::to_string(i) + "," + std::to_string(i % 7) + "\n";
    s += std::to_string(i) + "," + std::to_string(i % 5) + "\n";
  }
  NED_CHECK(db.LoadCsv("R", r).ok());
  NED_CHECK(db.LoadCsv("S", s).ok());
  return db;
}

WhyNotRequest CheapRequest() {
  WhyNotRequest req;
  req.db_name = "cheap";
  req.sql = "SELECT R.v FROM R, S WHERE R.k = S.k";
  CTuple tc;
  tc.Add("R.v", Value::Str("c"));
  req.question = WhyNotQuestion(tc);
  req.priority = Priority::kInteractive;
  req.deadline_ms = 250;
  return req;
}

WhyNotRequest HeavyRequest(Priority priority) {
  WhyNotRequest req;
  req.db_name = "heavy";
  req.sql = "SELECT R.a FROM R, S WHERE R.a >= 0";
  CTuple tc;
  tc.Add("R.a", Value::Int(0));  // compatible: the join must materialise
  req.question = WhyNotQuestion(tc);
  req.priority = priority;
  req.deadline_ms = priority == Priority::kBatch ? 1500 : 2000;
  return req;
}

/// One client thread's tally; merged per (load, brownout, class) cell.
struct Tally {
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t sheds = 0;
  uint64_t exhausted = 0;
  std::vector<double> latencies_ms;
};

void ClientLoop(Priority priority, int client_idx, uint64_t seed,
                WhyNotService* service,
                std::chrono::steady_clock::time_point horizon, Tally* tally) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 20;
  policy.priority_aware_backoff = true;
  uint64_t n = 0;
  while (std::chrono::steady_clock::now() < horizon) {
    WhyNotRequest req = priority == Priority::kInteractive
                            ? CheapRequest()
                            : HeavyRequest(priority);
    req.client_id = ned::StrCat(PriorityName(priority), client_idx);
    req.key = ned::StrCat(req.client_id, "-r", n++);
    req.seed = ned::MixSeed(seed, ned::HashSeed(req.key));
    RetryOutcome outcome = ned::SubmitWithRetry(*service, req, policy);
    ++tally->attempted;
    tally->sheds += static_cast<uint64_t>(outcome.sheds);
    if (outcome.exhausted) {
      ++tally->exhausted;  // overload refused this work: not goodput
      continue;
    }
    if (!outcome.response.status.ok()) continue;  // queue expiry etc.
    ++tally->ok;
    if (outcome.response.answer.degradation_level > 0) ++tally->degraded;
    tally->latencies_ms.push_back(outcome.response.queue_ms +
                                  outcome.response.exec_ms);
  }
}

struct CellResult {
  int load = 0;
  bool brownout = false;
  Priority priority = Priority::kInteractive;
  Tally tally;
  double goodput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  std::string out_path = "BENCH_overload.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::stod(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
      seconds = 0.4;
    } else {
      std::cerr
          << "usage: bench_overload [--seconds S] [--out path.json] [--smoke]\n";
      return 2;
    }
  }

  auto catalog = std::make_shared<Catalog>();
  NED_CHECK(catalog->Register("cheap", MakeCheapDb()).ok());
  NED_CHECK(catalog->Register("heavy", MakeHeavyDb(300)).ok());

  // Load multiplier m = clients per class; capacity is fixed at kWorkers
  // workers and a kQueue-deep queue, so 1x is contended and 4x is brutal.
  const std::vector<int> loads = smoke ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4};
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "bench_overload: " << kWorkers << " workers, queue " << kQueue
            << ", " << seconds << "s per cell, " << cores << " cores"
            << (smoke ? " (smoke)" : "") << "\n";
  std::cout << "load  brownout  class        goodput/s  p50_ms   p99_ms  "
               "degraded  sheds  lost\n";

  std::vector<CellResult> results;
  for (int load : loads) {
    for (bool brownout : {false, true}) {
      ServiceOptions options;
      options.workers = kWorkers;
      options.queue_capacity = kQueue;
      options.per_client_limit = 2;
      options.default_deadline_ms = 2000;
      // Caches off: repeat questions would otherwise be served at Submit
      // and the cell would measure the cache, not overload behaviour.
      options.answer_cache_bytes = 0;
      options.subtree_cache_bytes = 0;
      options.brownout.enabled = brownout;
      options.brownout.p99_target_ms = 100;
      WhyNotService service(catalog, options);

      const auto horizon =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
      const Priority classes[] = {Priority::kInteractive, Priority::kBatch,
                                  Priority::kBackground};
      std::vector<std::vector<Tally>> tallies(3);
      std::vector<std::thread> threads;
      for (size_t c = 0; c < 3; ++c) {
        tallies[c].resize(static_cast<size_t>(load));
        for (int i = 0; i < load; ++i) {
          threads.emplace_back(ClientLoop, classes[c], i,
                               static_cast<uint64_t>(load * 16 + i), &service,
                               horizon, &tallies[c][static_cast<size_t>(i)]);
        }
      }
      for (auto& t : threads) t.join();
      service.Shutdown();

      for (size_t c = 0; c < 3; ++c) {
        CellResult cell;
        cell.load = load;
        cell.brownout = brownout;
        cell.priority = classes[c];
        std::vector<double> latencies;
        for (const Tally& t : tallies[c]) {
          cell.tally.attempted += t.attempted;
          cell.tally.ok += t.ok;
          cell.tally.degraded += t.degraded;
          cell.tally.sheds += t.sheds;
          cell.tally.exhausted += t.exhausted;
          latencies.insert(latencies.end(), t.latencies_ms.begin(),
                           t.latencies_ms.end());
        }
        cell.goodput_rps = static_cast<double>(cell.tally.ok) / seconds;
        cell.p50_ms = Percentile(latencies, 0.50);
        cell.p99_ms = Percentile(latencies, 0.99);
        results.push_back(cell);
        std::printf("%4dx  %7s  %-11s  %9.1f  %6.2f  %7.2f  %8llu  %5llu  %4llu\n",
                    cell.load, brownout ? "on" : "off",
                    PriorityName(cell.priority), cell.goodput_rps, cell.p50_ms,
                    cell.p99_ms,
                    static_cast<unsigned long long>(cell.tally.degraded),
                    static_cast<unsigned long long>(cell.tally.sheds),
                    static_cast<unsigned long long>(cell.tally.exhausted));
      }
    }
  }

  // The headline: what the ladder buys interactive work at the top load.
  double interactive_off = 0, interactive_on = 0;
  for (const CellResult& c : results) {
    if (c.load == loads.back() && c.priority == Priority::kInteractive) {
      (c.brownout ? interactive_on : interactive_off) = c.goodput_rps;
    }
  }
  if (interactive_off > 0) {
    std::printf("interactive goodput at %dx load: %.1f/s off -> %.1f/s on "
                "(%.2fx)\n",
                loads.back(), interactive_off, interactive_on,
                interactive_on / interactive_off);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"overload\",\n  \"workers\": " << kWorkers
      << ",\n  \"queue\": " << kQueue << ",\n  \"seconds\": " << seconds
      << ",\n  \"cores\": " << cores
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& c = results[i];
    out << "    {\"load\": " << c.load << ", \"brownout\": "
        << (c.brownout ? "true" : "false") << ", \"class\": \""
        << PriorityName(c.priority) << "\", \"attempted\": "
        << c.tally.attempted << ", \"ok\": " << c.tally.ok
        << ", \"goodput_rps\": " << c.goodput_rps
        << ", \"p50_ms\": " << c.p50_ms << ", \"p99_ms\": " << c.p99_ms
        << ", \"degraded\": " << c.tally.degraded
        << ", \"sheds\": " << c.tally.sheds
        << ", \"exhausted\": " << c.tally.exhausted << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  // Structural sanity only: interactive work must complete in every cell.
  // Goodput *claims* stay out of CI -- single-core runners invert them.
  for (const CellResult& c : results) {
    if (c.priority == Priority::kInteractive && c.tally.ok == 0) {
      std::cerr << "FAIL: no interactive goodput at " << c.load << "x load "
                << "(brownout " << (c.brownout ? "on" : "off") << ")\n";
      return 1;
    }
  }
  return 0;
}
