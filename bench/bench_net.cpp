/// \file bench_net.cpp
/// \brief Serving-edge overhead: wire latency vs in-process Submit.
///
/// Runs the 19 paper use cases three ways against identical services --
/// in-process Submit (the floor), HTTP over a loopback keep-alive
/// connection, and HTTP with a fresh connection per request (the TCP +
/// parse overhead worst case) -- and reports p50/p99 per mode. Emits
/// BENCH_net.json and enforces the regression gate the CI job checks:
/// keep-alive wire p50 must stay under 2x the in-process p50, i.e. the
/// frontend may at most double the latency of the engine it fronts.
///
/// Usage: bench_net [--rounds N] [--out path.json]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "datasets/use_cases.h"
#include "net/http.h"
#include "net/server.h"
#include "net/wire.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::ServiceOptions;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotRequest;
using ned::WhyNotService;
using ned::net::HttpResponse;
using ned::net::HttpServer;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Minimal blocking client (same shape net_test uses).
class Client {
 public:
  explicit Client(int port) : port_(port) {}
  ~Client() { Close(); }

  bool Connect() {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return false;
    }
    buffer_.clear();
    return true;
  }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool RoundTrip(std::string_view request, HttpResponse* response) {
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char chunk[16 * 1024];
    while (true) {
      if (!buffer_.empty()) {
        auto parsed = ned::net::ParseHttpResponse(buffer_, response);
        if (!parsed.ok()) return false;
        if (*parsed > 0) {
          buffer_.erase(0, *parsed);
          return true;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int port_;
  int fd_ = -1;
  std::string buffer_;
};

std::string RenderPost(const WhyNotRequest& request) {
  const std::string body = ned::net::RenderWhyNotRequestJson(request);
  return ned::StrCat(
      "POST /v1/whynot HTTP/1.1\r\nHost: b\r\nContent-Length: ", body.size(),
      "\r\n\r\n", body);
}

WhyNotRequest CaseRequest(const UseCase& uc, const std::string& key) {
  WhyNotRequest request;
  request.key = key;
  request.db_name = uc.db_name;
  request.sql = uc.sql;
  request.question = uc.question;
  request.deadline_ms = 30'000;
  // Every request must actually execute: the answer cache would otherwise
  // turn rounds 2..N into pure cache reads and flatter the wire overhead.
  request.bypass_answer_cache = true;
  return request;
}

struct Mode {
  std::string name;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t requests = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int rounds = 20;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_net [--rounds N] [--out path.json]\n";
      return 2;
    }
  }

  auto registry = UseCaseRegistry::Build(1);
  if (!registry.ok()) {
    std::cerr << "bench_net: " << registry.status().ToString() << "\n";
    return 1;
  }
  auto make_catalog = [&]() {
    auto catalog = std::make_shared<Catalog>();
    for (const char* name : {"crime", "imdb", "gov"}) {
      ned::Database copy = registry->database(name);
      if (!catalog->Register(name, std::move(copy)).ok()) std::abort();
    }
    return catalog;
  };
  ServiceOptions options;
  options.workers = 2;
  WhyNotService service(make_catalog(), options);
  HttpServer server(&service);
  if (!server.Start().ok()) {
    std::cerr << "bench_net: server failed to start\n";
    return 1;
  }

  std::vector<Mode> modes;
  uint64_t seq = 0;

  // Mode 1: in-process Submit -- the floor the wire is measured against.
  {
    Mode mode{"in_process"};
    std::vector<double> lat;
    for (int r = 0; r < rounds; ++r) {
      for (const UseCase& uc : registry->use_cases()) {
        auto request = CaseRequest(uc, ned::StrCat("bp-", seq++));
        const auto start = std::chrono::steady_clock::now();
        auto sub = service.Submit(std::move(request));
        if (!sub.status.ok()) continue;
        sub.response.wait();
        lat.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      }
    }
    mode.requests = lat.size();
    mode.p50_ms = Percentile(lat, 0.50);
    mode.p99_ms = Percentile(lat, 0.99);
    modes.push_back(mode);
  }

  // Mode 2: the wire over one keep-alive connection.
  {
    Mode mode{"wire_keepalive"};
    std::vector<double> lat;
    Client client(server.port());
    if (!client.Connect()) {
      std::cerr << "bench_net: connect failed\n";
      return 1;
    }
    for (int r = 0; r < rounds; ++r) {
      for (const UseCase& uc : registry->use_cases()) {
        const std::string post =
            RenderPost(CaseRequest(uc, ned::StrCat("bw-", seq++)));
        HttpResponse response;
        const auto start = std::chrono::steady_clock::now();
        if (!client.RoundTrip(post, &response) || response.status != 200) {
          std::cerr << "bench_net: wire request failed (" << response.status
                    << ")\n";
          return 1;
        }
        lat.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      }
    }
    mode.requests = lat.size();
    mode.p50_ms = Percentile(lat, 0.50);
    mode.p99_ms = Percentile(lat, 0.99);
    modes.push_back(mode);
  }

  // Mode 3: a fresh connection per request (connect cost included).
  {
    Mode mode{"wire_fresh_conn"};
    std::vector<double> lat;
    for (int r = 0; r < rounds; ++r) {
      for (const UseCase& uc : registry->use_cases()) {
        const std::string post =
            RenderPost(CaseRequest(uc, ned::StrCat("bf-", seq++)));
        Client client(server.port());
        HttpResponse response;
        const auto start = std::chrono::steady_clock::now();
        if (!client.Connect() || !client.RoundTrip(post, &response) ||
            response.status != 200) {
          std::cerr << "bench_net: fresh-conn request failed\n";
          return 1;
        }
        lat.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      }
    }
    mode.requests = lat.size();
    mode.p50_ms = Percentile(lat, 0.50);
    mode.p99_ms = Percentile(lat, 0.99);
    modes.push_back(mode);
  }

  server.Stop();
  service.Shutdown();

  std::cout << "mode              requests   p50_ms   p99_ms\n";
  for (const Mode& mode : modes) {
    std::printf("%-17s %8zu %8.3f %8.3f\n", mode.name.c_str(), mode.requests,
                mode.p50_ms, mode.p99_ms);
  }
  const double in_process_p50 = modes[0].p50_ms;
  const double wire_p50 = modes[1].p50_ms;
  const double overhead = in_process_p50 > 0 ? wire_p50 / in_process_p50 : 0;
  std::printf("wire/in-process p50 ratio: %.2fx (gate: < 2.00x)\n", overhead);

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"net\",\n  \"modes\": [\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    out << "    {\"name\": \"" << modes[i].name
        << "\", \"requests\": " << modes[i].requests
        << ", \"p50_ms\": " << modes[i].p50_ms
        << ", \"p99_ms\": " << modes[i].p99_ms << "}"
        << (i + 1 < modes.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"wire_over_in_process_p50\": " << overhead
      << ",\n  \"gate_wire_p50_under_2x\": " << (overhead < 2.0 ? "true" : "false")
      << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (overhead >= 2.0) {
    std::cerr << "bench_net: FAIL -- wire p50 " << wire_p50
              << "ms is >= 2x in-process p50 " << in_process_p50 << "ms\n";
    return 1;
  }
  return 0;
}
