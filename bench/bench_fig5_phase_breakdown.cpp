/// \file bench_fig5_phase_breakdown.cpp
/// \brief Regenerates paper Fig. 5: per-use-case distribution of NedExplain's
/// runtime over its four phases (Initialization, CompatibleFinder,
/// SuccessorsFinder, Bottom-Up traversal).
///
/// Expected shape (paper Sec. 4.3): SPJ use cases are dominated by
/// Initialization, with SuccessorsFinder second; SPJA use cases shift weight
/// to SuccessorsFinder (the extra aggregation checks of Alg. 3).
///
/// Cross-check: after the timer-derived table, each use case runs once more
/// with an obs::Trace attached and the four phase totals are re-derived from
/// the span tree (Trace::PhaseNanos). PhasedSpanScope charges the timer and
/// the span from one pair of clock readings, so the two derivations must be
/// *equal*, not merely close -- any divergence exits non-zero. This is the
/// executable form of the docs/OBSERVABILITY.md "Fig. 5 from spans" recipe.

#include <iostream>

#include "common/strings.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "obs/trace.h"

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();

  constexpr int kRepetitions = 7;
  static const char* kPhases[] = {phase::kInitialization,
                                  phase::kCompatibleFinder,
                                  phase::kSuccessorsFinder, phase::kBottomUp};

  std::vector<std::vector<std::string>> rows;
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    if (!tree_result.ok()) continue;
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);
    auto engine = NedExplainEngine::Create(&tree, &db);
    if (!engine.ok()) continue;

    // Accumulate phases over repetitions (fresh input per Explain call).
    PhaseTimer total;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      auto result = engine->Explain(uc.question);
      if (!result.ok()) {
        std::cerr << uc.name << ": " << result.status().ToString() << "\n";
        break;
      }
      for (const auto& [name, ns] : result->phases.phases()) {
        total.Add(name, ns);
      }
    }
    int64_t sum = total.TotalNanos();
    std::vector<std::string> row = {uc.name};
    std::string bar;
    static const char kGlyph[] = {'#', '+', '=', '-'};
    for (size_t p = 0; p < 4; ++p) {
      double pct = sum > 0 ? 100.0 * static_cast<double>(total.Nanos(kPhases[p])) /
                                 static_cast<double>(sum)
                           : 0.0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%5.1f%%", pct);
      row.push_back(buf);
      bar.append(static_cast<size_t>(pct / 2.5 + 0.5), kGlyph[p]);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(sum) / 1e6 / kRepetitions);
    row.push_back(buf);
    row.push_back(bar);
    rows.push_back(std::move(row));
  }

  std::cout << "== Fig. 5: NedExplain %time distribution per phase ==\n";
  std::cout << RenderTable({"Use case", "Init", "CompatFinder", "SuccFinder",
                            "Bottom-Up", "total ms", "bar (#=Init +=Compat ==Succ -=BottomUp)"},
                           rows);

  // ---- trace-derived cross-check -------------------------------------------
  // One traced run per use case: the PhaseTimer totals in result->phases and
  // the span-derived totals from Trace::PhaseNanos come from the same clock
  // readings (PhasedSpanScope), so they must agree exactly.
  int mismatches = 0;
  int checked = 0;
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    if (!tree_result.ok()) continue;
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);
    auto engine = NedExplainEngine::Create(&tree, &db);
    if (!engine.ok()) continue;

    obs::Trace trace;
    ExecContext ctx;
    ctx.set_trace(&trace);
    auto result = engine->Explain(uc.question, &ctx);
    if (!result.ok()) {
      std::cerr << uc.name << " (traced): " << result.status().ToString()
                << "\n";
      ++mismatches;
      continue;
    }
    ++checked;
    for (const char* phase : kPhases) {
      const int64_t timer_ns = result->phases.Nanos(phase);
      const int64_t span_ns = trace.PhaseNanos(phase);
      if (timer_ns != span_ns) {
        std::cerr << "FAIL " << uc.name << ": phase " << phase
                  << " timer-derived " << timer_ns << " ns != span-derived "
                  << span_ns << " ns\n";
        ++mismatches;
      }
    }
  }
  if (mismatches > 0) {
    std::cerr << "bench_fig5: trace-derived phase totals diverged from the "
                 "bespoke timers ("
              << mismatches << " mismatches)\n";
    return 1;
  }
  std::cout << "trace cross-check: span-derived phase totals equal "
               "timer-derived totals on all "
            << checked << " use cases\n";
  return 0;
}
