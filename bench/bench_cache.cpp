/// \file bench_cache.cpp
/// \brief Caching performance: cold overhead and warm speedup on the Fig. 6
/// workloads (the paper's 19 use cases).
///
/// Three engine configurations per use case, measured interleaved so drift
/// hits them equally:
///   off  -- no caches (the pre-PR baseline),
///   cold -- a fresh SubtreeCache per run: pays key derivation + inserts and
///           never hits (worst case; the <3% overhead budget),
///   warm -- a primed, shared SubtreeCache: every non-leaf subtree replays
///           (the repeated-question fast path at the engine layer).
/// Plus the service-level repeated-question path:
///   answer -- Submit-time replay from the content-addressed AnswerCache
///             (no admission, no execution), end-to-end vs. an executing
///             submit with the answer cache bypassed.
///
/// Emits BENCH_cache.json with per-case medians and aggregate medians; the
/// acceptance targets are >= 5x warm median speedup on repeated questions
/// and < 3% cold overhead. `--smoke` is the CI-sized run (also the exit-code
/// gate: it fails when a warm run recomputes anything).
///
/// Usage: bench_cache [--reps N] [--smoke] [--out path.json]

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cache/subtree_cache.h"
#include "common/strings.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "datasets/use_cases.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::AnswerSummary;
using ned::Catalog;
using ned::Database;
using ned::NedExplainEngine;
using ned::NedExplainOptions;
using ned::NedExplainResult;
using ned::ServiceOptions;
using ned::SubtreeCache;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotRequest;
using ned::WhyNotResponse;
using ned::WhyNotService;

double MedianMs(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct CaseResult {
  std::string name;
  double off_ms = 0;     ///< no caches
  double cold_ms = 0;    ///< fresh subtree cache: all misses + inserts
  double warm_ms = 0;    ///< primed subtree cache: all hits
  double answer_ms = 0;  ///< answer-cache replay at Submit (end to end)
  uint64_t warm_hits = 0;
  uint64_t warm_misses = 0;  ///< must be 0, asserted

  double warm_speedup() const { return warm_ms > 0 ? off_ms / warm_ms : 0; }
  double answer_speedup() const {
    return answer_ms > 0 ? off_ms / answer_ms : 0;
  }
  double cold_overhead() const {
    return off_ms > 0 ? cold_ms / off_ms - 1.0 : 0;
  }
};

double TimeExplainMs(const ned::QueryTree& tree, const Database& db,
                     const UseCase& uc, const NedExplainOptions& options,
                     NedExplainResult* out_result = nullptr) {
  auto engine = NedExplainEngine::Create(&tree, &db, options);
  NED_CHECK_MSG(engine.ok(), engine.status().ToString());
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Explain(uc.question);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  NED_CHECK_MSG(result->completeness.complete, "benchmark run was partial");
  if (out_result != nullptr) *out_result = std::move(*result);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
      reps = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_cache [--reps N] [--smoke] [--out path.json]\n";
      return 2;
    }
  }

  auto registry = UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }
  const std::vector<UseCase>& cases = registry->use_cases();

  // One service for the answer-path measurements; single worker so exec_ms
  // comparisons are scheduling-free.
  auto catalog = std::make_shared<Catalog>();
  for (const char* name : {"crime", "imdb", "gov"}) {
    Database copy = registry->database(name);
    NED_CHECK(catalog->Register(name, std::move(copy)).ok());
  }
  ServiceOptions service_options;
  service_options.workers = 1;
  service_options.queue_capacity = 64;
  service_options.default_deadline_ms = 60'000;
  WhyNotService service(catalog, service_options);

  std::cout << "bench_cache: " << cases.size() << " Fig. 6 use cases, "
            << reps << " reps (median)\n";
  std::cout << "case      off_ms   cold_ms  warm_ms  answr_ms  warm_x  "
               "answr_x  cold_ovh\n";

  int failures = 0;
  std::vector<CaseResult> results;
  for (const UseCase& uc : cases) {
    auto tree = registry->BuildTree(uc);
    NED_CHECK_MSG(tree.ok(), tree.status().ToString());
    const Database& db = registry->database(uc.db_name);

    // The true cache-free baseline: a disabled (zero-budget) cache opts out
    // even when NED_FORCE_SUBTREE_CACHE puts a process-global cache behind
    // engines created without one.
    SubtreeCache off_cache(0);
    NedExplainOptions off_options;
    off_options.subtree_cache = &off_cache;

    // Prime the warm cache (and first-touch the data) before timing.
    SubtreeCache warm_cache(256u << 20);
    NedExplainOptions warm_options;
    warm_options.subtree_cache = &warm_cache;
    (void)TimeExplainMs(*tree, db, uc, warm_options);

    CaseResult r;
    r.name = uc.name;
    std::vector<double> off, cold, warm, answer;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleaved: off, cold, warm back to back inside each rep.
      off.push_back(TimeExplainMs(*tree, db, uc, off_options));

      SubtreeCache cold_cache(256u << 20);
      NedExplainOptions cold_options;
      cold_options.subtree_cache = &cold_cache;
      cold.push_back(TimeExplainMs(*tree, db, uc, cold_options));

      NedExplainResult warm_result;
      warm.push_back(TimeExplainMs(*tree, db, uc, warm_options, &warm_result));
      r.warm_hits += warm_result.subtree_cache_hits;
      r.warm_misses += warm_result.subtree_cache_misses;
    }

    // Answer path: prime once (executes + inserts), then repeated asks with
    // fresh keys replay at Submit. Timed end to end (Submit + future.get).
    auto ask = [&service, &uc](const std::string& key, bool bypass,
                               double* out_ms) {
      WhyNotRequest req;
      req.key = key;
      req.db_name = uc.db_name;
      req.sql = uc.sql;
      req.question = uc.question;
      req.bypass_answer_cache = bypass;
      const auto start = std::chrono::steady_clock::now();
      auto sub = service.Submit(std::move(req));
      NED_CHECK_MSG(sub.status.ok(), sub.status.ToString());
      WhyNotResponse resp = sub.response.get();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      NED_CHECK_MSG(resp.status.ok(), resp.status.ToString());
      if (out_ms != nullptr) *out_ms = ms;
      return resp;
    };
    (void)ask(ned::StrCat(uc.name, "-prime"), /*bypass=*/false, nullptr);
    for (int rep = 0; rep < reps; ++rep) {
      double ms = 0;
      WhyNotResponse resp =
          ask(ned::StrCat(uc.name, "-hit-", rep), /*bypass=*/false, &ms);
      if (!resp.served_from_answer_cache) {
        std::cerr << "FAIL " << uc.name << ": repeated ask " << rep
                  << " was not served from the answer cache\n";
        ++failures;
      }
      answer.push_back(ms);
    }

    r.off_ms = MedianMs(off);
    r.cold_ms = MedianMs(cold);
    r.warm_ms = MedianMs(warm);
    r.answer_ms = MedianMs(answer);
    if (r.warm_misses != 0) {
      std::cerr << "FAIL " << uc.name << ": warm runs recomputed "
                << r.warm_misses << " subtrees\n";
      ++failures;
    }
    results.push_back(r);
    std::printf("%-8s %8.3f %9.3f %8.3f %9.4f %7.1f %8.1f %8.1f%%\n",
                r.name.c_str(), r.off_ms, r.cold_ms, r.warm_ms, r.answer_ms,
                r.warm_speedup(), r.answer_speedup(),
                100.0 * r.cold_overhead());
  }

  // Aggregates: medians across cases (robust to the one slow aggregate case
  // dominating a mean).
  std::vector<double> warm_speedups, answer_speedups, cold_overheads;
  for (const CaseResult& r : results) {
    warm_speedups.push_back(r.warm_speedup());
    answer_speedups.push_back(r.answer_speedup());
    cold_overheads.push_back(r.cold_overhead());
  }
  const double med_warm = MedianMs(warm_speedups);
  const double med_answer = MedianMs(answer_speedups);
  const double med_overhead = MedianMs(cold_overheads);
  std::cout << "aggregate medians: warm speedup " << med_warm
            << "x, answer-path speedup " << med_answer
            << "x, cold overhead " << 100.0 * med_overhead << "%\n";

  // Acceptance gates (the repeated-question speedup target is the
  // answer-path replay; the subtree-warm speedup is reported alongside).
  if (med_answer < 5.0) {
    std::cerr << "FAIL: answer-path warm speedup " << med_answer << "x < 5x\n";
    ++failures;
  }
  if (med_overhead >= 0.03) {
    std::cerr << "FAIL: cold overhead " << 100.0 * med_overhead << "% >= 3%\n";
    ++failures;
  }

  service.Shutdown();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  // "repeated_question_speedup" is the headline target (>= 5x): a repeated
  // question is served by the answer cache at Submit. The subtree-warm
  // number is the engine-layer re-execution speedup, reported alongside.
  out << "{\n  \"benchmark\": \"cache\",\n  \"reps\": " << reps
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"aggregate\": {\"repeated_question_speedup\": " << med_answer
      << ", \"warm_subtree_speedup\": " << med_warm
      << ", \"cold_overhead\": " << med_overhead
      << ", \"meets_targets\": "
      << (med_answer >= 5.0 && med_overhead < 0.03 ? "true" : "false")
      << "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out << "    {\"case\": \"" << r.name << "\", \"off_ms\": " << r.off_ms
        << ", \"cold_ms\": " << r.cold_ms << ", \"warm_ms\": " << r.warm_ms
        << ", \"answer_ms\": " << r.answer_ms
        << ", \"warm_speedup\": " << r.warm_speedup()
        << ", \"answer_speedup\": " << r.answer_speedup()
        << ", \"cold_overhead\": " << r.cold_overhead()
        << ", \"warm_hits\": " << r.warm_hits
        << ", \"warm_misses\": " << r.warm_misses << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (failures > 0) {
    std::cerr << "bench_cache: FAIL (" << failures << " violations)\n";
    return 1;
  }
  std::cout << "bench_cache: PASS\n";
  return 0;
}
