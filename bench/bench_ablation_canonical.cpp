/// \file bench_ablation_canonical.cpp
/// \brief Ablation C: the two canonicalization rationales of Sec. 3.1 (2b).
///
/// 1. *Selection placement*: with selections pushed to the visibility
///    frontier, NedExplain blames selections (cheap for a developer to
///    inspect); with naive top placement, the same question blames joins and
///    the traversal evaluates larger intermediate results.
/// 2. *Early termination* (Alg. 2): on/off runtime comparison.

#include <iostream>

#include "baseline/whynot_baseline.h"
#include "canonical/canonicalizer.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();
  constexpr int kReps = 5;

  auto median_ms = [&](NedExplainEngine* engine, const WhyNotQuestion& q) {
    std::vector<double> times;
    for (int i = 0; i < kReps; ++i) {
      Stopwatch watch;
      auto r = engine->Explain(q);
      NED_CHECK(r.ok());
      times.push_back(watch.ElapsedMillis());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };

  std::cout << "== Ablation: selection placement (frontier vs naive top) ==\n";
  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"Crime4", "Crime5", "Gov1", "Gov3", "Imdb1"}) {
    auto uc = registry.Find(name);
    NED_CHECK(uc.ok());
    const Database& db = registry.database((*uc)->db_name);

    CanonicalizeOptions frontier_opts, naive_opts;
    naive_opts.place_selections_at_frontier = false;

    for (bool frontier : {true, false}) {
      auto tree_result = Canonicalize((*uc)->spec, db,
                                      frontier ? frontier_opts : naive_opts);
      NED_CHECK(tree_result.ok());
      QueryTree tree = std::move(tree_result).value();
      auto engine = NedExplainEngine::Create(&tree, &db);
      NED_CHECK(engine.ok());
      auto result = engine->Explain((*uc)->question);
      NED_CHECK(result.ok());
      // Classify the blamed operators.
      int selections = 0, joins = 0, other = 0;
      for (const OperatorNode* node : result->answer.condensed) {
        if (node->kind == OpKind::kSelect) ++selections;
        else if (node->kind == OpKind::kJoin) ++joins;
        else ++other;
      }
      double ms = median_ms(&*engine, (*uc)->question);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      rows.push_back({name, frontier ? "frontier" : "naive-top",
                      std::to_string(selections), std::to_string(joins),
                      std::to_string(other), buf});
    }
  }
  std::cout << RenderTable({"Use case", "placement", "blamed sigma",
                            "blamed join", "other", "ms"},
                           rows);

  std::cout << "\n== Ablation: early termination (Alg. 2) on/off ==\n";
  rows.clear();
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    NED_CHECK(tree_result.ok());
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);

    double ms_on = 0, ms_off = 0;
    for (bool on : {true, false}) {
      NedExplainOptions options;
      options.enable_early_termination = on;
      auto engine = NedExplainEngine::Create(&tree, &db, options);
      NED_CHECK(engine.ok());
      (on ? ms_on : ms_off) = median_ms(&*engine, uc.question);
    }
    char b1[32], b2[32], b3[32];
    std::snprintf(b1, sizeof(b1), "%.3f", ms_on);
    std::snprintf(b2, sizeof(b2), "%.3f", ms_off);
    std::snprintf(b3, sizeof(b3), "%.2fx", ms_off / std::max(ms_on, 1e-9));
    rows.push_back({uc.name, b1, b2, b3});
  }
  std::cout << RenderTable({"Use case", "with Alg.2 (ms)", "without (ms)",
                            "saving"},
                           rows);

  // ---- [2]'s two traversals: bottom-up vs top-down --------------------------
  // The paper notes the variants return the same answers but differ in
  // efficiency depending on query and question: top-down wins when the
  // answer is "not missing" (it prunes at the root), bottom-up when the
  // blocking manipulation is deep.
  std::cout << "\n== Baseline ablation: bottom-up vs top-down traversal ==\n";
  rows.clear();
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    NED_CHECK(tree_result.ok());
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);
    auto probe = WhyNotBaseline::Create(&tree, &db);
    NED_CHECK(probe.ok());
    {
      auto r = probe->Explain(uc.question);
      if (!r.ok() || !r->supported) continue;
    }
    double ms[2] = {0, 0};
    std::string answers[2];
    int i = 0;
    for (BaselineTraversal traversal :
         {BaselineTraversal::kBottomUp, BaselineTraversal::kTopDown}) {
      auto baseline = WhyNotBaseline::Create(&tree, &db, traversal);
      NED_CHECK(baseline.ok());
      std::vector<double> times;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch watch;
        auto r = baseline->Explain(uc.question);
        NED_CHECK(r.ok());
        answers[i] = r->AnswerToString();
        times.push_back(watch.ElapsedMillis());
      }
      std::sort(times.begin(), times.end());
      ms[i++] = times[times.size() / 2];
    }
    NED_CHECK_MSG(answers[0] == answers[1], "traversals must agree");
    char b1[32], b2[32];
    std::snprintf(b1, sizeof(b1), "%.3f", ms[0]);
    std::snprintf(b2, sizeof(b2), "%.3f", ms[1]);
    rows.push_back({uc.name, b1, b2, answers[0]});
  }
  std::cout << RenderTable({"Use case", "bottom-up (ms)", "top-down (ms)",
                            "answer (identical)"},
                           rows);
  return 0;
}
