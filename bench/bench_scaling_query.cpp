/// \file bench_scaling_query.cpp
/// \brief Ablation B: runtime vs query depth (join-chain length) and vs the
/// size of the direct compatible set |Dir_tc|.
///
/// Synthetic chain schema R0(k0,k1), R1(k1,k2), ..., R_{d}(k_d, k_{d+1}, v):
/// the query joins the whole chain and the question asks for a value of v
/// that a selection removed. Depth drives the number of subqueries |Q| (the
/// complexity bound O(|Q|(L+Out)) of Sec. 3.2); |Dir| drives the number of
/// traced compatibles.

#include <benchmark/benchmark.h>

#include "canonical/canonicalizer.h"
#include "core/nedexplain.h"

namespace {

using namespace ned;

struct ChainWorkload {
  std::shared_ptr<Database> db;
  std::shared_ptr<QueryTree> tree;
  WhyNotQuestion question;
};

/// Chain of `depth` relations with `rows` rows each; `dir_rows` of the last
/// relation match the why-not value.
ChainWorkload MakeChain(int depth, int rows, int dir_rows) {
  static std::map<std::tuple<int, int, int>, ChainWorkload> cache;
  auto key = std::make_tuple(depth, rows, dir_rows);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  ChainWorkload w;
  w.db = std::make_shared<Database>();
  QueryBlock block;
  for (int i = 0; i < depth; ++i) {
    std::string name = "R" + std::to_string(i);
    Schema schema({{name, "k" + std::to_string(i)},
                   {name, "k" + std::to_string(i + 1)},
                   {name, "v"}});
    Relation rel(name, schema);
    for (int r = 0; r < rows; ++r) {
      int64_t tagged = (i == depth - 1 && r < dir_rows) ? 1 : 0;
      rel.AddRow({Value::Int(r), Value::Int(r), Value::Int(tagged)});
    }
    NED_CHECK(w.db->AddRelation(std::move(rel)).ok());
    block.tables.push_back({name, name});
    if (i > 0) {
      std::string prev = "R" + std::to_string(i - 1);
      std::string join_attr = "k" + std::to_string(i);
      block.joins.push_back({Attribute(prev, join_attr),
                             Attribute(name, join_attr), join_attr + "_j"});
    }
  }
  // The selection removes exactly the tagged rows: the why-not question asks
  // for them, so the selection is the picky subquery.
  std::string last = "R" + std::to_string(depth - 1);
  block.selections.push_back(Eq(Col(last, "v"), Lit(static_cast<int64_t>(0))));
  block.projection = {Attribute(last, "v")};
  auto tree = Canonicalize(QuerySpec{{block}, {}, {}}, *w.db);
  NED_CHECK(tree.ok());
  w.tree = std::make_shared<QueryTree>(std::move(tree).value());

  CTuple tc;
  tc.Add(last + ".v", Value::Int(1));
  w.question = WhyNotQuestion(std::move(tc));
  cache[key] = w;
  return w;
}

void BM_NedExplain_QueryDepth(benchmark::State& state) {
  ChainWorkload w = MakeChain(static_cast<int>(state.range(0)), 2000, 64);
  auto engine = NedExplainEngine::Create(w.tree.get(), w.db.get());
  NED_CHECK(engine.ok());
  for (auto _ : state) {
    auto result = engine->Explain(w.question);
    NED_CHECK(result.ok());
    benchmark::DoNotOptimize(result->answer.condensed.size());
  }
  state.SetLabel("subqueries=" + std::to_string(w.tree->size()));
}
BENCHMARK(BM_NedExplain_QueryDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_NedExplain_DirSize(benchmark::State& state) {
  ChainWorkload w = MakeChain(4, 4000, static_cast<int>(state.range(0)));
  auto engine = NedExplainEngine::Create(w.tree.get(), w.db.get());
  NED_CHECK(engine.ok());
  for (auto _ : state) {
    auto result = engine->Explain(w.question);
    NED_CHECK(result.ok());
    benchmark::DoNotOptimize(result->dir_total);
  }
}
BENCHMARK(BM_NedExplain_DirSize)->Arg(1)->Arg(16)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
