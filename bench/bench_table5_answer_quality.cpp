/// \file bench_table5_answer_quality.cpp
/// \brief Regenerates paper Table 5: Why-Not vs NedExplain answers per use
/// case (plus Tables 3 and 4, the workload definition).
///
/// For every use case of Table 4, runs both the Why-Not baseline and
/// NedExplain and prints the baseline answer next to NedExplain's detailed,
/// condensed and secondary answers. Absolute subquery names (m0, m5, ...)
/// refer to this library's canonical trees, which differ from the paper's
/// figure numbering; the *shape* -- which class of operator is blamed, where
/// the baseline returns nothing, wrong nodes, or "n.a." -- is the
/// reproduction target (see EXPERIMENTS.md).

#include <iostream>

#include "baseline/whynot_baseline.h"
#include "common/strings.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"

int main() {
  using namespace ned;

  auto registry_result = UseCaseRegistry::Build();
  if (!registry_result.ok()) {
    std::cerr << registry_result.status().ToString() << "\n";
    return 1;
  }
  const UseCaseRegistry registry = std::move(registry_result).value();

  // ---- Table 3/4: the workload ------------------------------------------------
  std::cout << "== Table 3/4: queries and use cases ==\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const UseCase& uc : registry.use_cases()) {
      rows.push_back({uc.name, uc.query_name, uc.PredicateDisplay()});
    }
    std::cout << RenderTable({"Use case", "Query", "Predicate"}, rows);
  }

  // ---- Table 5: answers ---------------------------------------------------------
  std::cout << "\n== Table 5: Why-Not vs NedExplain answers ==\n";
  std::vector<std::vector<std::string>> rows;
  for (const UseCase& uc : registry.use_cases()) {
    auto tree_result = registry.BuildTree(uc);
    if (!tree_result.ok()) {
      rows.push_back({uc.name, "ERR", tree_result.status().ToString(), "", ""});
      continue;
    }
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry.database(uc.db_name);

    std::string baseline_answer = "ERR";
    {
      auto baseline = WhyNotBaseline::Create(&tree, &db);
      if (baseline.ok()) {
        auto result = baseline->Explain(uc.question);
        if (result.ok()) {
          baseline_answer = result->AnswerToString();
          for (const auto& part : result->per_ctuple) {
            if (part.answer_deemed_present && result->answer.empty()) {
              baseline_answer = "- (deemed present)";
            }
          }
        }
      }
    }

    std::string detailed = "ERR", condensed = "", secondary = "";
    {
      auto engine = NedExplainEngine::Create(&tree, &db);
      if (engine.ok()) {
        auto result = engine->Explain(uc.question);
        if (result.ok()) {
          // The full detailed answer can be very large (Gov5 blames hundreds
          // of earmark tuples, as the paper's "..." indicates); cap the cell.
          constexpr size_t kMaxEntries = 5;
          std::vector<std::string> parts;
          for (size_t i = 0; i < result->answer.detailed.size(); ++i) {
            if (i == kMaxEntries) {
              parts.push_back(StrCat(
                  "... (+", result->answer.detailed.size() - kMaxEntries,
                  " more)"));
              break;
            }
            parts.push_back(WhyNotAnswer::EntryToString(
                result->answer.detailed[i], engine->last_input()));
          }
          detailed = parts.empty() ? "-" : Join(parts, ", ");
          condensed = result->answer.CondensedToString();
          secondary = result->answer.SecondaryToString();
        } else {
          detailed = result.status().ToString();
        }
      }
    }
    rows.push_back({uc.name, baseline_answer, detailed, condensed, secondary});
  }
  std::cout << RenderTable(
      {"Use case", "Why-Not", "NedExplain detailed", "Condensed", "Secondary"},
      rows);

  std::cout << "\n(Names m_i refer to this library's canonical trees; run the "
               "examples to see each tree.)\n";
  return 0;
}
