/// \file bench_obs.cpp
/// \brief Observability overhead gate: the cost of the instrumentation layer
/// on the Fig. 6 workloads (the paper's 19 use cases).
///
/// Three legs per case, measured interleaved inside each rep so clock drift
/// and cache warmth hit them equally:
///   off    -- no trace attached: every SpanScope site takes the null fast
///             path (a pointer check), PhasedSpanScope degrades to the plain
///             Stopwatch-based PhaseTimer charge. This is the path every
///             untraced request pays and the one the <2% gate protects.
///   off2   -- a second untraced leg: the A-vs-A control. Its delta vs.
///             `off` is pure measurement noise; if the traced overhead is
///             within the noise floor the gate cannot honestly fail it.
///   traced -- an obs::Trace attached through ExecContext: spans are
///             recorded for admission-to-answer phases, per-ctuple and
///             per-TabQ-level. Recorded, not gated (tracing is opt-in).
///
/// The acceptance gate is on the *untraced* legs: median(off) vs. the
/// pre-instrumentation cost is unobservable in one binary, so the gate
/// instead proves the property the tests rely on -- off and off2 agree
/// within noise AND the traced overhead stays small in absolute terms.
/// Concretely:
///   gate 1: |median(off2) - median(off)| / median(off) < 2% or < 0.05 ms
///           (the instrumented untraced path is self-consistent: span sites
///           add no measurable per-run variance),
///   gate 2: median(traced) vs median(off) overhead < 2% or < 0.05 ms
///           (attaching a sink costs less than the gate even when every
///           span is recorded).
///
/// Also measures registry write throughput (counter increments and histogram
/// observes per second, single-threaded and 8-thread hammer) -- recorded in
/// the JSON, not gated.
///
/// Emits BENCH_obs.json. `--smoke` is the CI-sized run and the exit-code
/// gate. Usage: bench_obs [--reps N] [--smoke] [--out path.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/nedexplain.h"
#include "datasets/use_cases.h"
#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using ned::Database;
using ned::ExecContext;
using ned::NedExplainEngine;
using ned::QueryTree;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotQuestion;

double Median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct CaseResult {
  std::string name;
  double off_ms = 0;
  double off2_ms = 0;
  double traced_ms = 0;
  size_t spans = 0;

  double noise() const { return off_ms > 0 ? off2_ms / off_ms - 1.0 : 0; }
  double traced_overhead() const {
    return off_ms > 0 ? traced_ms / off_ms - 1.0 : 0;
  }
};

/// One timed Explain. `trace` may be nullptr (the untraced legs).
double TimeExplainMs(NedExplainEngine& engine, const WhyNotQuestion& question,
                     ned::obs::Trace* trace) {
  ExecContext ctx;
  if (trace != nullptr) ctx.set_trace(trace);
  const auto start = std::chrono::steady_clock::now();
  auto result = engine.Explain(question, &ctx);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  NED_CHECK_MSG(result.ok(), result.status().ToString());
  return ms;
}

struct RegistryThroughput {
  double counter_mops_1t = 0;    ///< single-thread counter increments, M/s
  double counter_mops_8t = 0;    ///< 8-thread same-counter hammer, M/s total
  double histogram_mops_1t = 0;  ///< single-thread histogram observes, M/s
};

RegistryThroughput MeasureRegistry(int64_t ops) {
  RegistryThroughput out;
  ned::obs::MetricsRegistry registry;
  ned::obs::Counter* counter =
      registry.GetCounter("bench_counter_total", {{"leg", "hot"}});
  ned::obs::Histogram* histogram = registry.GetHistogram(
      "bench_latency_us", {}, ned::obs::DefaultLatencyBoundsUs());

  auto mops = [](int64_t n, std::chrono::steady_clock::duration d) {
    const double secs = std::chrono::duration<double>(d).count();
    return secs > 0 ? static_cast<double>(n) / secs / 1e6 : 0;
  };

  auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < ops; ++i) counter->Increment();
  out.counter_mops_1t = mops(ops, std::chrono::steady_clock::now() - t0);

  t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < ops; ++i) histogram->Observe(i % 1000000);
  out.histogram_mops_1t = mops(ops, std::chrono::steady_clock::now() - t0);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, ops] {
      for (int64_t i = 0; i < ops / kThreads; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  out.counter_mops_8t =
      mops(ops / kThreads * kThreads, std::chrono::steady_clock::now() - t0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
      reps = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_obs [--reps N] [--smoke] [--out path.json]\n";
      return 2;
    }
  }

  auto registry = UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }

  std::cout << "bench_obs: " << registry->use_cases().size()
            << " Fig. 6 use cases, " << reps << " reps (median)\n";
  std::cout << "case            off_ms  off2_ms traced_ms  noise  traced_ovh  "
               "spans\n";

  int failures = 0;
  std::vector<CaseResult> results;
  for (const UseCase& uc : registry->use_cases()) {
    auto tree_result = registry->BuildTree(uc);
    NED_CHECK_MSG(tree_result.ok(), tree_result.status().ToString());
    QueryTree tree = std::move(tree_result).value();
    const Database& db = registry->database(uc.db_name);
    auto engine = NedExplainEngine::Create(&tree, &db);
    NED_CHECK_MSG(engine.ok(), engine.status().ToString());

    // Warm-up (untimed, first-touches the data) + span count for the JSON.
    size_t spans = 0;
    {
      ned::obs::Trace trace;
      (void)TimeExplainMs(*engine, uc.question, &trace);
      spans = trace.spans().size();
    }

    CaseResult r;
    r.name = uc.name;
    r.spans = spans;
    std::vector<double> off, off2, traced;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleaved: off, traced, off2 back to back inside each rep, with
      // the traced leg in the middle so both untraced legs straddle it.
      off.push_back(TimeExplainMs(*engine, uc.question, nullptr));
      {
        ned::obs::Trace trace;
        traced.push_back(TimeExplainMs(*engine, uc.question, &trace));
      }
      off2.push_back(TimeExplainMs(*engine, uc.question, nullptr));
    }
    r.off_ms = Median(off);
    r.off2_ms = Median(off2);
    r.traced_ms = Median(traced);
    results.push_back(r);
    std::printf("%-14s %7.3f %8.3f %9.3f %5.1f%% %10.1f%% %6zu\n",
                r.name.c_str(), r.off_ms, r.off2_ms, r.traced_ms,
                100.0 * r.noise(), 100.0 * r.traced_overhead(), r.spans);
  }

  std::vector<double> noises, noise_deltas, overheads, overhead_deltas;
  for (const CaseResult& r : results) {
    noises.push_back(r.noise());
    noise_deltas.push_back(r.off2_ms - r.off_ms);
    overheads.push_back(r.traced_overhead());
    overhead_deltas.push_back(r.traced_ms - r.off_ms);
  }
  const double med_noise = Median(noises);
  const double med_noise_delta = Median(noise_deltas);
  const double med_overhead = Median(overheads);
  const double med_overhead_delta = Median(overhead_deltas);
  std::cout << "aggregate medians: A-vs-A noise " << 100.0 * med_noise << "% ("
            << med_noise_delta << " ms), traced overhead "
            << 100.0 * med_overhead << "% (" << med_overhead_delta << " ms)\n";

  // Acceptance gates (absolute slack floor as in bench_parallel: the
  // sub-millisecond use cases put 2% below timer resolution).
  const bool noise_ok =
      std::abs(med_noise) < 0.02 || std::abs(med_noise_delta) < 0.05;
  const bool traced_ok = med_overhead < 0.02 || med_overhead_delta < 0.05;
  if (!noise_ok) {
    std::cerr << "FAIL: A-vs-A noise " << 100.0 * med_noise
              << "% >= 2% -- untraced runs disagree with themselves, the "
                 "overhead gate is not trustworthy on this machine\n";
    ++failures;
  }
  if (!traced_ok) {
    std::cerr << "FAIL: traced overhead " << 100.0 * med_overhead
              << "% >= 2% (delta " << med_overhead_delta << " ms)\n";
    ++failures;
  }

  const RegistryThroughput reg = MeasureRegistry(smoke ? 2'000'000 : 20'000'000);
  std::cout << "registry: counter " << reg.counter_mops_1t
            << " Mops/s (1t), " << reg.counter_mops_8t
            << " Mops/s (8t hammer), histogram " << reg.histogram_mops_1t
            << " Mops/s (1t)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"obs\",\n  \"reps\": " << reps
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"aggregate\": {\"noise\": " << med_noise
      << ", \"noise_delta_ms\": " << med_noise_delta
      << ", \"traced_overhead\": " << med_overhead
      << ", \"traced_delta_ms\": " << med_overhead_delta
      << ", \"meets_targets\": "
      << (noise_ok && traced_ok && failures == 0 ? "true" : "false")
      << "},\n  \"registry\": {\"counter_mops_1t\": " << reg.counter_mops_1t
      << ", \"counter_mops_8t\": " << reg.counter_mops_8t
      << ", \"histogram_mops_1t\": " << reg.histogram_mops_1t
      << "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out << "    {\"case\": \"" << r.name << "\", \"off_ms\": " << r.off_ms
        << ", \"off2_ms\": " << r.off2_ms << ", \"traced_ms\": " << r.traced_ms
        << ", \"noise\": " << r.noise()
        << ", \"traced_overhead\": " << r.traced_overhead()
        << ", \"spans\": " << r.spans << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (failures > 0) {
    std::cerr << "bench_obs: FAIL (" << failures << " violations)\n";
    return 1;
  }
  std::cout << "bench_obs: PASS\n";
  return 0;
}
