#include "service/breaker.h"

#include <utility>

#include "cache/answer_cache.h"
#include "common/strings.h"
#include "exec/exec_context.h"

namespace ned {

bool IsBreakerFailure(const Status& status) {
  if (status.ok()) return false;
  if (status.code() == StatusCode::kUnavailable) return false;  // transient
  if (IsResourceLimit(status)) return false;  // governance, not poison
  return true;
}

std::string MakeBreakerKey(const std::string& db_name, const std::string& sql,
                           const std::string& question_text) {
  // Length-prefixed like the answer-cache key, minus the snapshot version
  // and budgets: poison is a property of the content, and probes (not
  // version bumps) decide when to re-test it.
  const std::string norm = NormalizeSqlText(sql);
  return StrCat("db=", db_name.size(), ":", db_name, "|q=", norm.size(), ":",
                norm, "|w=", question_text.size(), ":", question_text);
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, const Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {
  NED_CHECK_MSG(options_.failure_threshold > 0,
                "disabled breakers should not be constructed");
}

CircuitBreaker::Gate CircuitBreaker::GateLocked(const KeyState& state,
                                                Clock::TimePoint now) const {
  if (state.open) {
    if (state.probe_in_flight) return Gate::kFastFail;
    return now >= state.next_probe_time ? Gate::kProbe : Gate::kFastFail;
  }
  // Suspect serialization: a key with a recorded failure runs one at a
  // time until a success clears it, so the consecutive-failure count (and
  // with it the poison-execution bound) stays exact under concurrency.
  if (state.consecutive_failures > 0 && state.executing > 0) {
    return Gate::kFastFail;
  }
  return Gate::kAllow;
}

CircuitBreaker::Decision CircuitBreaker::Check(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return Decision{};
  const Gate gate = GateLocked(it->second, clock_->Now());
  if (gate != Gate::kFastFail) {
    // Probe admission is the worker-side TryBegin's call to make; at
    // submit time an open-but-probe-due breaker just lets the request in.
    return Decision{};
  }
  ++stats_.fast_fails;
  return Decision{Gate::kFastFail, it->second.last_error};
}

CircuitBreaker::Decision CircuitBreaker::TryBegin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    // Healthy keys are not tracked: zero overhead and zero state until a
    // failure is first recorded by End().
    return Decision{};
  }
  KeyState& state = it->second;
  const Gate gate = GateLocked(state, clock_->Now());
  switch (gate) {
    case Gate::kAllow:
      ++state.executing;
      return Decision{};
    case Gate::kProbe:
      ++state.executing;
      state.probe_in_flight = true;
      ++stats_.probes;
      return Decision{Gate::kProbe, Status::OK()};
    case Gate::kFastFail:
      ++stats_.fast_fails;
      return Decision{Gate::kFastFail, state.last_error};
  }
  return Decision{};
}

void CircuitBreaker::End(const std::string& key, const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  const bool failure = IsBreakerFailure(status);
  if (it == keys_.end()) {
    if (!failure) return;
    // First failure ever seen for this key: start tracking it.
    EvictIfCrowdedLocked();
    it = keys_.emplace(key, KeyState{}).first;
  }
  KeyState& state = it->second;
  if (state.executing > 0) --state.executing;
  if (failure) {
    ++state.consecutive_failures;
    state.last_error = status;
    if (state.probe_in_flight) {
      // Failed probe: stay open, re-arm the probe timer.
      state.probe_in_flight = false;
      state.next_probe_time =
          clock_->Now() + std::chrono::milliseconds(options_.probe_interval_ms);
      ++stats_.reopens;
    } else if (!state.open &&
               state.consecutive_failures >= options_.failure_threshold) {
      state.open = true;
      state.next_probe_time =
          clock_->Now() + std::chrono::milliseconds(options_.probe_interval_ms);
      ++stats_.opens;
    }
    return;
  }
  // Success -- or a transient/resource outcome, which proves the key is at
  // least *executable*. A strict reading would only close on success, but a
  // key that reaches its own resource limits is not poison, so both reset.
  keys_.erase(it);
}

void CircuitBreaker::EvictIfCrowdedLocked() {
  if (keys_.size() < options_.max_tracked_keys) return;
  // Backstop, not a hot path: drop closed idle entries first; if every
  // entry is open (an adversary cycling poison keys), drop the first --
  // a dropped open breaker merely re-learns its failures.
  for (auto it = keys_.begin(); it != keys_.end();) {
    if (!it->second.open && it->second.executing == 0) {
      it = keys_.erase(it);
      if (keys_.size() < options_.max_tracked_keys) return;
    } else {
      ++it;
    }
  }
  if (keys_.size() >= options_.max_tracked_keys && !keys_.empty()) {
    keys_.erase(keys_.begin());
  }
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.tracked_keys = keys_.size();
  return out;
}

}  // namespace ned
