/// \file scheduler.h
/// \brief Deadline-aware priority scheduling with per-client fair share.
///
/// Replaces the service's FIFO queue. Requests carry a priority class and a
/// client id; the scheduler orders work strictly by class (interactive over
/// batch over background) and earliest-deadline-first within a class, so a
/// queued interactive request is never stuck behind a backlog of batch work.
/// Two guards keep the ordering honest under overload:
///
///   - Fair-share quotas: each client may hold at most `per_client_limit`
///     admitted-but-unfinished requests (queued + running). A hot client
///     that fires requests open-loop saturates its own quota and gets shed,
///     while everyone else's admissions proceed -- one client cannot starve
///     the rest out of the queue.
///   - Queue expiry: a request whose deadline passes while it is still
///     queued is extracted by TakeExpired() and failed fast with
///     kDeadlineExceeded by the caller, instead of occupying a worker to
///     compute an answer nobody is waiting for.
///
/// The scheduler is a passive data structure, externally synchronized by
/// the service mutex (it never blocks, sleeps or reads the clock itself --
/// callers pass `now` in, which is what makes expiry testable against a
/// ManualClock).

#ifndef NED_SERVICE_SCHEDULER_H_
#define NED_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace ned {

/// Scheduling classes, strongest first. Strict priority between classes:
/// interactive work preempts queued batch work which preempts background
/// (non-preemptive once running).
enum class Priority {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};

inline constexpr int kPriorityClasses = 3;

/// "interactive" / "batch" / "background".
const char* PriorityName(Priority priority);

/// Sizing knobs; embedded in ServiceOptions.
struct SchedulerOptions {
  /// Total queued entries across all classes; admissions beyond it are
  /// refused (the service sheds them as retryable kUnavailable).
  size_t queue_capacity = 64;
  /// Max admitted-but-unfinished (queued + running) entries per client id.
  /// 0 = unlimited. Entries with an empty client id share one anonymous
  /// bucket.
  size_t per_client_limit = 0;
};

/// Priority + EDF queue with per-client occupancy accounting. T is the
/// queued payload (the service queues shared_ptr<Job>). Externally
/// synchronized.
template <typename T>
class PriorityScheduler {
 public:
  using TimePoint = Clock::TimePoint;

  struct Entry {
    T item{};
    Priority priority = Priority::kInteractive;
    TimePoint deadline{};
    std::string client;
  };

  enum class Admit { kOk, kQueueFull, kClientQuota };

  explicit PriorityScheduler(SchedulerOptions options)
      : options_(options) {}

  /// Queues `entry` unless the client's quota or the global capacity is
  /// exhausted. The quota verdict comes first: it depends only on the
  /// client's own in-flight work, so a hot client is told "you are the
  /// problem" even at moments the shared queue also happens to be full.
  /// On kOk the client's occupancy slot stays held until Release(client)
  /// -- through queueing, execution, expiry or drain.
  Admit TryAdmit(Entry entry) {
    if (options_.per_client_limit != 0) {
      auto it = occupancy_.find(entry.client);
      if (it != occupancy_.end() && it->second >= options_.per_client_limit) {
        return Admit::kClientQuota;
      }
    }
    if (size_ >= options_.queue_capacity) return Admit::kQueueFull;
    ++occupancy_[entry.client];
    auto& lane = lanes_[static_cast<size_t>(entry.priority)];
    lane.emplace(Key{entry.deadline, seq_++}, std::move(entry));
    ++size_;
    return Admit::kOk;
  }

  /// Next entry to run: strongest non-empty class, earliest deadline within
  /// it, FIFO among equal deadlines. Does not release the occupancy slot.
  std::optional<Entry> Pop() {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      Entry entry = std::move(lane.begin()->second);
      lane.erase(lane.begin());
      --size_;
      return entry;
    }
    return std::nullopt;
  }

  /// Removes and returns every queued entry whose deadline has passed, so
  /// the caller can fail them fast. Callers still Release() each.
  std::vector<Entry> TakeExpired(TimePoint now) {
    std::vector<Entry> expired;
    for (auto& lane : lanes_) {
      // EDF order: expired entries are a prefix of each lane.
      while (!lane.empty() && lane.begin()->first.first <= now) {
        expired.push_back(std::move(lane.begin()->second));
        lane.erase(lane.begin());
        --size_;
      }
    }
    return expired;
  }

  /// Empties the queue (shutdown without drain). Callers Release() each.
  std::vector<Entry> DrainAll() {
    std::vector<Entry> all;
    for (auto& lane : lanes_) {
      for (auto& [key, entry] : lane) all.push_back(std::move(entry));
      lane.clear();
    }
    size_ = 0;
    return all;
  }

  /// Releases the occupancy slot held since TryAdmit. Call exactly once per
  /// admitted entry, when it is finalized (executed, expired or drained).
  void Release(const std::string& client) {
    auto it = occupancy_.find(client);
    if (it == occupancy_.end()) return;
    if (--it->second == 0) occupancy_.erase(it);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t depth(Priority priority) const {
    return lanes_[static_cast<size_t>(priority)].size();
  }
  /// Queued + running entries currently charged to `client`.
  size_t occupancy(const std::string& client) const {
    auto it = occupancy_.find(client);
    return it == occupancy_.end() ? 0 : it->second;
  }

 private:
  /// (deadline, admission sequence): multimap-free strict weak order with a
  /// FIFO tiebreak.
  using Key = std::pair<TimePoint, uint64_t>;

  SchedulerOptions options_;
  std::map<Key, Entry> lanes_[kPriorityClasses];
  std::map<std::string, size_t> occupancy_;
  size_t size_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace ned

#endif  // NED_SERVICE_SCHEDULER_H_
