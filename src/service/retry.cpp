#include "service/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/strings.h"

namespace ned {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

int64_t BackoffMs(const RetryPolicy& policy, int attempt,
                  int64_t suggested_ms, Rng& rng) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) backoff *= policy.multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0) {
    const double factor =
        1.0 + policy.jitter * (2.0 * rng.UniformDouble() - 1.0);
    backoff *= factor;
  }
  int64_t ms = static_cast<int64_t>(backoff);
  ms = std::max<int64_t>(ms, 0);
  return std::max(ms, suggested_ms);
}

namespace {

int64_t PriorityBackoffFactor(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return 1;
    case Priority::kBatch:
      return 2;
    case Priority::kBackground:
      return 4;
  }
  return 1;
}

}  // namespace

RetryOutcome SubmitWithRetry(WhyNotService& service, WhyNotRequest request,
                             const RetryPolicy& policy) {
  NED_CHECK_MSG(!request.key.empty(),
                "SubmitWithRetry needs an idempotency key: retries must "
                "resubmit under the same key");
  // Per-request determinism: same (seed, key) -> same jitter schedule.
  Rng rng(MixSeed(request.seed, HashSeed(request.key)));
  const Clock* clock = policy.clock != nullptr ? policy.clock : Clock::Real();
  const Clock::TimePoint session_start = clock->Now();
  const int64_t requested_deadline_ms = request.deadline_ms;
  RetryOutcome outcome;
  Status last_failure;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    int64_t remaining_ms = 0;  // 0 = unlimited
    if (policy.overall_deadline_ms > 0) {
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              clock->Now() - session_start)
              .count();
      remaining_ms = policy.overall_deadline_ms - elapsed_ms;
      if (remaining_ms <= 0) {
        outcome.deadline_exhausted = true;
        outcome.response.key = request.key;
        outcome.response.status = Status::DeadlineExceeded(StrCat(
            "retry budget exhausted after ", elapsed_ms, "ms (budget ",
            policy.overall_deadline_ms, "ms); last failure: ",
            last_failure.ToString()));
        return outcome;
      }
      // Clamp this attempt's deadline to the remaining session budget: a
      // late attempt must not re-arm the full per-request deadline and
      // overshoot the budget the caller planned around.
      request.deadline_ms = requested_deadline_ms > 0
                                ? std::min(requested_deadline_ms, remaining_ms)
                                : remaining_ms;
    }
    ++outcome.attempts;
    auto submission = service.Submit(request);
    int64_t suggested_ms = 0;
    if (submission.status.ok()) {
      WhyNotResponse response = submission.response.get();
      if (!response.retryable()) {
        outcome.breaker_fast_fail = response.breaker_fast_fail;
        outcome.response = std::move(response);
        return outcome;
      }
      ++outcome.transients;
      last_failure = response.status;
      suggested_ms = response.retry_after_ms;
    } else if (IsRetryable(submission.status)) {
      ++outcome.sheds;
      last_failure = submission.status;
      suggested_ms = submission.retry_after_ms;
    } else {
      outcome.permanent_rejection = true;
      outcome.breaker_fast_fail = submission.breaker_fast_fail;
      outcome.response.key = request.key;
      outcome.response.status = submission.status;
      return outcome;
    }
    if (attempt == policy.max_attempts) break;
    int64_t backoff = BackoffMs(policy, attempt, suggested_ms, rng);
    if (policy.priority_aware_backoff) {
      backoff *= PriorityBackoffFactor(request.priority);
    }
    if (policy.overall_deadline_ms > 0 && remaining_ms > 0) {
      // Never sleep past the session budget; the next iteration's check
      // turns an exhausted budget into a clean kDeadlineExceeded.
      backoff = std::min(backoff, remaining_ms);
    }
    outcome.backoff_total_ms += backoff;
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
  outcome.exhausted = true;
  outcome.response.key = request.key;
  outcome.response.status = Status::Unavailable(
      "retry attempts exhausted; last failure: " + last_failure.ToString());
  return outcome;
}

}  // namespace ned
