#include "service/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ned {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

int64_t BackoffMs(const RetryPolicy& policy, int attempt,
                  int64_t suggested_ms, Rng& rng) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) backoff *= policy.multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0) {
    const double factor =
        1.0 + policy.jitter * (2.0 * rng.UniformDouble() - 1.0);
    backoff *= factor;
  }
  int64_t ms = static_cast<int64_t>(backoff);
  ms = std::max<int64_t>(ms, 0);
  return std::max(ms, suggested_ms);
}

RetryOutcome SubmitWithRetry(WhyNotService& service, WhyNotRequest request,
                             const RetryPolicy& policy) {
  NED_CHECK_MSG(!request.key.empty(),
                "SubmitWithRetry needs an idempotency key: retries must "
                "resubmit under the same key");
  // Per-request determinism: same (seed, key) -> same jitter schedule.
  Rng rng(MixSeed(request.seed, HashSeed(request.key)));
  RetryOutcome outcome;
  Status last_failure;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    ++outcome.attempts;
    auto submission = service.Submit(request);
    int64_t suggested_ms = 0;
    if (submission.status.ok()) {
      WhyNotResponse response = submission.response.get();
      if (!response.retryable()) {
        outcome.response = std::move(response);
        return outcome;
      }
      ++outcome.transients;
      last_failure = response.status;
      suggested_ms = response.retry_after_ms;
    } else if (IsRetryable(submission.status)) {
      ++outcome.sheds;
      last_failure = submission.status;
      suggested_ms = submission.retry_after_ms;
    } else {
      outcome.permanent_rejection = true;
      outcome.response.key = request.key;
      outcome.response.status = submission.status;
      return outcome;
    }
    if (attempt == policy.max_attempts) break;
    const int64_t backoff = BackoffMs(policy, attempt, suggested_ms, rng);
    outcome.backoff_total_ms += backoff;
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
  outcome.exhausted = true;
  outcome.response.key = request.key;
  outcome.response.status = Status::Unavailable(
      "retry attempts exhausted; last failure: " + last_failure.ToString());
  return outcome;
}

}  // namespace ned
