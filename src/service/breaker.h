/// \file breaker.h
/// \brief Per-request-key circuit breakers: poison queries cost one worker
/// a bounded number of times, not forever.
///
/// A request whose *content* (database + normalized SQL + question) trips a
/// non-retryable engine failure -- bad SQL against this schema, an unknown
/// relation, a type error -- will fail identically on every retry until the
/// data or the query changes. Without a breaker, a client (or a fleet of
/// clients) resubmitting such a poison request re-executes the same doomed
/// compile/run each time, burning workers the healthy traffic needs.
///
/// The breaker tracks consecutive non-retryable failures per normalized
/// content key and walks the classic state machine:
///
///   closed --(threshold consecutive failures)--> open
///   open   --(probe interval elapses)----------> half-open (one probe)
///   half-open --probe succeeds--> closed    --probe fails--> open again
///
/// While open, submissions fail fast with the *cached* error -- the client
/// sees the same permanent status it would have earned by executing, at the
/// cost of a map lookup instead of a worker. Two details make the "poison
/// costs at most threshold + probes executions" bound honest under
/// concurrency:
///
///   - Suspect serialization: once a key has a recorded failure, only one
///     execution of it may be in flight; concurrent duplicates fail fast
///     with the cached error. Healthy keys (no failures) are untouched and
///     run fully parallel.
///   - The service re-checks the breaker when a queued request reaches a
///     worker (TryBegin), so work admitted before the breaker opened does
///     not execute after it.
///
/// Transient failures (kUnavailable) and resource-limit partials never
/// count toward the threshold: they are the retry policy's and the
/// governance layer's business, not evidence of poison.
///
/// Keys are snapshot-version-independent on purpose: a catalog reload that
/// fixes the failure (e.g. creates the missing relation) is discovered by
/// the next half-open probe.

#ifndef NED_SERVICE_BREAKER_H_
#define NED_SERVICE_BREAKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/timer.h"

namespace ned {

/// Breaker policy; embedded in ServiceOptions.
struct BreakerOptions {
  /// Consecutive non-retryable failures of one key that open its breaker.
  /// 0 disables the breaker entirely.
  int failure_threshold = 3;
  /// While open, one probe execution is admitted every this-many ms.
  int64_t probe_interval_ms = 200;
  /// Bound on tracked keys. Only failing keys are ever tracked (successes
  /// erase their entry), so this is a backstop against an adversary cycling
  /// through unbounded distinct poison queries, not a working-set size.
  size_t max_tracked_keys = 4096;
};

/// True when `status` is the kind of failure a breaker should count:
/// a permanent per-request error. Retryable unavailability and governed
/// resource limits are not poison.
bool IsBreakerFailure(const Status& status);

/// Builds the breaker's normalized content key.
std::string MakeBreakerKey(const std::string& db_name, const std::string& sql,
                           const std::string& question_text);

/// Thread-safe registry of per-key breaker states (internally locked: the
/// completion side runs on workers outside the service mutex).
class CircuitBreaker {
 public:
  enum class Gate {
    kAllow,     ///< execute normally
    kProbe,     ///< execute as the half-open probe
    kFastFail,  ///< do not execute; `cached_error` is the answer
  };

  struct Decision {
    Gate gate = Gate::kAllow;
    /// The last recorded failure for the key (set when gate == kFastFail).
    Status cached_error;
  };

  struct Stats {
    uint64_t opens = 0;       ///< closed -> open transitions
    uint64_t reopens = 0;     ///< failed probes re-arming an open breaker
    uint64_t probes = 0;      ///< half-open probe executions admitted
    uint64_t fast_fails = 0;  ///< submissions short-circuited with the cached error
    size_t tracked_keys = 0;
  };

  CircuitBreaker(BreakerOptions options, const Clock* clock);

  /// Submit-time gate: kFastFail rejects the submission synchronously with
  /// the cached error. Counts the fast-fail but does not register an
  /// execution.
  Decision Check(const std::string& key);

  /// Worker-side gate, called when the request actually reaches a worker.
  /// kAllow/kProbe registers an in-flight execution that MUST be paired
  /// with End(); kFastFail must be finalized with the cached error instead.
  Decision TryBegin(const std::string& key);

  /// Completion of an execution admitted by TryBegin. Success (or any
  /// non-breaker failure) resets the key; a breaker failure advances the
  /// state machine.
  void End(const std::string& key, const Status& status);

  Stats stats() const;

 private:
  struct KeyState {
    int consecutive_failures = 0;
    int executing = 0;
    bool open = false;
    bool probe_in_flight = false;
    Status last_error;
    Clock::TimePoint next_probe_time{};
  };

  /// Shared gate logic; does not mutate `state`.
  Gate GateLocked(const KeyState& state, Clock::TimePoint now) const;
  void EvictIfCrowdedLocked();

  const BreakerOptions options_;
  const Clock* const clock_;

  mutable std::mutex mu_;
  std::map<std::string, KeyState> keys_;
  Stats stats_;
};

}  // namespace ned

#endif  // NED_SERVICE_BREAKER_H_
