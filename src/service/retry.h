/// \file retry.h
/// \brief Client-side retry policy for retryable service failures.
///
/// The service's shedding/backoff contract (service.h) promises that every
/// kUnavailable outcome -- admission rejection or transient execution fault
/// -- will succeed if retried once load subsides. This is the client half:
/// capped exponential backoff with jitter, honouring the service's
/// suggested backoff, resubmitting under the *same* idempotency key so the
/// service can deduplicate and the end-to-end run stays exactly-once.
///
/// All jitter randomness derives from the request (seed + key) via
/// MixSeed/HashSeed -- never from process-global state -- so a concurrent
/// retry schedule is reproducible bit-for-bit given the same inputs.

#ifndef NED_SERVICE_RETRY_H_
#define NED_SERVICE_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "service/service.h"

namespace ned {

/// Capped exponential backoff with jitter.
struct RetryPolicy {
  /// Total Submit attempts (first try included).
  int max_attempts = 8;
  int64_t initial_backoff_ms = 1;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 250;
  /// Jitter fraction: the computed backoff is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter] to de-synchronize retrying clients.
  double jitter = 0.5;
};

/// True for outcomes the policy should retry: kUnavailable only. Resource
/// limits (deadline, budgets) are final partial answers, not retry bait.
bool IsRetryable(const Status& status);

/// Backoff before attempt `attempt + 1` (attempt is 1-based, the one that
/// just failed): max(exponential-with-jitter, service-suggested). Draws the
/// jitter from `rng`, which callers seed per request.
int64_t BackoffMs(const RetryPolicy& policy, int attempt,
                  int64_t suggested_ms, Rng& rng);

/// What SubmitWithRetry did, for harness bookkeeping.
struct RetryOutcome {
  WhyNotResponse response;
  /// Submit calls made (>= 1).
  int attempts = 0;
  /// Admission rejections (queue/watermark sheds) encountered.
  int sheds = 0;
  /// Retryable execution failures (injected transients) encountered.
  int transients = 0;
  int64_t backoff_total_ms = 0;
  /// True when max_attempts ran out before a final response.
  bool exhausted = false;
  /// True when the service rejected permanently (bad database name etc.).
  bool permanent_rejection = false;
};

/// Submits `request`, blocking on the response and retrying retryable
/// failures under `policy`. The request must carry a non-empty idempotency
/// key (retries must resubmit the same key to stay exactly-once). Jitter is
/// seeded from (request.seed, request.key).
RetryOutcome SubmitWithRetry(WhyNotService& service, WhyNotRequest request,
                             const RetryPolicy& policy = {});

}  // namespace ned

#endif  // NED_SERVICE_RETRY_H_
