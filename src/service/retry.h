/// \file retry.h
/// \brief Client-side retry policy for retryable service failures.
///
/// The service's shedding/backoff contract (service.h) promises that every
/// kUnavailable outcome -- admission rejection or transient execution fault
/// -- will succeed if retried once load subsides. This is the client half:
/// capped exponential backoff with jitter, honouring the service's
/// suggested backoff, resubmitting under the *same* idempotency key so the
/// service can deduplicate and the end-to-end run stays exactly-once.
///
/// Two cross-attempt governors bound the whole retry session, not just one
/// attempt:
///
///   - `overall_deadline_ms` is an end-to-end budget spanning every attempt
///     and every backoff sleep. Each attempt's request deadline is clamped
///     to what remains, so attempt N cannot re-arm the full deadline the
///     caller thought covered the whole operation.
///   - `priority_aware_backoff` stretches backoff for weaker scheduling
///     classes (batch 2x, background 4x), so when the service sheds under
///     overload, background retries return last and interactive capacity
///     recovers first.
///
/// All jitter randomness derives from the request (seed + key) via
/// MixSeed/HashSeed -- never from process-global state -- so a concurrent
/// retry schedule is reproducible bit-for-bit given the same inputs.

#ifndef NED_SERVICE_RETRY_H_
#define NED_SERVICE_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/timer.h"
#include "service/service.h"

namespace ned {

/// Capped exponential backoff with jitter.
struct RetryPolicy {
  /// Total Submit attempts (first try included).
  int max_attempts = 8;
  int64_t initial_backoff_ms = 1;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 250;
  /// Jitter fraction: the computed backoff is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter] to de-synchronize retrying clients.
  double jitter = 0.5;
  /// End-to-end budget across all attempts and backoffs; 0 = unlimited.
  /// Each attempt's `request.deadline_ms` is clamped to the remaining
  /// budget, and when it runs out SubmitWithRetry stops with
  /// kDeadlineExceeded instead of starting another attempt.
  int64_t overall_deadline_ms = 0;
  /// Scale backoff by the request's priority class (interactive 1x,
  /// batch 2x, background 4x) so overload recovery favours the work the
  /// scheduler favours.
  bool priority_aware_backoff = false;
  /// Time source for the overall budget; nullptr = real steady clock
  /// (tests inject a ManualClock).
  const Clock* clock = nullptr;
};

/// True for outcomes the policy should retry: kUnavailable only. Resource
/// limits (deadline, budgets) are final partial answers, not retry bait.
bool IsRetryable(const Status& status);

/// Backoff before attempt `attempt + 1` (attempt is 1-based, the one that
/// just failed): max(exponential-with-jitter, service-suggested). Draws the
/// jitter from `rng`, which callers seed per request.
int64_t BackoffMs(const RetryPolicy& policy, int attempt,
                  int64_t suggested_ms, Rng& rng);

/// What SubmitWithRetry did, for harness bookkeeping.
struct RetryOutcome {
  WhyNotResponse response;
  /// Submit calls made (>= 1).
  int attempts = 0;
  /// Admission rejections (queue/watermark/quota/brownout sheds).
  int sheds = 0;
  /// Retryable execution failures (injected transients) encountered.
  int transients = 0;
  int64_t backoff_total_ms = 0;
  /// True when max_attempts ran out before a final response.
  bool exhausted = false;
  /// True when the service rejected permanently (bad database name etc.).
  bool permanent_rejection = false;
  /// True when `overall_deadline_ms` ran out across attempts; the response
  /// carries kDeadlineExceeded.
  bool deadline_exhausted = false;
  /// True when the final outcome was a circuit-breaker fast-fail (either a
  /// synchronous Submit rejection or a worker-side short-circuit).
  bool breaker_fast_fail = false;
};

/// Submits `request`, blocking on the response and retrying retryable
/// failures under `policy`. The request must carry a non-empty idempotency
/// key (retries must resubmit the same key to stay exactly-once). Jitter is
/// seeded from (request.seed, request.key).
RetryOutcome SubmitWithRetry(WhyNotService& service, WhyNotRequest request,
                             const RetryPolicy& policy = {});

}  // namespace ned

#endif  // NED_SERVICE_RETRY_H_
