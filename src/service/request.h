/// \file request.h
/// \brief WhyNotRequest: one why-not request as submitted to the service.
///
/// Split out of service.h so the durability layer (src/persist/) can encode
/// and decode requests without depending on the service itself -- the
/// journal stores whole requests (ACCEPT records) and recovery hands them
/// back to WhyNotService::Submit. Header-only: the struct is plain data.

#ifndef NED_SERVICE_REQUEST_H_
#define NED_SERVICE_REQUEST_H_

#include <cstdint>
#include <string>

#include "core/nedexplain.h"
#include "service/scheduler.h"

namespace ned {

/// One why-not request. `key` is the idempotency key: resubmitting the same
/// key never executes twice concurrently and re-serves a completed answer
/// from cache; an empty key gets a unique auto-assigned one.
struct WhyNotRequest {
  std::string key;
  std::string db_name;
  std::string sql;
  WhyNotQuestion question;
  /// Scheduling class (strict priority between classes, EDF within one).
  Priority priority = Priority::kInteractive;
  /// Fair-share identity; empty ids share one anonymous bucket. Distinct
  /// from `key`: many requests share one client.
  std::string client_id;
  /// End-to-end deadline (queue wait + execution). 0 = service default.
  int64_t deadline_ms = 0;
  /// Per-request budgets; 0 = service default.
  size_t row_budget = 0;
  size_t memory_budget = 0;
  /// Seed for any randomness consumed on behalf of this request (retry
  /// jitter); derived per request, never process-global, so concurrent runs
  /// stay deterministic.
  uint64_t seed = 0;
  /// Intra-query threads for this request: 0 = the service default
  /// (ServiceOptions::threads_per_request), 1 = force serial; higher values
  /// are clamped to the service default so one client cannot widen the
  /// configured bound.
  int threads = 0;
  /// Chaos knobs (see service.h for the semantics split).
  uint64_t inject_fault_at_step = 0;
  int inject_transient_failures = 0;
  /// Skip the content-addressed answer cache AND the durable answer store
  /// for this request (both lookup and insert); the subtree cache still
  /// applies. Requests with either chaos knob set bypass implicitly --
  /// injected faults must actually run.
  bool bypass_answer_cache = false;
  /// Record a per-request span trace (obs/trace.h) and deliver it on the
  /// Submission/WhyNotResponse. Transport-only: deliberately NOT journaled
  /// by the request codec, so a recovered request re-runs without tracing
  /// (no wire-format bump; see docs/OBSERVABILITY.md).
  bool collect_trace = false;
  NedExplainOptions engine_options;
};

}  // namespace ned

#endif  // NED_SERVICE_REQUEST_H_
