#include "service/scheduler.h"

namespace ned {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "unknown";
}

}  // namespace ned
