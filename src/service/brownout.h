/// \file brownout.h
/// \brief Brownout ladder: degrade answer quality under pressure instead of
/// failing requests outright.
///
/// When the service is saturated, the choices are to queue (latency grows
/// without bound), shed (work is refused), or *degrade*: spend less per
/// request so more requests finish inside their deadlines. NedExplain
/// answers degrade naturally -- the secondary answer and the detailed
/// listing are strictly additive over the condensed answer (Defs 2.12-2.14),
/// so dropping them keeps every remaining statement true.
///
/// The ladder, driven by measured pressure:
///
///   L0  full answers (no degradation)
///   L1  skip the secondary answer (compute_secondary = false)
///   L2  condensed-focused: additionally drop TabQ dumps and cap the
///       rendered detailed listing at `detailed_cap` entries
///   L3  shed batch/background work at admission; interactive still served
///       at L2 quality
///
/// Pressure is the worst of three normalized signals: queue depth / queue
/// capacity, in-flight memory / watermark, and recent-completion p99 /
/// target. Level transitions are hysteretic -- stepping *up* is immediate
/// (overload hurts now), stepping *down* requires the pressure to stay below
/// the lower threshold for `step_down_hold_ms` (so the ladder does not
/// oscillate at a threshold boundary).
///
/// Honesty rules, enforced by the service: every degraded answer is flagged
/// in AnswerSummary::degradation (rendered by report.cpp), and degraded
/// answers are never inserted into the AnswerCache -- a cache hit must
/// always be the full answer, never a brownout artifact outliving the
/// overload that caused it.
///
/// The controller is a passive object, externally synchronized by the
/// service mutex; it reads time only via the injected Clock.

#ifndef NED_SERVICE_BROWNOUT_H_
#define NED_SERVICE_BROWNOUT_H_

#include <cstdint>
#include <vector>

#include "common/timer.h"
#include "core/nedexplain.h"
#include "core/report.h"

namespace ned {

/// Ladder policy; embedded in ServiceOptions. Disabled by default: brownout
/// changes answer content, so operators opt in.
struct BrownoutOptions {
  bool enabled = false;
  /// Pressure thresholds for entering each level (monotone increasing).
  double level1_pressure = 0.50;
  double level2_pressure = 0.75;
  double level3_pressure = 0.90;
  /// At L2+, the rendered detailed listing is truncated to this many
  /// entries (the counts still report the true totals).
  size_t detailed_cap = 8;
  /// Completions sampled for the p99 pressure signal.
  size_t latency_window = 128;
  /// p99 target; 0 means "use the service's default deadline".
  int64_t p99_target_ms = 0;
  /// Pressure must stay below the step-down threshold this long before the
  /// level drops (step-up is immediate).
  int64_t step_down_hold_ms = 100;
};

/// Measured-pressure state machine for the ladder. Externally synchronized.
class BrownoutController {
 public:
  BrownoutController(BrownoutOptions options, const Clock* clock);

  /// Records one request completion for the p99 signal.
  void RecordCompletion(int64_t latency_ms);

  /// Recomputes pressure from current signals and advances the level.
  /// `queue_frac` = queued / capacity, `mem_frac` = in-flight bytes /
  /// watermark (0 when unlimited). Returns the new level.
  int Update(double queue_frac, double mem_frac);

  int level() const { return level_; }
  double pressure() const { return pressure_; }

  /// p99 of the recorded completion window (0 when empty).
  int64_t RecentP99Ms() const;

  /// Pure threshold map, no hysteresis: the level `pressure` alone asks
  /// for. Exposed so tests can sweep it for monotonicity.
  static int LevelForPressure(double pressure, const BrownoutOptions& options);

 private:
  const BrownoutOptions options_;
  const Clock* const clock_;

  int level_ = 0;
  double pressure_ = 0.0;
  /// When the measured level first dropped below level_; reset whenever the
  /// measurement climbs back. Step-down commits after step_down_hold_ms.
  bool step_down_pending_ = false;
  Clock::TimePoint step_down_since_{};

  /// Fixed-size ring of recent completion latencies.
  std::vector<int64_t> window_;
  size_t window_next_ = 0;
  size_t window_filled_ = 0;
};

/// Applies level `level`'s computation cuts to engine options:
/// L1+ disables the secondary answer, L2+ drops TabQ dumps.
void ApplyBrownoutToOptions(int level, NedExplainOptions* options);

/// Stamps the degradation flag on a freshly computed summary and applies
/// L2's rendering cap to the detailed listing. No-op at level 0.
void ApplyBrownoutToSummary(int level, size_t detailed_cap,
                            AnswerSummary* summary);

}  // namespace ned

#endif  // NED_SERVICE_BROWNOUT_H_
