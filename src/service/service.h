/// \file service.h
/// \brief WhyNotService: a concurrent, resource-governed why-not server.
///
/// Turns the single-request engine into a bounded multi-request service:
/// requests (SQL + why-not predicate + per-request deadline/budget) are
/// admitted onto a bounded priority queue and executed on a fixed worker
/// pool, each under its own ExecContext, against the immutable Catalog
/// snapshot pinned at admission. The contract, in order of the guarantees
/// it gives:
///
///  1. Admission control / load shedding. A full queue, a breached memory
///     watermark (summed memory budgets of admitted-but-unfinished
///     requests) or an exhausted per-client quota rejects the submission
///     *synchronously* with a retryable kUnavailable carrying a suggested
///     backoff -- the queue never grows unboundedly and overload cannot
///     push accepted requests past their deadlines.
///  2. Priority scheduling (service/scheduler.h). Requests carry a priority
///     class and client id; dispatch is strict-priority between classes and
///     earliest-deadline-first within one, and per-client fair-share quotas
///     keep one hot client from starving the rest. A request whose deadline
///     passes while still queued is failed fast with kDeadlineExceeded
///     (`expired_in_queue`) instead of wasting a worker.
///  3. Snapshot isolation. Each request pins the Catalog snapshot current
///     at admission and evaluates against it even if the database is
///     reloaded or swapped mid-flight.
///  4. Deadline enforcement. The request's deadline covers queue wait plus
///     execution; it is armed inside the ExecContext (cooperative
///     checkpoints) and backstopped by a watchdog thread that fires
///     RequestCancel on overrun, so a checkpoint gap cannot blow the
///     latency bound.
///  5. Brownout degradation (service/brownout.h, opt-in). Under measured
///     pressure the service steps down a quality ladder -- skip secondary
///     answers, condense output, finally shed non-interactive work -- so
///     goodput survives overload. Every degraded answer is flagged in its
///     AnswerSummary and never enters the answer cache.
///  6. Circuit breakers (service/breaker.h). Repeated non-retryable
///     failures of one request content key open a per-key breaker that
///     fast-fails duplicates with the cached error until a half-open probe
///     proves the key healthy again -- poison queries cost a bounded number
///     of executions.
///  7. Crash isolation and exactly-once responses. Any Status error or
///     tripped limit is contained in its request's response; every accepted
///     request resolves its future exactly once (Shutdown NED_CHECKs that
///     none is lost), and idempotent request keys deduplicate concurrent
///     duplicates and serve completed ones from cache without re-execution.
///  8. Crash-safe durability (opt-in via ServiceOptions::persist_dir; see
///     docs/DURABILITY.md). Accepted requests are write-ahead journaled
///     before admission and marked COMPLETE/SHED before their futures
///     resolve; completed full-fidelity answers spill to a durable store
///     keyed by database *content*. Drain() + Recover() extend the
///     exactly-once contract across process restarts -- including SIGKILL,
///     proven by tools/ned_crashtest.
///
/// Fault injection for the chaos harness comes in two flavours with
/// distinct semantics: engine checkpoint faults (`inject_fault_at_step`)
/// surface as honest *partial answers* (final, not retried), while service
/// transient faults (`inject_transient_failures`) surface as retryable
/// kUnavailable responses that the retry policy (retry.h) resolves.

#ifndef NED_SERVICE_SERVICE_H_
#define NED_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/subtree_cache.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/nedexplain.h"
#include "core/report.h"
#include "exec/exec_context.h"
#include "persist/answer_store.h"
#include "persist/journal.h"
#include "relational/catalog.h"
#include "service/breaker.h"
#include "service/brownout.h"
#include "service/request.h"
#include "service/scheduler.h"

namespace ned {

/// Sizing and policy knobs for one service instance.
struct ServiceOptions {
  /// Fixed worker pool size.
  int workers = 4;
  /// Bounded queue: submissions beyond this depth are shed.
  size_t queue_capacity = 64;
  /// Max admitted-but-unfinished (queued + running) requests per client id;
  /// 0 = unlimited. See SchedulerOptions::per_client_limit.
  size_t per_client_limit = 0;
  /// When non-zero, also shed while the summed memory budgets of admitted
  /// but unfinished requests exceed this watermark. Requests with no memory
  /// budget (request and default both 0) are invisible to it, so give
  /// `default_memory_budget` a value when using the watermark.
  size_t memory_watermark_bytes = 0;
  /// Applied when a request leaves deadline_ms == 0.
  int64_t default_deadline_ms = 2000;
  /// Applied when a request leaves the budget == 0 (0 = unlimited).
  size_t default_row_budget = 0;
  size_t default_memory_budget = 0;
  /// Suggested-backoff shape for shed work: base * (1 + queued/workers),
  /// capped. Clients may use it directly or feed it to RetryPolicy.
  int64_t base_backoff_ms = 5;
  int64_t max_backoff_ms = 500;
  /// Completed responses kept for idempotent re-submission (FIFO evicted).
  size_t completed_cache_capacity = 1 << 16;
  /// Watchdog scan period.
  int64_t watchdog_interval_ms = 2;
  /// Arm the deadline inside the ExecContext (cooperative checkpoints). Off,
  /// only the watchdog enforces it -- the service tests use that to prove
  /// the watchdog alone bounds a runaway evaluation.
  bool context_deadline = true;
  /// Byte budget of the content-addressed AnswerCache (cache/answer_cache.h):
  /// complete answers keyed by (db, snapshot version, normalized SQL,
  /// question, budgets class, engine options), served at Submit without
  /// admission or execution. 0 disables it. Distinct from
  /// `completed_cache_capacity`, which keys on the idempotency *request key*.
  size_t answer_cache_bytes = 8u << 20;
  /// Byte budget of the SubtreeCache shared by every engine run this service
  /// executes (memoized materialized subtree outputs, keyed by structure +
  /// relation data versions). 0 disables it.
  size_t subtree_cache_bytes = 32u << 20;
  /// Per-request-key circuit breaker policy (breaker.failure_threshold = 0
  /// disables breakers entirely).
  BreakerOptions breaker;
  /// Brownout ladder policy (disabled unless brownout.enabled). A zero
  /// brownout.p99_target_ms inherits `default_deadline_ms`.
  BrownoutOptions brownout;
  /// Intra-query parallelism: each request's evaluation may fan out onto up
  /// to this many threads, itself included (1 = serial, the default; answers
  /// are bit-identical either way). Coordinated against the worker pool:
  /// all requests draw extra threads from one service-wide TaskPool, so
  /// total intra-query parallelism stays bounded no matter how many
  /// requests run concurrently. See docs/PARALLELISM.md.
  int threads_per_request = 1;
  /// Size of that shared pool; 0 = workers * (threads_per_request - 1)
  /// (every worker is a coordinator contributing its own thread, the pool
  /// supplies the rest).
  size_t parallel_pool_threads = 0;
  /// Morsel activation threshold handed to each request's ExecContext
  /// (0 = engine default, kDefaultParallelMinRows). Tests lower it so small
  /// relations still exercise the partitioned paths.
  size_t parallel_min_rows = 0;
  /// Time source for deadlines, expiry, breaker probes and the watchdog.
  /// nullptr = the real steady clock. Tests inject a ManualClock here to
  /// make time-driven behaviour deterministic.
  const Clock* clock = nullptr;
  /// Root directory of the durability layer (docs/DURABILITY.md). Empty =
  /// no persistence (the default; nothing below applies). When set, the
  /// service write-ahead journals every accepted request under
  /// `<persist_dir>/journal` and spills completed full-fidelity answers to
  /// `<persist_dir>/store`; Recover() replays them after a restart.
  std::string persist_dir;
  /// Journal fsync policy and knobs (see persist/journal.h). The default
  /// kEveryNMs survives process death (including SIGKILL) with no fsync on
  /// the Submit path; kEveryRecord additionally survives power loss.
  FsyncPolicy journal_fsync = FsyncPolicy::kEveryNMs;
  /// Lazy-mode flush cadence: the power-loss exposure window, and the only
  /// cost the journal puts on serving (the flusher's fdatasync competes for
  /// CPU with workers -- measurable on single-core hosts). 250ms keeps that
  /// contention out of Submit p99 while staying 4x tighter than e.g.
  /// Redis's everysec. Process death (SIGKILL) needs no fsync at all.
  int journal_fsync_interval_ms = 250;
  size_t journal_segment_bytes = 4u << 20;
  /// When false, run journal-only durability: exactly-once admission and
  /// the idempotency book still survive restarts, but completed answers are
  /// not spilled to `<persist_dir>/store` -- a recovered completion simply
  /// recomputes on resubmission. The store's per-request cost (temp file +
  /// rename inside the completion path) is the bulk of what full
  /// persistence adds to Submit latency, so deployments that only need
  /// at-most-once semantics can turn it off.
  bool persist_answers = true;
  /// fsync answer-store entry files and manifest (power-loss durability).
  bool persist_fsync_store = false;
  /// Deterministic crash injection for the durability layer's IO
  /// boundaries (ned_crashtest, persist_test); nullptr in production.
  CrashInjector* crash_injector = nullptr;
};

// WhyNotRequest lives in service/request.h (shared with the durability
// layer's request codec).

/// The final outcome of one execution attempt. `status` OK means the
/// request produced an answer -- possibly partial, see `answer.complete` --
/// while kUnavailable means a transient service-side failure worth
/// retrying; anything else is a permanent request error (bad SQL, unknown
/// database).
struct WhyNotResponse {
  std::string key;
  Status status;
  AnswerSummary answer;
  /// Catalog snapshot version the request was evaluated against.
  uint64_t snapshot_version = 0;
  /// 1-based execution attempt (counts transient-failure attempts).
  int attempt = 0;
  double queue_ms = 0;
  double exec_ms = 0;
  /// Suggested client backoff when `status` is retryable.
  int64_t retry_after_ms = 0;
  /// True when the answer was replayed from the content-addressed answer
  /// cache at Submit (no admission, no execution; attempt stays 0).
  bool served_from_answer_cache = false;
  /// True when the answer was replayed from the durable answer store
  /// (src/persist/answer_store.h) -- same no-admission, no-execution
  /// semantics as an answer-cache hit, but the answer survived a restart.
  bool served_from_answer_store = false;
  /// True when the request's deadline passed while it was still queued:
  /// `status` is kDeadlineExceeded and no worker ever ran it.
  bool expired_in_queue = false;
  /// True when an open circuit breaker short-circuited execution: `status`
  /// is the breaker's cached error for this content key.
  bool breaker_fast_fail = false;
  /// Per-request span trace (admission, queue wait, the engine's Fig. 5
  /// phases, finalize). Non-null only when the request set `collect_trace`;
  /// immutable once the response resolves. See docs/OBSERVABILITY.md.
  std::shared_ptr<const obs::Trace> trace;

  bool retryable() const { return status.code() == StatusCode::kUnavailable; }
};

/// The concurrent why-not service. All public methods are thread-safe.
class WhyNotService {
 public:
  /// Outcome of Submit. `status` OK: the request is admitted (or coalesced
  /// onto an identical in-flight/completed key) and `response` will resolve
  /// exactly once. kUnavailable: shed -- retry after `retry_after_ms`.
  /// Anything else (e.g. kNotFound for an unknown database, or a breaker
  /// fast-fail replaying a cached permanent error): permanent rejection, do
  /// not retry.
  struct Submission {
    Status status;
    int64_t retry_after_ms = 0;
    std::shared_future<WhyNotResponse> response;
    /// True when this submission attached to an existing key instead of
    /// admitting new work.
    bool deduped = false;
    /// True when an open breaker rejected the submission synchronously with
    /// its cached error (no admission, no execution).
    bool breaker_fast_fail = false;
    /// Admission-side span trace for submissions resolved synchronously
    /// (sheds, breaker fast-fails, cache/store hits). Requests that were
    /// admitted instead deliver their full trace on the WhyNotResponse.
    /// Non-null only when the request set `collect_trace`.
    std::shared_ptr<const obs::Trace> trace;
  };

  /// Monotonic counters; `Check` invariants are asserted from them.
  /// Snapshot struct only: the live values are registry-backed atomics
  /// (obs::Counter), so stats() is a lock-free thin read -- previously
  /// these were plain fields guarded by mu_ that tools read off-lock.
  struct Stats {
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_memory = 0;
    /// Sheds charged to a single client's fair-share quota.
    uint64_t shed_client_quota = 0;
    /// Non-interactive work shed at admission while the brownout ladder was
    /// at L3.
    uint64_t shed_brownout = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t deduped_inflight = 0;
    uint64_t served_from_cache = 0;
    uint64_t completed = 0;
    uint64_t transient_failures = 0;
    uint64_t watchdog_cancels = 0;
    /// Accepted requests failed fast with kDeadlineExceeded because their
    /// deadline passed in the queue. Final responses: counted in
    /// `completed`, so the exactly-once books still balance.
    uint64_t expired_in_queue = 0;
    /// Breaker short-circuits, both synchronous (at Submit, not accepted)
    /// and worker-side (accepted before the breaker opened; counted in
    /// `completed`).
    uint64_t breaker_fast_fails = 0;
    /// Answers computed at brownout level >= 1 (flagged in their summary).
    uint64_t degraded = 0;
    /// Complete-but-degraded answers kept out of the answer cache (the
    /// honesty gate: a cache hit is always a full-quality answer).
    uint64_t degraded_not_cached = 0;
    /// Content-addressed answer-cache traffic. Hits are served at Submit
    /// and are neither `accepted` nor `completed`, so the exactly-once
    /// books (`accepted == completed + transient_failures`) hold with the
    /// cache on -- ned_stress asserts this.
    uint64_t answer_cache_hits = 0;
    uint64_t answer_cache_misses = 0;
    uint64_t answer_cache_inserts = 0;
    uint64_t answer_cache_bypass = 0;
    /// Completed-but-partial answers that were *not* inserted (the
    /// completeness gate; see docs/CACHING.md).
    uint64_t partial_not_cached = 0;
    /// Durability-layer traffic (all zero with persistence off). Store hits
    /// are served at Submit like answer-cache hits: neither `accepted` nor
    /// `completed`, so the exactly-once books still balance.
    uint64_t journaled_accepts = 0;
    uint64_t journaled_completes = 0;
    uint64_t journaled_sheds = 0;
    /// Appends refused by a broken/failed journal. Fail-closed: the
    /// submission is shed with kUnavailable, never silently unjournaled.
    uint64_t journal_append_failures = 0;
    uint64_t answer_store_hits = 0;
    uint64_t answer_store_misses = 0;
    uint64_t answer_store_puts = 0;
  };

  /// Outcome of Drain (see method comment).
  struct DrainReport {
    /// Requests that were running at drain start and completed normally.
    size_t completed_inflight = 0;
    /// Queued requests resolved kUnavailable whose journal ACCEPT was left
    /// unresolved on purpose -- Recover() re-enqueues them next start.
    size_t journaled_queued = 0;
    /// Running requests cancelled because the drain deadline passed; their
    /// responses are honest partial answers, COMPLETE-journaled as usual.
    size_t cancelled = 0;
  };

  /// Outcome of Recover (see method comment).
  struct RecoveryReport {
    uint64_t replayed_records = 0;
    /// Completed-book entries restored from COMPLETE records whose answers
    /// are resident in the durable store.
    uint64_t restored_completed = 0;
    /// ACCEPTed-but-neither-COMPLETEd-nor-SHED requests found.
    uint64_t pending_found = 0;
    /// Pending requests answered straight from the durable store (no
    /// re-execution: exactly-once across the restart).
    uint64_t served_from_store = 0;
    /// Pending requests re-enqueued at background priority.
    uint64_t resubmitted = 0;
    /// Pending requests that could not be re-admitted (queue full); their
    /// ACCEPT is re-journaled so the next recovery retries them.
    uint64_t deferred = 0;
    /// Pending records dropped: undecodable payload or a database no longer
    /// registered. SHED-journaled so they do not accumulate.
    uint64_t dropped = 0;
  };

  WhyNotService(std::shared_ptr<Catalog> catalog, ServiceOptions options = {});
  ~WhyNotService();

  WhyNotService(const WhyNotService&) = delete;
  WhyNotService& operator=(const WhyNotService&) = delete;

  /// Invoked exactly once with the resolved response of an accepted
  /// submission -- see Submit below. Runs on whichever thread resolves the
  /// request: a worker (normal completion), the watchdog path, Drain, or
  /// the submitting thread itself (idempotency/cache/store hits resolved
  /// synchronously). The future is already ready when it runs. Keep it
  /// cheap and non-blocking: it executes inside the service's completion
  /// path, so a slow callback stalls a worker -- the HTTP frontend only
  /// copies the response into its event-loop queue and wakes the loop
  /// (src/net/server.cpp), which is the intended usage shape.
  using CompletionCallback = std::function<void(const WhyNotResponse&)>;

  /// Admission control; never blocks on a full queue (sheds instead).
  Submission Submit(WhyNotRequest request);

  /// Submit with push-style completion: iff the returned Submission has an
  /// OK status, `on_complete` fires exactly once with the final
  /// WhyNotResponse (equal to what `response.get()` yields). Non-OK
  /// submissions (sheds, breaker fast-fails, permanent rejections) resolve
  /// synchronously on the Submission itself and never invoke the callback.
  /// This is what lets the HTTP frontend hand a worker-completed answer
  /// back to its event loop without ever parking a thread on a future.
  Submission Submit(WhyNotRequest request, CompletionCallback on_complete);

  /// Stops the service. drain=true executes everything already queued;
  /// drain=false fails queued requests with kUnavailable and cancels
  /// running ones (their responses are honest partial answers). Either way
  /// every accepted request's future resolves before Shutdown returns --
  /// asserted via NED_CHECK. Idempotent. With persistence on, queued
  /// requests failed by drain=false keep their unresolved journal ACCEPT,
  /// so Recover() picks them up next start.
  void Shutdown(bool drain = true);

  /// Graceful stop for planned restarts (SIGTERM handlers): stops
  /// admission, lets requests already *running* finish (cancelling any
  /// still running past `deadline_ms`, which yields honest partial
  /// answers), and resolves *queued* requests with retryable kUnavailable
  /// while leaving their journal ACCEPTs unresolved -- with persistence on
  /// they are recovered, deduplicated and re-run by Recover() on the next
  /// start. Terminal like Shutdown: every accepted future resolves before
  /// return, and the journal is synced. See docs/DURABILITY.md for the
  /// Drain-vs-Shutdown contract.
  DrainReport Drain(int64_t deadline_ms);

  /// Replays the journal found at construction: restores the idempotency
  /// completed-book from COMPLETE records whose answers are resident in the
  /// durable store, then for every pending (accepted-not-completed) request
  /// either serves it from the store (same content: no re-execution) or
  /// re-enqueues it at background priority. Old journal segments are
  /// compacted away after the surviving state is re-journaled. Idempotent:
  /// a second call is a no-op returning an empty report -- recovery never
  /// double-enqueues. No-op (empty report) with persistence off.
  RecoveryReport Recover();

  Stats stats() const;
  size_t queue_depth() const;
  const ServiceOptions& options() const { return options_; }

  /// The service's unified metrics registry (src/obs/): every counter in
  /// Stats, latency histograms (ned_request_{queue,exec,total}_us) and
  /// mirror gauges for the scheduler, brownout, breaker, cache, journal and
  /// parallel-pool internals, refreshed by a collector at Collect() time.
  /// Collect() takes the service mutex via that collector -- never call it
  /// while holding locks that order after mu_. See docs/OBSERVABILITY.md
  /// for the catalog.
  obs::MetricsRegistry* metrics() const { return &registry_; }

  /// Current brownout ladder level (0 when brownout is disabled).
  int brownout_level() const;
  /// Breaker counters (all-zero when breakers are disabled).
  CircuitBreaker::Stats breaker_stats() const;
  /// Queued + running requests currently charged to `client_id`.
  size_t client_occupancy(const std::string& client_id) const;

  /// Occupancy/hit counters of the two content caches (all-zero when the
  /// corresponding byte budget is 0).
  LruStats subtree_cache_stats() const;
  LruStats answer_cache_stats() const;

  /// Threads in the shared intra-query pool (0 when threads_per_request <=
  /// 1) and the high-watermark of pool threads ever concurrently running
  /// intra-query work -- ned_stress asserts peak <= size.
  int parallel_pool_size() const;
  size_t parallel_peak_active() const;

  /// Durability-layer introspection (zero-value structs with persistence
  /// off).
  bool persistence_enabled() const { return journal_ != nullptr; }
  JournalStats journal_stats() const;
  AnswerStoreStats answer_store_stats() const;

 private:
  struct Job;
  using Scheduler = PriorityScheduler<std::shared_ptr<Job>>;

  /// Registry handles behind the Stats snapshot: one obs::Counter per
  /// field, registered once at construction. Increment sites need no lock;
  /// readers (stats(), exposition) are race-free by construction.
  struct StatCounters {
    obs::Counter* submitted = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* shed_queue_full = nullptr;
    obs::Counter* shed_memory = nullptr;
    obs::Counter* shed_client_quota = nullptr;
    obs::Counter* shed_brownout = nullptr;
    obs::Counter* rejected_shutdown = nullptr;
    obs::Counter* deduped_inflight = nullptr;
    obs::Counter* served_from_cache = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* transient_failures = nullptr;
    obs::Counter* watchdog_cancels = nullptr;
    obs::Counter* expired_in_queue = nullptr;
    obs::Counter* breaker_fast_fails = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* degraded_not_cached = nullptr;
    obs::Counter* answer_cache_hits = nullptr;
    obs::Counter* answer_cache_misses = nullptr;
    obs::Counter* answer_cache_inserts = nullptr;
    obs::Counter* answer_cache_bypass = nullptr;
    obs::Counter* partial_not_cached = nullptr;
    obs::Counter* journaled_accepts = nullptr;
    obs::Counter* journaled_completes = nullptr;
    obs::Counter* journaled_sheds = nullptr;
    obs::Counter* journal_append_failures = nullptr;
    obs::Counter* answer_store_hits = nullptr;
    obs::Counter* answer_store_misses = nullptr;
    obs::Counter* answer_store_puts = nullptr;
  };

  /// Submit's body. `on_complete` (never null; may hold an empty function)
  /// is moved onto the Job -- and nulled out -- when the submission attaches
  /// to admitted/in-flight work; left untouched for synchronous
  /// resolutions, which the public wrapper delivers inline.
  Submission SubmitImpl(WhyNotRequest request, CompletionCallback* on_complete);
  /// Registers every metric family and the mirror-gauge collector; runs
  /// once in the constructor before any thread starts.
  void RegisterMetrics();
  /// Refreshes the mirror gauges from subsystem stats (takes mu_ briefly).
  void CollectMirrors();
  void WorkerLoop();
  void WatchdogLoop();
  void Execute(const std::shared_ptr<Job>& job);
  /// Finalizes a queued job whose deadline passed before any worker ran it.
  void FailExpired(const std::shared_ptr<Job>& job);
  /// Resolves the job's promise and drops it from the in-flight books.
  /// `final` moves the response into the idempotency cache; transient
  /// failures instead clear the key so a retry re-executes.
  void Finalize(const std::shared_ptr<Job>& job, WhyNotResponse response,
                bool final);
  int64_t SuggestedBackoffLocked() const;
  /// Feeds current pressure signals to the brownout controller.
  void UpdateBrownoutLocked();
  /// Inserts into the idempotency completed-book with FIFO eviction.
  void RememberCompletedLocked(const std::string& key,
                               const WhyNotResponse& response);
  /// Journals a SHED record for `key` (best-effort; counts failures).
  void JournalShedLocked(const std::string& key);

  const std::shared_ptr<Catalog> catalog_;
  const ServiceOptions options_;
  /// Never null: options.clock or the real steady clock.
  const Clock* const clock_;
  /// Unified metrics registry; declared before every subsystem and thread
  /// so its handles outlive all increment sites. Mutable: registration and
  /// collection are internally synchronized, and const accessors (stats())
  /// read through it.
  mutable obs::MetricsRegistry registry_;
  StatCounters stat_;
  /// End-to-end latency histograms, observed at finalize (µs, default
  /// bucket ladder). Queue covers submit->dispatch, exec covers the worker,
  /// total is their sum.
  obs::Histogram* queue_us_ = nullptr;
  obs::Histogram* exec_us_ = nullptr;
  obs::Histogram* total_us_ = nullptr;
  /// Both caches are internally locked; nullptr when disabled by options.
  const std::unique_ptr<SubtreeCache> subtree_cache_;
  const std::unique_ptr<AnswerCache> answer_cache_;
  /// Internally locked (workers call End outside mu_); null when disabled.
  const std::unique_ptr<CircuitBreaker> breaker_;
  /// Shared intra-query task pool (docs/PARALLELISM.md); null when
  /// threads_per_request <= 1. Declared before the worker threads so it
  /// outlives every evaluation.
  const std::unique_ptr<TaskPool> task_pool_;
  /// Durability layer; both null when options.persist_dir is empty. The
  /// journal and store are internally locked (appends from Submit/Finalize
  /// hold mu_ first; store entry-file IO -- Submit lookups and Execute puts
  /// -- runs with mu_ released so store latency never blocks admission.
  /// The lock order service mu_ -> persist mutex is acyclic).
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<AnswerStore> answer_store_;
  /// Records replayed by Journal::Open at construction, consumed by the
  /// first Recover() call.
  std::vector<JournalRecord> recovered_records_;
  bool recovery_done_ = false;  // guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable watchdog_cv_;
  bool accepting_ = true;
  bool stopping_ = false;
  /// Priority/EDF queue + per-client occupancy; guarded by mu_.
  Scheduler scheduler_;
  /// Guarded by mu_; null when brownout is disabled.
  const std::unique_ptr<BrownoutController> brownout_;
  /// Accepted, not yet finalized (queued or running), by idempotency key.
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
  /// Execution-attempt counters per key (spans transient-failure retries).
  std::unordered_map<std::string, int> attempts_;
  /// Completed responses for idempotent re-submission + FIFO eviction order.
  std::unordered_map<std::string, WhyNotResponse> completed_;
  std::deque<std::string> completed_fifo_;
  /// Summed memory budgets of in-flight requests (watermark accounting).
  size_t admitted_bytes_ = 0;
  uint64_t next_auto_key_ = 0;
  /// Last brownout level seen, for the transition counter; guarded by mu_.
  int last_brownout_level_ = 0;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace ned

#endif  // NED_SERVICE_SERVICE_H_
