#include "service/brownout.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace ned {

BrownoutController::BrownoutController(BrownoutOptions options,
                                       const Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {
  window_.resize(std::max<size_t>(1, options_.latency_window), 0);
}

void BrownoutController::RecordCompletion(int64_t latency_ms) {
  window_[window_next_] = latency_ms;
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
}

int64_t BrownoutController::RecentP99Ms() const {
  if (window_filled_ == 0) return 0;
  std::vector<int64_t> sorted(window_.begin(),
                              window_.begin() + window_filled_);
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = (sorted.size() * 99) / 100;
  return sorted[std::min(rank, sorted.size() - 1)];
}

int BrownoutController::LevelForPressure(double pressure,
                                         const BrownoutOptions& options) {
  if (pressure >= options.level3_pressure) return 3;
  if (pressure >= options.level2_pressure) return 2;
  if (pressure >= options.level1_pressure) return 1;
  return 0;
}

int BrownoutController::Update(double queue_frac, double mem_frac) {
  if (!options_.enabled) return 0;
  double latency_frac = 0.0;
  if (options_.p99_target_ms > 0) {
    latency_frac = static_cast<double>(RecentP99Ms()) /
                   static_cast<double>(options_.p99_target_ms);
  }
  pressure_ = std::max({queue_frac, mem_frac, latency_frac});
  const int measured = LevelForPressure(pressure_, options_);
  if (measured >= level_) {
    // Step up (or hold) immediately; cancel any pending step-down.
    level_ = measured;
    step_down_pending_ = false;
    return level_;
  }
  // Measured level is lower: only commit after the hold period.
  const Clock::TimePoint now = clock_->Now();
  if (!step_down_pending_) {
    step_down_pending_ = true;
    step_down_since_ = now;
    return level_;
  }
  if (now - step_down_since_ >=
      std::chrono::milliseconds(options_.step_down_hold_ms)) {
    // One rung at a time, so recovery from L3 passes through L2/L1 and the
    // hold period re-arms at each rung.
    --level_;
    step_down_pending_ = false;
  }
  return level_;
}

void ApplyBrownoutToOptions(int level, NedExplainOptions* options) {
  if (level >= 1) options->compute_secondary = false;
  if (level >= 2) options->keep_tabq_dump = false;
}

void ApplyBrownoutToSummary(int level, size_t detailed_cap,
                            AnswerSummary* summary) {
  if (level <= 0) return;
  summary->degradation_level = level;
  if (level >= 2 && summary->detailed.size() > detailed_cap) {
    const size_t dropped = summary->detailed.size() - detailed_cap;
    summary->detailed.resize(detailed_cap);
    summary->detailed.push_back(
        StrCat("... ", dropped, " more entries elided (brownout L", level,
               ")"));
  }
  summary->degradation =
      level >= 2 ? StrCat("L", level, ":condensed-focus") : "L1:no-secondary";
}

}  // namespace ned
