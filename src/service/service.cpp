#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "sql/binder.h"

namespace ned {

namespace {
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}
}  // namespace

/// One admitted request: everything its execution needs, pinned at
/// admission. The shared_ptr is held by the queue, the in-flight map and
/// (transiently) the executing worker; the watchdog reaches the ExecContext
/// through the in-flight map under the service mutex.
struct WhyNotService::Job {
  WhyNotRequest request;
  Catalog::Snapshot snapshot;
  /// Non-empty when a complete answer should be inserted into the
  /// content-addressed answer cache on completion (the Submit-time lookup
  /// missed and nothing disqualified the request from caching).
  std::string answer_cache_key;
  std::shared_ptr<ExecContext> ctx;
  Clock::time_point submit_time;
  Clock::time_point deadline;
  /// Bytes charged against the admission watermark for this request.
  size_t memory_charge = 0;
  bool running = false;          // guarded by mu_
  bool watchdog_fired = false;   // guarded by mu_
  std::promise<WhyNotResponse> promise;
  std::shared_future<WhyNotResponse> future;
};

namespace {

/// Packs the NedExplainOptions bits that change answer content into the
/// answer-cache key. keep_tabq_dump is excluded: it only affects the
/// NedExplainResult dump, never the AnswerSummary being cached.
uint32_t EngineOptionBits(const NedExplainOptions& opts) {
  return (opts.enable_early_termination ? 1u : 0u) |
         (opts.compute_secondary ? 2u : 0u);
}

}  // namespace

WhyNotService::WhyNotService(std::shared_ptr<Catalog> catalog,
                             ServiceOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      subtree_cache_(options.subtree_cache_bytes > 0
                         ? std::make_unique<SubtreeCache>(
                               options.subtree_cache_bytes)
                         : nullptr),
      answer_cache_(options.answer_cache_bytes > 0
                        ? std::make_unique<AnswerCache>(
                              options.answer_cache_bytes)
                        : nullptr) {
  NED_CHECK_MSG(catalog_ != nullptr, "service needs a catalog");
  NED_CHECK_MSG(options_.workers > 0, "service needs at least one worker");
  NED_CHECK_MSG(options_.queue_capacity > 0, "queue capacity must be > 0");
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

WhyNotService::~WhyNotService() { Shutdown(/*drain=*/true); }

int64_t WhyNotService::SuggestedBackoffLocked() const {
  const int64_t load_factor =
      1 + static_cast<int64_t>(queue_.size()) / options_.workers;
  return std::min(options_.base_backoff_ms * load_factor,
                  options_.max_backoff_ms);
}

WhyNotService::Submission WhyNotService::Submit(WhyNotRequest request) {
  Submission sub;
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (request.key.empty()) {
    request.key = StrCat("auto-", ++next_auto_key_);
  }
  if (!accepting_) {
    ++stats_.rejected_shutdown;
    sub.status = Status::Unavailable("service shutting down");
    return sub;
  }
  // Idempotency: a completed key re-serves its cached response; an
  // in-flight key coalesces onto the pending execution. Neither runs twice.
  if (auto it = completed_.find(request.key); it != completed_.end()) {
    ++stats_.served_from_cache;
    std::promise<WhyNotResponse> ready;
    ready.set_value(it->second);
    sub.status = Status::OK();
    sub.deduped = true;
    sub.response = ready.get_future().share();
    return sub;
  }
  if (auto it = inflight_.find(request.key); it != inflight_.end()) {
    ++stats_.deduped_inflight;
    sub.status = Status::OK();
    sub.deduped = true;
    sub.response = it->second->future;
    return sub;
  }
  // Pin the catalog snapshot at admission: this request sees the database
  // as of now, whatever reloads happen while it waits or runs. Pinned
  // before the load sheds because an answer-cache hit (below) is served
  // without consuming queue or memory capacity.
  auto snapshot = catalog_->GetSnapshot(request.db_name);
  if (!snapshot.ok()) {
    sub.status = snapshot.status();  // permanent: do not retry
    return sub;
  }
  const size_t mem = request.memory_budget != 0 ? request.memory_budget
                                                : options_.default_memory_budget;
  const size_t rows = request.row_budget != 0 ? request.row_budget
                                              : options_.default_row_budget;

  // Content-addressed answer cache: a complete answer already computed for
  // this (snapshot, SQL, question, budgets class, options) is replayed
  // immediately -- no admission, no execution, exactly-once books
  // untouched. The key embeds the snapshot version pinned above, so a
  // reload can never serve a stale answer (stale keys simply stop being
  // generated and age out of the LRU). Chaos-injected requests bypass:
  // their faults must actually execute.
  std::string answer_key;
  if (answer_cache_ != nullptr && !request.bypass_answer_cache &&
      request.inject_fault_at_step == 0 &&
      request.inject_transient_failures == 0) {
    answer_key = MakeAnswerCacheKey(
        request.db_name, snapshot->version, request.sql,
        request.question.ToString(), rows, mem,
        EngineOptionBits(request.engine_options));
    if (AnswerCache::Ptr hit = answer_cache_->Lookup(answer_key)) {
      ++stats_.answer_cache_hits;
      WhyNotResponse response;
      response.key = request.key;
      response.status = Status::OK();
      response.answer = hit->summary;
      response.snapshot_version = snapshot->version;
      response.served_from_answer_cache = true;
      // Keep the idempotency contract: this key now has a completed
      // response, so a resubmission is served from the key cache. Not a
      // `completed` execution, though -- the exactly-once books count only
      // admitted work.
      if (options_.completed_cache_capacity > 0) {
        completed_fifo_.push_back(request.key);
        completed_[request.key] = response;
        while (completed_fifo_.size() > options_.completed_cache_capacity) {
          completed_.erase(completed_fifo_.front());
          completed_fifo_.pop_front();
        }
      }
      std::promise<WhyNotResponse> ready;
      ready.set_value(std::move(response));
      sub.status = Status::OK();
      sub.response = ready.get_future().share();
      return sub;
    }
    ++stats_.answer_cache_misses;
  } else if (answer_cache_ != nullptr) {
    ++stats_.answer_cache_bypass;
  }

  // Admission control: shed rather than queue unboundedly.
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.shed_queue_full;
    sub.status = Status::Unavailable(
        StrCat("overloaded: queue full (", queue_.size(), " queued)"));
    sub.retry_after_ms = SuggestedBackoffLocked();
    return sub;
  }
  // The watermark only sheds when other work is admitted: a request whose
  // budget alone exceeds it must still be runnable once the service drains,
  // or a retry loop would never terminate.
  if (options_.memory_watermark_bytes != 0 && !inflight_.empty() &&
      admitted_bytes_ + mem > options_.memory_watermark_bytes) {
    ++stats_.shed_memory;
    sub.status = Status::Unavailable(
        StrCat("overloaded: memory watermark (", admitted_bytes_, " + ", mem,
               " > ", options_.memory_watermark_bytes, " bytes)"));
    sub.retry_after_ms = SuggestedBackoffLocked();
    return sub;
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->snapshot = *snapshot;
  job->answer_cache_key = std::move(answer_key);
  job->submit_time = Clock::now();
  const int64_t deadline_ms = job->request.deadline_ms != 0
                                  ? job->request.deadline_ms
                                  : options_.default_deadline_ms;
  job->deadline = job->submit_time + std::chrono::milliseconds(deadline_ms);
  job->memory_charge = mem;
  job->ctx = std::make_shared<ExecContext>();
  if (options_.context_deadline) job->ctx->set_deadline(job->deadline);
  if (rows != 0) job->ctx->set_row_budget(rows);
  if (mem != 0) job->ctx->set_memory_budget(mem);
  if (job->request.inject_fault_at_step != 0) {
    job->ctx->InjectFailureAt(job->request.inject_fault_at_step);
  }
  job->future = job->promise.get_future().share();

  queue_.push_back(job);
  inflight_.emplace(job->request.key, job);
  admitted_bytes_ += mem;
  ++stats_.accepted;
  sub.status = Status::OK();
  sub.response = job->future;
  lock.unlock();
  work_cv_.notify_one();
  return sub;
}

void WhyNotService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      job->running = true;
    }
    Execute(job);
  }
}

void WhyNotService::Execute(const std::shared_ptr<Job>& job) {
  const WhyNotRequest& req = job->request;
  WhyNotResponse response;
  response.key = req.key;
  response.snapshot_version = job->snapshot.version;
  const Clock::time_point exec_start = Clock::now();
  response.queue_ms = MsSince(job->submit_time, exec_start);
  {
    std::lock_guard<std::mutex> lock(mu_);
    response.attempt = ++attempts_[req.key];
  }
  // Injected transient infrastructure fault: retryable, unlike engine
  // checkpoint faults which produce final (partial) answers below.
  if (response.attempt <= req.inject_transient_failures) {
    response.status = Status::Unavailable(
        StrCat("injected transient fault (attempt ", response.attempt, ")"));
    {
      std::lock_guard<std::mutex> lock(mu_);
      response.retry_after_ms = SuggestedBackoffLocked();
      ++stats_.transient_failures;
    }
    response.exec_ms = MsSince(exec_start, Clock::now());
    Finalize(job, std::move(response), /*final=*/false);
    return;
  }

  // Crash isolation: every failure below lands in `response.status` for
  // this request alone; the worker and its siblings carry on.
  const Database& db = *job->snapshot.db;
  auto tree = CompileSql(req.sql, db);
  if (!tree.ok()) {
    response.status = tree.status();
    response.exec_ms = MsSince(exec_start, Clock::now());
    Finalize(job, std::move(response), /*final=*/true);
    return;
  }
  // Every engine run this service executes shares the service-wide subtree
  // cache; its keys pin relation data versions, so snapshots never bleed
  // into each other.
  NedExplainOptions engine_options = req.engine_options;
  if (subtree_cache_ != nullptr) {
    engine_options.subtree_cache = subtree_cache_.get();
  }
  auto engine = NedExplainEngine::Create(&*tree, &db, engine_options);
  if (!engine.ok()) {
    response.status = engine.status();
    response.exec_ms = MsSince(exec_start, Clock::now());
    Finalize(job, std::move(response), /*final=*/true);
    return;
  }
  auto result = engine->Explain(req.question, job->ctx.get());
  response.exec_ms = MsSince(exec_start, Clock::now());
  if (!result.ok()) {
    // Non-resource error (resource limits come back as OK partials).
    response.status = result.status();
  } else {
    response.status = Status::OK();
    response.answer = SummarizeResult(*engine, *result);
  }
  // Completeness gate: only answers that reflect the data -- not the budgets
  // of the run that produced them -- enter the content-addressed cache. A
  // partial answer is honest for its requester but must never be replayed
  // as authoritative for another.
  if (!job->answer_cache_key.empty() && answer_cache_ != nullptr &&
      response.status.ok()) {
    if (response.answer.complete) {
      auto cached = std::make_shared<CachedAnswer>();
      cached->summary = response.answer;
      cached->snapshot_version = job->snapshot.version;
      answer_cache_->Insert(job->answer_cache_key, std::move(cached));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.answer_cache_inserts;
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.partial_not_cached;
    }
  }
  Finalize(job, std::move(response), /*final=*/true);
}

void WhyNotService::Finalize(const std::shared_ptr<Job>& job,
                             WhyNotResponse response, bool final) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(job->request.key);
    admitted_bytes_ -= job->memory_charge;
    if (final) {
      ++stats_.completed;
      attempts_.erase(job->request.key);
      if (options_.completed_cache_capacity > 0) {
        completed_fifo_.push_back(job->request.key);
        completed_[job->request.key] = response;
        while (completed_fifo_.size() > options_.completed_cache_capacity) {
          completed_.erase(completed_fifo_.front());
          completed_fifo_.pop_front();
        }
      }
    }
    // Not final: the key leaves the books entirely, so a retry with the
    // same key re-executes (its attempt counter persists in attempts_).
  }
  job->promise.set_value(std::move(response));
}

void WhyNotService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms));
    const Clock::time_point now = Clock::now();
    for (auto& [key, job] : inflight_) {
      if (!job->watchdog_fired && now >= job->deadline) {
        // Backstop for checkpoint gaps: cooperative deadline checks should
        // normally trip first, but the watchdog guarantees the bound.
        job->ctx->RequestCancel();
        job->watchdog_fired = true;
        ++stats_.watchdog_cancels;
      }
    }
  }
}

void WhyNotService::Shutdown(bool drain) {
  std::vector<std::shared_ptr<Job>> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    if (!drain) {
      to_fail.assign(queue_.begin(), queue_.end());
      queue_.clear();
      for (auto& [key, job] : inflight_) {
        if (job->running) job->ctx->RequestCancel();
      }
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (const auto& job : to_fail) {
    WhyNotResponse response;
    response.key = job->request.key;
    response.status = Status::Unavailable("service shut down before execution");
    Finalize(job, std::move(response), /*final=*/false);
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  // The exactly-once invariant: every accepted request was finalized -- no
  // response lost (a promise with waiters would otherwise hang them) and,
  // by construction of Finalize, none resolved twice.
  std::lock_guard<std::mutex> lock(mu_);
  NED_CHECK_MSG(inflight_.empty(),
                "shutdown left accepted requests without responses");
  NED_CHECK(queue_.empty());
}

WhyNotService::Stats WhyNotService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t WhyNotService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

LruStats WhyNotService::subtree_cache_stats() const {
  return subtree_cache_ != nullptr ? subtree_cache_->stats() : LruStats{};
}

LruStats WhyNotService::answer_cache_stats() const {
  return answer_cache_ != nullptr ? answer_cache_->stats() : LruStats{};
}

}  // namespace ned
