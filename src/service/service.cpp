#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <utility>

#include "common/strings.h"
#include "exec/parallel.h"
#include "persist/wire.h"
#include "sql/binder.h"

namespace ned {

namespace {

/// Pool backing intra-query parallelism: workers coordinate their own
/// requests, the pool supplies the extra threads. 0 when serial.
size_t ResolvePoolThreads(const ServiceOptions& options) {
  if (options.threads_per_request <= 1) return 0;
  if (options.parallel_pool_threads != 0) return options.parallel_pool_threads;
  return static_cast<size_t>(options.workers) *
         static_cast<size_t>(options.threads_per_request - 1);
}

double MsSince(Clock::TimePoint start, Clock::TimePoint end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Packs the NedExplainOptions bits that change answer content into the
/// answer-cache key. keep_tabq_dump is excluded: it only affects the
/// NedExplainResult dump, never the AnswerSummary being cached.
uint32_t EngineOptionBits(const NedExplainOptions& opts) {
  return (opts.enable_early_termination ? 1u : 0u) |
         (opts.compute_secondary ? 2u : 0u);
}

/// Brownout with p99_target_ms = 0 inherits the service default deadline.
BrownoutOptions ResolveBrownout(const ServiceOptions& options) {
  BrownoutOptions resolved = options.brownout;
  if (resolved.p99_target_ms == 0) {
    resolved.p99_target_ms = options.default_deadline_ms;
  }
  return resolved;
}

/// Best-effort request-key extraction from a replayed journal record.
/// Every record type leads with the key (ACCEPT behind the codec-version
/// byte); empty when the payload is too mangled to yield one.
std::string RecoveredRecordKey(const JournalRecord& record) {
  wire::Reader reader(record.payload);
  if (record.type == JournalRecordType::kAccept) {
    uint8_t version = 0;
    reader.GetU8(&version);
  }
  std::string key;
  if (!reader.GetStr(&key)) key.clear();
  return key;
}

/// Parses the N of an "auto-N" service-assigned key; 0 when `key` has any
/// other shape (client-chosen keys are never shaped like this unless the
/// client opted into the collision).
uint64_t AutoKeyNumber(const std::string& key) {
  constexpr std::string_view kPrefix = "auto-";
  if (key.size() <= kPrefix.size() ||
      key.compare(0, kPrefix.size(), kPrefix) != 0) {
    return 0;
  }
  uint64_t n = 0;
  for (size_t i = kPrefix.size(); i < key.size(); ++i) {
    const char c = key[i];
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

}  // namespace

/// One admitted request: everything its execution needs, pinned at
/// admission. The shared_ptr is held by the scheduler, the in-flight map
/// and (transiently) the executing worker; the watchdog reaches the
/// ExecContext through the in-flight map under the service mutex.
struct WhyNotService::Job {
  WhyNotRequest request;
  Catalog::Snapshot snapshot;
  /// Non-empty when a complete answer should be inserted into the
  /// content-addressed answer cache on completion (the Submit-time lookup
  /// missed and nothing disqualified the request from caching).
  std::string answer_cache_key;
  /// Normalized content key for the circuit breaker; empty when breakers
  /// are disabled.
  std::string breaker_key;
  /// Restart-stable durable-store key; empty when persistence is off or
  /// the request is excluded from the store (bypass, chaos knobs).
  std::string store_key;
  /// Set by Execute when the answer was durably stored; recorded in the
  /// COMPLETE journal record so recovery knows the store has it.
  bool stored_answer = false;
  /// Set by Drain/Shutdown on queued requests they fail: suppresses the
  /// SHED record a non-final finalize would otherwise journal, leaving the
  /// ACCEPT unresolved on purpose -- that is what makes the request
  /// recoverable.
  bool keep_recoverable = false;
  /// Per-request span trace; null unless the request set collect_trace.
  /// Single-threaded by design: the submit thread writes the admission
  /// spans, then exactly one worker writes the rest -- the handoff is
  /// sequenced by mu_ (admit under lock, pop under lock), and expired/
  /// drained jobs are likewise owned by one thread after leaving the
  /// scheduler. The watchdog never touches it.
  std::shared_ptr<obs::Trace> trace;
  /// Open "queue_wait" span id; closed at dispatch (or defensively by
  /// Finalize for jobs that never reach a worker). -1 = none.
  int32_t queue_wait_span = -1;
  std::shared_ptr<ExecContext> ctx;
  Clock::TimePoint submit_time;
  Clock::TimePoint deadline;
  /// Bytes charged against the admission watermark for this request.
  size_t memory_charge = 0;
  bool running = false;          // guarded by mu_
  bool watchdog_fired = false;   // guarded by mu_
  std::promise<WhyNotResponse> promise;
  std::shared_future<WhyNotResponse> future;
  /// Push-style completion observers (see WhyNotService::CompletionCallback).
  /// Appended under mu_ (by the admitting Submit and by deduping Submits
  /// that coalesce onto this job); moved out under the same mu_ hold in
  /// which Finalize retires the job from inflight_, so no append can race
  /// the move. Invoked after the promise resolves.
  std::vector<WhyNotService::CompletionCallback> callbacks;
};

WhyNotService::WhyNotService(std::shared_ptr<Catalog> catalog,
                             ServiceOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      subtree_cache_(options.subtree_cache_bytes > 0
                         ? std::make_unique<SubtreeCache>(
                               options.subtree_cache_bytes)
                         : nullptr),
      answer_cache_(options.answer_cache_bytes > 0
                        ? std::make_unique<AnswerCache>(
                              options.answer_cache_bytes)
                        : nullptr),
      breaker_(options.breaker.failure_threshold > 0
                   ? std::make_unique<CircuitBreaker>(options.breaker, clock_)
                   : nullptr),
      task_pool_(options.threads_per_request > 1
                     ? std::make_unique<TaskPool>(
                           static_cast<int>(ResolvePoolThreads(options)))
                     : nullptr),
      scheduler_(SchedulerOptions{options.queue_capacity,
                                  options.per_client_limit}),
      brownout_(options.brownout.enabled
                    ? std::make_unique<BrownoutController>(
                          ResolveBrownout(options), clock_)
                    : nullptr) {
  NED_CHECK_MSG(catalog_ != nullptr, "service needs a catalog");
  NED_CHECK_MSG(options_.workers > 0, "service needs at least one worker");
  NED_CHECK_MSG(options_.queue_capacity > 0, "queue capacity must be > 0");
  RegisterMetrics();
  if (!options_.persist_dir.empty()) {
    // Durability must be trustworthy or absent: an unopenable journal or
    // store directory is a deployment error, not something to run without.
    JournalOptions jopts;
    jopts.dir = options_.persist_dir + "/journal";
    jopts.segment_bytes = options_.journal_segment_bytes;
    jopts.fsync = options_.journal_fsync;
    jopts.fsync_interval_ms = options_.journal_fsync_interval_ms;
    jopts.crash = options_.crash_injector;
    auto journal = Journal::Open(jopts, &recovered_records_);
    NED_CHECK_MSG(journal.ok(),
                  "cannot open request journal: " + journal.status().message());
    journal_ = std::move(*journal);
    // Auto-assigned keys must stay unique across the restart boundary: the
    // replayed records carry "auto-N" keys minted by previous incarnations
    // (Recover() restores their completed-book entries and resubmits their
    // pending requests under those same keys), so a counter restarting at 0
    // would hand a new empty-key submission an already-taken key and dedupe
    // it onto another request's answer. Seed past everything the journal
    // remembers.
    for (const JournalRecord& record : recovered_records_) {
      next_auto_key_ =
          std::max(next_auto_key_, AutoKeyNumber(RecoveredRecordKey(record)));
    }
    if (options_.persist_answers) {
      AnswerStoreOptions sopts;
      sopts.dir = options_.persist_dir + "/store";
      sopts.fsync = options_.persist_fsync_store;
      sopts.crash = options_.crash_injector;
      auto store = AnswerStore::Open(sopts);
      NED_CHECK_MSG(store.ok(),
                    "cannot open answer store: " + store.status().message());
      answer_store_ = std::move(*store);
    }
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

WhyNotService::~WhyNotService() { Shutdown(/*drain=*/true); }

void WhyNotService::RegisterMetrics() {
  // Metric catalog lives in docs/OBSERVABILITY.md; names and label sets are
  // part of the exposition golden contract -- change them deliberately.
  auto req = [this](const char* event) {
    return registry_.GetCounter("ned_service_requests_total",
                                {{"event", event}});
  };
  stat_.submitted = req("submitted");
  stat_.accepted = req("accepted");
  stat_.completed = req("completed");
  stat_.rejected_shutdown = req("rejected_shutdown");
  stat_.deduped_inflight = req("deduped_inflight");
  stat_.served_from_cache = req("served_from_completed");
  stat_.transient_failures = req("transient_failure");
  stat_.watchdog_cancels = req("watchdog_cancel");
  stat_.expired_in_queue = req("expired_in_queue");
  stat_.breaker_fast_fails = req("breaker_fast_fail");
  stat_.degraded = req("degraded");
  stat_.degraded_not_cached = req("degraded_not_cached");
  stat_.partial_not_cached = req("partial_not_cached");
  auto shed = [this](const char* reason) {
    return registry_.GetCounter("ned_service_shed_total", {{"reason", reason}});
  };
  stat_.shed_queue_full = shed("queue_full");
  stat_.shed_memory = shed("memory");
  stat_.shed_client_quota = shed("client_quota");
  stat_.shed_brownout = shed("brownout");
  auto cache = [this](const char* event) {
    return registry_.GetCounter("ned_answer_cache_total", {{"event", event}});
  };
  stat_.answer_cache_hits = cache("hit");
  stat_.answer_cache_misses = cache("miss");
  stat_.answer_cache_inserts = cache("insert");
  stat_.answer_cache_bypass = cache("bypass");
  auto store = [this](const char* event) {
    return registry_.GetCounter("ned_answer_store_total", {{"event", event}});
  };
  stat_.answer_store_hits = store("hit");
  stat_.answer_store_misses = store("miss");
  stat_.answer_store_puts = store("put");
  auto journal = [this](const char* event) {
    return registry_.GetCounter("ned_journal_total", {{"event", event}});
  };
  stat_.journaled_accepts = journal("accept");
  stat_.journaled_completes = journal("complete");
  stat_.journaled_sheds = journal("shed");
  stat_.journal_append_failures = journal("append_failure");

  queue_us_ = registry_.GetHistogram("ned_request_queue_us", {},
                                     obs::DefaultLatencyBoundsUs());
  exec_us_ = registry_.GetHistogram("ned_request_exec_us", {},
                                    obs::DefaultLatencyBoundsUs());
  total_us_ = registry_.GetHistogram("ned_request_total_us", {},
                                     obs::DefaultLatencyBoundsUs());

  registry_.RegisterCollector([this] { CollectMirrors(); });
}

void WhyNotService::CollectMirrors() {
  // Mirror gauges: subsystems keep their own internally-locked stats; the
  // collector copies them into the registry at Collect() time instead of
  // threading registry handles through every constructor. Runs outside the
  // registry's shard locks; takes mu_ briefly for the scheduler-side view.
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.GetGauge("ned_queue_depth")
        ->Set(static_cast<int64_t>(scheduler_.size()));
    registry_.GetGauge("ned_inflight_requests")
        ->Set(static_cast<int64_t>(inflight_.size()));
    registry_.GetGauge("ned_admitted_bytes")
        ->Set(static_cast<int64_t>(admitted_bytes_));
    registry_.GetGauge("ned_brownout_level")
        ->Set(brownout_ != nullptr ? brownout_->level() : 0);
  }
  if (breaker_ != nullptr) {
    const CircuitBreaker::Stats b = breaker_->stats();
    registry_.GetGauge("ned_breaker_opens")->Set(
        static_cast<int64_t>(b.opens));
    registry_.GetGauge("ned_breaker_reopens")
        ->Set(static_cast<int64_t>(b.reopens));
    registry_.GetGauge("ned_breaker_probes")
        ->Set(static_cast<int64_t>(b.probes));
    registry_.GetGauge("ned_breaker_fast_fails")
        ->Set(static_cast<int64_t>(b.fast_fails));
    registry_.GetGauge("ned_breaker_tracked_keys")
        ->Set(static_cast<int64_t>(b.tracked_keys));
  }
  auto mirror_cache = [this](const char* which, const LruStats& s) {
    auto gauge = [&](const char* field) {
      return registry_.GetGauge(StrCat("ned_cache_", field),
                                {{"cache", which}});
    };
    gauge("hits")->Set(static_cast<int64_t>(s.hits));
    gauge("misses")->Set(static_cast<int64_t>(s.misses));
    gauge("inserts")->Set(static_cast<int64_t>(s.inserts));
    gauge("evictions")->Set(static_cast<int64_t>(s.evictions));
    gauge("entries")->Set(static_cast<int64_t>(s.entries));
    gauge("bytes")->Set(static_cast<int64_t>(s.bytes));
  };
  if (subtree_cache_ != nullptr) {
    mirror_cache("subtree", subtree_cache_->stats());
  }
  if (answer_cache_ != nullptr) mirror_cache("answer", answer_cache_->stats());
  if (journal_ != nullptr) {
    const JournalStats j = journal_->stats();
    registry_.GetGauge("ned_journal_appends")
        ->Set(static_cast<int64_t>(j.appends));
    registry_.GetGauge("ned_journal_syncs")
        ->Set(static_cast<int64_t>(j.syncs));
    registry_.GetGauge("ned_journal_rotations")
        ->Set(static_cast<int64_t>(j.rotations));
    registry_.GetGauge("ned_journal_bytes_written")
        ->Set(static_cast<int64_t>(j.bytes_written));
  }
  if (task_pool_ != nullptr) {
    registry_.GetGauge("ned_parallel_pool_threads")
        ->Set(task_pool_->thread_count());
    registry_.GetGauge("ned_parallel_peak_active")
        ->Set(static_cast<int64_t>(task_pool_->peak_active()));
    registry_.GetGauge("ned_parallel_pool_tasks")
        ->Set(static_cast<int64_t>(task_pool_->pool_tasks_run()));
    registry_.GetGauge("ned_parallel_inline_tasks")
        ->Set(static_cast<int64_t>(task_pool_->inline_tasks_run()));
  }
}

int64_t WhyNotService::SuggestedBackoffLocked() const {
  const int64_t load_factor =
      1 + static_cast<int64_t>(scheduler_.size()) / options_.workers;
  return std::min(options_.base_backoff_ms * load_factor,
                  options_.max_backoff_ms);
}

void WhyNotService::RememberCompletedLocked(const std::string& key,
                                            const WhyNotResponse& response) {
  if (options_.completed_cache_capacity == 0) return;
  completed_fifo_.push_back(key);
  completed_[key] = response;
  while (completed_fifo_.size() > options_.completed_cache_capacity) {
    completed_.erase(completed_fifo_.front());
    completed_fifo_.pop_front();
  }
}

void WhyNotService::JournalShedLocked(const std::string& key) {
  if (journal_ == nullptr) return;
  std::string payload;
  wire::PutStr(&payload, key);
  if (journal_->Append(JournalRecordType::kShed, payload).ok()) {
    stat_.journaled_sheds->Increment();
  } else {
    stat_.journal_append_failures->Increment();
  }
}

void WhyNotService::UpdateBrownoutLocked() {
  if (brownout_ == nullptr) return;
  const double queue_frac = static_cast<double>(scheduler_.size()) /
                            static_cast<double>(options_.queue_capacity);
  const double mem_frac =
      options_.memory_watermark_bytes != 0
          ? static_cast<double>(admitted_bytes_) /
                static_cast<double>(options_.memory_watermark_bytes)
          : 0.0;
  brownout_->Update(queue_frac, mem_frac);
  // Ladder transitions are rare enough that the per-edge counter lookup
  // (shard lock + map probe) costs nothing on the steady path.
  const int level = brownout_->level();
  if (level != last_brownout_level_) {
    registry_
        .GetCounter("ned_brownout_transitions_total",
                    {{"from", std::to_string(last_brownout_level_)},
                     {"to", std::to_string(level)}})
        ->Increment();
    last_brownout_level_ = level;
  }
}

WhyNotService::Submission WhyNotService::Submit(WhyNotRequest request) {
  CompletionCallback none;
  return SubmitImpl(std::move(request), &none);
}

WhyNotService::Submission WhyNotService::Submit(WhyNotRequest request,
                                                CompletionCallback on_complete) {
  Submission sub = SubmitImpl(std::move(request), &on_complete);
  // SubmitImpl nulled the callback iff it attached it to a job (the job's
  // Finalize will fire it). A callback still here on an OK submission means
  // the request resolved synchronously -- cache/store/idempotency hit -- so
  // the future is already ready and the exactly-once contract is honored by
  // delivering inline, outside every service lock.
  if (on_complete && sub.status.ok()) on_complete(sub.response.get());
  return sub;
}

WhyNotService::Submission WhyNotService::SubmitImpl(
    WhyNotRequest request, CompletionCallback* on_complete) {
  Submission sub;
  // Per-request trace: the admission span covers everything Submit does.
  // Sync outcomes (sheds, dedupes, cache hits) deliver it on the
  // Submission; admitted requests hand it to the Job and deliver the full
  // trace on the response.
  std::shared_ptr<obs::Trace> trace;
  int32_t admission_span = -1;
  if (request.collect_trace) {
    trace = std::make_shared<obs::Trace>(clock_);
    admission_span = trace->OpenSpan("admission");
  }
  const auto finish_sync = [&] {
    if (trace != nullptr) {
      trace->CloseSpan(admission_span);
      sub.trace = trace;
    }
  };
  std::unique_lock<std::mutex> lock(mu_);
  stat_.submitted->Increment();
  if (request.key.empty()) {
    request.key = StrCat("auto-", ++next_auto_key_);
  }
  if (!accepting_) {
    stat_.rejected_shutdown->Increment();
    sub.status = Status::Unavailable("service shutting down");
    finish_sync();
    return sub;
  }
  // Idempotency: a completed key re-serves its cached response; an
  // in-flight key coalesces onto the pending execution. Neither runs twice.
  if (auto it = completed_.find(request.key); it != completed_.end()) {
    stat_.served_from_cache->Increment();
    std::promise<WhyNotResponse> ready;
    ready.set_value(it->second);
    sub.status = Status::OK();
    sub.deduped = true;
    sub.response = ready.get_future().share();
    finish_sync();
    return sub;
  }
  if (auto it = inflight_.find(request.key); it != inflight_.end()) {
    stat_.deduped_inflight->Increment();
    if (*on_complete) {
      // Coalesce the observer onto the pending execution: its Finalize
      // fires every registered callback (we hold mu_, so the job cannot
      // retire between the find above and this append).
      it->second->callbacks.push_back(std::move(*on_complete));
      *on_complete = nullptr;
    }
    sub.status = Status::OK();
    sub.deduped = true;
    sub.response = it->second->future;
    finish_sync();
    return sub;
  }
  // Circuit breaker: a content key with an open breaker is rejected
  // synchronously with its cached permanent error -- no snapshot pin, no
  // admission, no worker. Probe admission (half-open) is decided at the
  // worker in Execute, not here.
  std::string breaker_key;
  if (breaker_ != nullptr) {
    breaker_key = MakeBreakerKey(request.db_name, request.sql,
                                 request.question.ToString());
    CircuitBreaker::Decision decision;
    {
      obs::SpanScope span(trace.get(), "breaker_check");
      decision = breaker_->Check(breaker_key);
    }
    if (decision.gate == CircuitBreaker::Gate::kFastFail) {
      stat_.breaker_fast_fails->Increment();
      sub.status = decision.cached_error;
      sub.breaker_fast_fail = true;
      finish_sync();
      return sub;
    }
  }
  // Pin the catalog snapshot at admission: this request sees the database
  // as of now, whatever reloads happen while it waits or runs. Pinned
  // before the load sheds because an answer-cache hit (below) is served
  // without consuming queue or memory capacity. With persistence on, the
  // snapshot also carries the content fingerprint the durable key embeds
  // (cached per version -- only the first pin after a reload hashes).
  auto snapshot = [&] {
    obs::SpanScope span(trace.get(), "snapshot_pin");
    return answer_store_ != nullptr
               ? catalog_->GetSnapshotWithFingerprint(request.db_name)
               : catalog_->GetSnapshot(request.db_name);
  }();
  if (!snapshot.ok()) {
    sub.status = snapshot.status();  // permanent: do not retry
    finish_sync();
    return sub;
  }
  const size_t mem = request.memory_budget != 0 ? request.memory_budget
                                                : options_.default_memory_budget;
  const size_t rows = request.row_budget != 0 ? request.row_budget
                                              : options_.default_row_budget;

  // Content-addressed answer cache: a complete answer already computed for
  // this (snapshot, SQL, question, budgets class, options) is replayed
  // immediately -- no admission, no execution, exactly-once books
  // untouched. The key embeds the snapshot version pinned above, so a
  // reload can never serve a stale answer (stale keys simply stop being
  // generated and age out of the LRU). Chaos-injected requests bypass:
  // their faults must actually execute. Cache hits are served even under
  // deep brownout -- replaying a stored full answer costs no worker.
  std::string answer_key;
  if (answer_cache_ != nullptr && !request.bypass_answer_cache &&
      request.inject_fault_at_step == 0 &&
      request.inject_transient_failures == 0) {
    answer_key = MakeAnswerCacheKey(
        request.db_name, snapshot->version, request.sql,
        request.question.ToString(), rows, mem,
        EngineOptionBits(request.engine_options));
    AnswerCache::Ptr hit;
    {
      obs::SpanScope span(trace.get(), "answer_cache_lookup");
      hit = answer_cache_->Lookup(answer_key);
    }
    if (hit != nullptr) {
      stat_.answer_cache_hits->Increment();
      WhyNotResponse response;
      response.key = request.key;
      response.status = Status::OK();
      response.answer = hit->summary;
      response.snapshot_version = snapshot->version;
      response.served_from_answer_cache = true;
      // Keep the idempotency contract: this key now has a completed
      // response, so a resubmission is served from the key cache. Not a
      // `completed` execution, though -- the exactly-once books count only
      // admitted work.
      RememberCompletedLocked(request.key, response);
      std::promise<WhyNotResponse> ready;
      ready.set_value(std::move(response));
      sub.status = Status::OK();
      sub.response = ready.get_future().share();
      finish_sync();
      return sub;
    }
    stat_.answer_cache_misses->Increment();
  } else if (answer_cache_ != nullptr) {
    stat_.answer_cache_bypass->Increment();
  }

  // Durable answer store: an answer computed for identical database
  // *content* -- possibly by a previous process incarnation -- is replayed
  // without admission or execution. Keyed by content fingerprint, so a
  // reload that changed the data can never hit; a reload that reproduced
  // identical bytes still does. The hit also warms the in-memory answer
  // cache so subsequent submissions skip the file read.
  std::string store_key;
  if (answer_store_ != nullptr && !request.bypass_answer_cache &&
      request.inject_fault_at_step == 0 &&
      request.inject_transient_failures == 0) {
    store_key = MakeDurableAnswerKey(
        request.db_name, snapshot->content_fingerprint, request.sql,
        request.question.ToString(), rows, mem,
        EngineOptionBits(request.engine_options));
    // The lookup reads an entry file, so it runs off mu_ -- store IO must
    // never block admission, worker finalization or the watchdog. The books
    // can move while the lock is down, so the admission-order checks that
    // preceded it (shutdown, idempotency) re-run after relocking.
    lock.unlock();
    auto stored = [&] {
      obs::SpanScope span(trace.get(), "store_lookup");
      return answer_store_->Lookup(store_key);
    }();
    lock.lock();
    if (!accepting_) {
      stat_.rejected_shutdown->Increment();
      sub.status = Status::Unavailable("service shutting down");
      finish_sync();
      return sub;
    }
    if (auto it = completed_.find(request.key); it != completed_.end()) {
      stat_.served_from_cache->Increment();
      std::promise<WhyNotResponse> ready;
      ready.set_value(it->second);
      sub.status = Status::OK();
      sub.deduped = true;
      sub.response = ready.get_future().share();
      finish_sync();
      return sub;
    }
    if (auto it = inflight_.find(request.key); it != inflight_.end()) {
      stat_.deduped_inflight->Increment();
      if (*on_complete) {
        it->second->callbacks.push_back(std::move(*on_complete));
        *on_complete = nullptr;
      }
      sub.status = Status::OK();
      sub.deduped = true;
      sub.response = it->second->future;
      finish_sync();
      return sub;
    }
    if (stored.ok()) {
      stat_.answer_store_hits->Increment();
      WhyNotResponse response;
      response.key = request.key;
      response.status = Status::OK();
      response.answer = std::move(*stored);
      response.snapshot_version = snapshot->version;
      response.served_from_answer_store = true;
      if (answer_cache_ != nullptr && !answer_key.empty()) {
        auto cached = std::make_shared<CachedAnswer>();
        cached->summary = response.answer;
        cached->snapshot_version = snapshot->version;
        answer_cache_->Insert(answer_key, std::move(cached));
      }
      RememberCompletedLocked(request.key, response);
      std::promise<WhyNotResponse> ready;
      ready.set_value(std::move(response));
      sub.status = Status::OK();
      sub.response = ready.get_future().share();
      finish_sync();
      return sub;
    }
    stat_.answer_store_misses->Increment();
  }

  // Brownout L3: the deepest rung stops admitting non-interactive work
  // entirely -- batch and background clients retry after backoff while the
  // remaining capacity serves interactive requests (at L2 quality).
  if (brownout_ != nullptr) {
    UpdateBrownoutLocked();
    if (brownout_->level() >= 3 &&
        request.priority != Priority::kInteractive) {
      stat_.shed_brownout->Increment();
      sub.status = Status::Unavailable(
          StrCat("brownout L3: shedding ", PriorityName(request.priority),
                 " work"));
      sub.retry_after_ms = SuggestedBackoffLocked();
      finish_sync();
      return sub;
    }
  }
  // The watermark only sheds when other work is admitted: a request whose
  // budget alone exceeds it must still be runnable once the service drains,
  // or a retry loop would never terminate.
  if (options_.memory_watermark_bytes != 0 && !inflight_.empty() &&
      admitted_bytes_ + mem > options_.memory_watermark_bytes) {
    stat_.shed_memory->Increment();
    sub.status = Status::Unavailable(
        StrCat("overloaded: memory watermark (", admitted_bytes_, " + ", mem,
               " > ", options_.memory_watermark_bytes, " bytes)"));
    sub.retry_after_ms = SuggestedBackoffLocked();
    finish_sync();
    return sub;
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->snapshot = *snapshot;
  job->answer_cache_key = std::move(answer_key);
  job->breaker_key = std::move(breaker_key);
  job->store_key = std::move(store_key);
  job->submit_time = clock_->Now();
  const int64_t deadline_ms = job->request.deadline_ms != 0
                                  ? job->request.deadline_ms
                                  : options_.default_deadline_ms;
  job->deadline = job->submit_time + std::chrono::milliseconds(deadline_ms);
  job->memory_charge = mem;
  job->ctx = std::make_shared<ExecContext>();
  if (options_.clock != nullptr) job->ctx->set_clock(clock_);
  if (options_.context_deadline) job->ctx->set_deadline(job->deadline);
  if (rows != 0) job->ctx->set_row_budget(rows);
  if (mem != 0) job->ctx->set_memory_budget(mem);
  if (job->request.inject_fault_at_step != 0) {
    job->ctx->InjectFailureAt(job->request.inject_fault_at_step);
  }
  if (task_pool_ != nullptr) {
    // Intra-query parallelism: the request may force serial (threads = 1)
    // or narrow its fan-out, but never widen past the service bound.
    int threads = job->request.threads != 0 ? job->request.threads
                                            : options_.threads_per_request;
    threads = std::min(threads, options_.threads_per_request);
    if (threads > 1) {
      job->ctx->set_parallelism(task_pool_.get(), threads);
      if (options_.parallel_min_rows != 0) {
        job->ctx->set_parallel_min_rows(options_.parallel_min_rows);
      }
    }
  }
  job->future = job->promise.get_future().share();

  // Write-ahead: the ACCEPT record is journaled before admission, so a
  // crash at any later instant finds the request recoverable. Appended
  // under mu_, which also orders it before any COMPLETE the workers could
  // journal (they need mu_ to pop the job). Fail-closed: if the journal
  // cannot append, the request is shed rather than accepted unjournaled.
  if (journal_ != nullptr) {
    Status journaled;
    {
      obs::SpanScope span(trace.get(), "journal_append");
      journaled = journal_->Append(JournalRecordType::kAccept,
                                   EncodeRequest(job->request));
    }
    if (!journaled.ok()) {
      stat_.journal_append_failures->Increment();
      sub.status = Status::Unavailable(
          StrCat("journal unavailable: ", journaled.message()));
      sub.retry_after_ms = SuggestedBackoffLocked();
      finish_sync();
      return sub;
    }
    stat_.journaled_accepts->Increment();
  }

  // Admission through the priority scheduler: strict class priority, EDF
  // within a class, per-client fair share. The occupancy slot taken here is
  // held until Finalize releases it. Sheds below resolve the just-written
  // ACCEPT with a SHED record -- the client saw the rejection, so the
  // request must not resurrect at recovery.
  const Scheduler::Admit admit = scheduler_.TryAdmit(Scheduler::Entry{
      job, job->request.priority, job->deadline, job->request.client_id});
  switch (admit) {
    case Scheduler::Admit::kQueueFull:
      stat_.shed_queue_full->Increment();
      JournalShedLocked(job->request.key);
      sub.status = Status::Unavailable(
          StrCat("overloaded: queue full (", scheduler_.size(), " queued)"));
      sub.retry_after_ms = SuggestedBackoffLocked();
      finish_sync();
      return sub;
    case Scheduler::Admit::kClientQuota:
      stat_.shed_client_quota->Increment();
      JournalShedLocked(job->request.key);
      sub.status = Status::Unavailable(
          StrCat("fair share: client \"", job->request.client_id, "\" has ",
                 scheduler_.occupancy(job->request.client_id),
                 " requests in flight (limit ", options_.per_client_limit,
                 ")"));
      sub.retry_after_ms = SuggestedBackoffLocked();
      finish_sync();
      return sub;
    case Scheduler::Admit::kOk:
      break;
  }
  inflight_.emplace(job->request.key, job);
  admitted_bytes_ += mem;
  stat_.accepted->Increment();
  if (*on_complete) {
    job->callbacks.push_back(std::move(*on_complete));
    *on_complete = nullptr;
  }
  if (trace != nullptr) {
    // Admission ends here; the queue_wait span stays open until a worker
    // dispatches the job (or Finalize closes it for jobs that never reach
    // one). The handoff is sequenced by mu_: workers pop under the same
    // lock this admission holds.
    trace->CloseSpan(admission_span);
    job->queue_wait_span = trace->OpenSpan("queue_wait");
    job->trace = std::move(trace);
    job->ctx->set_trace(job->trace.get());
  }
  sub.status = Status::OK();
  sub.response = job->future;
  lock.unlock();
  work_cv_.notify_one();
  return sub;
}

void WhyNotService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    std::vector<Scheduler::Entry> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !scheduler_.empty(); });
      if (scheduler_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Fail-fast pass before dispatch: entries whose deadline passed while
      // queued would only burn this worker computing an answer nobody is
      // waiting for.
      expired = scheduler_.TakeExpired(clock_->Now());
      if (auto entry = scheduler_.Pop()) {
        job = std::move(entry->item);
        job->running = true;
      }
    }
    for (const Scheduler::Entry& entry : expired) FailExpired(entry.item);
    if (job != nullptr) Execute(job);
  }
}

void WhyNotService::FailExpired(const std::shared_ptr<Job>& job) {
  WhyNotResponse response;
  response.key = job->request.key;
  response.snapshot_version = job->snapshot.version;
  response.queue_ms = MsSince(job->submit_time, clock_->Now());
  response.expired_in_queue = true;
  response.status = Status::DeadlineExceeded(
      StrCat("deadline passed after ",
             static_cast<int64_t>(response.queue_ms), "ms in queue"));
  Finalize(job, std::move(response), /*final=*/true);
}

void WhyNotService::Execute(const std::shared_ptr<Job>& job) {
  const WhyNotRequest& req = job->request;
  obs::Trace* const trace = job->trace.get();
  WhyNotResponse response;
  response.key = req.key;
  response.snapshot_version = job->snapshot.version;
  const Clock::TimePoint exec_start = clock_->Now();
  response.queue_ms = MsSince(job->submit_time, exec_start);
  if (trace != nullptr && job->queue_wait_span >= 0) {
    trace->CloseSpan(job->queue_wait_span);
    job->queue_wait_span = -1;
  }
  const int32_t exec_span =
      trace != nullptr ? trace->OpenSpan("execute") : -1;
  int brownout_level = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    response.attempt = ++attempts_[req.key];
    if (brownout_ != nullptr) {
      // The level read here governs this whole execution: one request never
      // mixes quality levels even if the controller moves mid-run.
      UpdateBrownoutLocked();
      brownout_level = brownout_->level();
    }
  }
  // Breaker recheck at the worker: work admitted before its breaker opened
  // (or queued behind the failures that opened it) must not execute after.
  // kAllow/kProbe registers an execution that `finish` below pairs with
  // End() on every exit path.
  bool breaker_began = false;
  if (breaker_ != nullptr) {
    const CircuitBreaker::Decision decision =
        breaker_->TryBegin(job->breaker_key);
    if (decision.gate == CircuitBreaker::Gate::kFastFail) {
      response.status = decision.cached_error;
      response.breaker_fast_fail = true;
      stat_.breaker_fast_fails->Increment();
      if (trace != nullptr) trace->CloseSpan(exec_span);
      Finalize(job, std::move(response), /*final=*/true);
      return;
    }
    breaker_began = true;
  }
  const auto finish = [&](bool final) {
    if (trace != nullptr) trace->CloseSpan(exec_span);
    if (breaker_began) breaker_->End(job->breaker_key, response.status);
    Finalize(job, std::move(response), final);
  };
  // Injected transient infrastructure fault: retryable, unlike engine
  // checkpoint faults which produce final (partial) answers below.
  if (response.attempt <= req.inject_transient_failures) {
    response.status = Status::Unavailable(
        StrCat("injected transient fault (attempt ", response.attempt, ")"));
    stat_.transient_failures->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      response.retry_after_ms = SuggestedBackoffLocked();
    }
    response.exec_ms = MsSince(exec_start, clock_->Now());
    finish(/*final=*/false);
    return;
  }

  // Crash isolation: every failure below lands in `response.status` for
  // this request alone; the worker and its siblings carry on.
  const Database& db = *job->snapshot.db;
  auto tree = [&] {
    obs::SpanScope span(trace, "compile");
    return CompileSql(req.sql, db);
  }();
  if (!tree.ok()) {
    response.status = tree.status();
    response.exec_ms = MsSince(exec_start, clock_->Now());
    finish(/*final=*/true);
    return;
  }
  // Every engine run this service executes shares the service-wide subtree
  // cache; its keys pin relation data versions, so snapshots never bleed
  // into each other.
  NedExplainOptions engine_options = req.engine_options;
  if (subtree_cache_ != nullptr) {
    engine_options.subtree_cache = subtree_cache_.get();
  }
  // Brownout computation cuts: L1+ skips the secondary answer, L2+ drops
  // TabQ dumps. The condensed/detailed core is never cut -- only capped in
  // rendering by ApplyBrownoutToSummary.
  if (brownout_level > 0) {
    ApplyBrownoutToOptions(brownout_level, &engine_options);
  }
  auto engine = NedExplainEngine::Create(&*tree, &db, engine_options);
  if (!engine.ok()) {
    response.status = engine.status();
    response.exec_ms = MsSince(exec_start, clock_->Now());
    finish(/*final=*/true);
    return;
  }
  auto result = [&] {
    // The engine's own phase spans (Initialization, per-ctuple, per-level
    // TabQ, ...) nest under this one via the ExecContext trace.
    obs::SpanScope span(trace, "engine");
    return engine->Explain(req.question, job->ctx.get());
  }();
  response.exec_ms = MsSince(exec_start, clock_->Now());
  if (!result.ok()) {
    // Non-resource error (resource limits come back as OK partials).
    response.status = result.status();
  } else {
    response.status = Status::OK();
    {
      obs::SpanScope span(trace, "render");
      response.answer = SummarizeResult(*engine, *result);
      if (brownout_level > 0) {
        ApplyBrownoutToSummary(brownout_level, options_.brownout.detailed_cap,
                               &response.answer);
      }
    }
    if (brownout_level > 0) stat_.degraded->Increment();
  }
  // Completeness gate: only answers that reflect the data -- not the budgets
  // of the run that produced them -- enter the content-addressed cache. A
  // partial answer is honest for its requester but must never be replayed
  // as authoritative for another. Degraded answers are excluded for the
  // same reason: their cache key describes the full answer the requester
  // asked for, not the browned-out one the overload produced.
  if (!job->answer_cache_key.empty() && answer_cache_ != nullptr &&
      response.status.ok()) {
    if (response.answer.degradation_level > 0) {
      stat_.degraded_not_cached->Increment();
    } else if (response.answer.complete) {
      auto cached = std::make_shared<CachedAnswer>();
      cached->summary = response.answer;
      cached->snapshot_version = job->snapshot.version;
      answer_cache_->Insert(job->answer_cache_key, std::move(cached));
      stat_.answer_cache_inserts->Increment();
    } else {
      stat_.partial_not_cached->Increment();
    }
  }
  // Durable spill, under the same honesty gates as the in-memory cache:
  // only complete, never-degraded answers -- a store hit must always be
  // byte-identical to an uninterrupted recomputation. Runs off the service
  // mutex (the store locks itself), so entry-file IO never blocks
  // admission.
  if (answer_store_ != nullptr && !job->store_key.empty() &&
      response.status.ok() && response.answer.complete &&
      response.answer.degradation_level == 0) {
    obs::SpanScope store_span(trace, "store_put");
    StoreManifestEntry manifest;
    manifest.db_name = req.db_name;
    manifest.content_fingerprint = job->snapshot.content_fingerprint;
    for (const std::string& name : db.RelationNames()) {
      const Relation* rel = db.GetRelation(name).value();
      manifest.relations.push_back(
          {name, rel->data_version(), rel->size()});
    }
    if (answer_store_->Put(job->store_key, response.answer, manifest).ok()) {
      job->stored_answer = true;
      stat_.answer_store_puts->Increment();
    }
  }
  finish(/*final=*/true);
}

void WhyNotService::Finalize(const std::shared_ptr<Job>& job,
                             WhyNotResponse response, bool final) {
  obs::Trace* const trace = job->trace.get();
  if (trace != nullptr && job->queue_wait_span >= 0) {
    // Jobs that never reached a worker (expired in queue, drained, shut
    // down) arrive here with the queue_wait span still open.
    trace->CloseSpan(job->queue_wait_span);
    job->queue_wait_span = -1;
  }
  const int32_t finalize_span =
      trace != nullptr ? trace->OpenSpan("finalize") : -1;
  std::vector<CompletionCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Taken under the same hold that retires the key: once inflight_ no
    // longer knows this job, no deduping Submit can append another
    // observer, so this move captures every callback exactly once.
    callbacks = std::move(job->callbacks);
    inflight_.erase(job->request.key);
    admitted_bytes_ -= job->memory_charge;
    // The fair-share occupancy slot taken at TryAdmit frees here, whatever
    // path the job took (executed, expired, fast-failed or drained).
    scheduler_.Release(job->request.client_id);
    // Journal the resolution before the promise resolves: once a client
    // observes a response, the journal must already know this ACCEPT is
    // settled (final -> COMPLETE, transient failure -> SHED -- the client
    // got a retryable answer and will resubmit under a fresh ACCEPT).
    // Queued requests failed by Drain/Shutdown set keep_recoverable: no
    // record at all, leaving the ACCEPT open for Recover().
    //
    // If the append itself fails (journal broken mid-flight), the promise
    // still resolves: withholding a computed answer would be a lost ack,
    // which the contract ranks worse than the duplicate this creates --
    // the unresolved ACCEPT makes the next Recover() re-run (or re-serve)
    // a request its client already saw settle. Exactly-once degrades to
    // at-least-once for exactly the requests in flight when the journal
    // died, surfaced via stats_.journal_append_failures (documented in
    // docs/DURABILITY.md).
    if (journal_ != nullptr) {
      if (final) {
        std::string payload;
        wire::PutStr(&payload, job->request.key);
        wire::PutU8(&payload, static_cast<uint8_t>(response.status.code()));
        wire::PutU8(&payload, job->stored_answer ? 1 : 0);
        wire::PutStr(&payload, job->store_key);
        Status appended;
        {
          obs::SpanScope span(trace, "journal_append");
          appended = journal_->Append(JournalRecordType::kComplete, payload);
        }
        if (appended.ok()) {
          stat_.journaled_completes->Increment();
        } else {
          stat_.journal_append_failures->Increment();
        }
      } else if (!job->keep_recoverable) {
        JournalShedLocked(job->request.key);
      }
    }
    if (final) {
      stat_.completed->Increment();
      if (response.expired_in_queue) stat_.expired_in_queue->Increment();
      attempts_.erase(job->request.key);
      RememberCompletedLocked(job->request.key, response);
    }
    // Not final: the key leaves the books entirely, so a retry with the
    // same key re-executes (its attempt counter persists in attempts_).
    if (brownout_ != nullptr) {
      // Expired and fast-failed responses cost microseconds; feeding them
      // to the p99 window would *mask* pressure exactly when shedding is
      // heaviest, so only executed completions count.
      if (!response.expired_in_queue && !response.breaker_fast_fail) {
        brownout_->RecordCompletion(
            static_cast<int64_t>(response.queue_ms + response.exec_ms));
      }
      UpdateBrownoutLocked();
    }
  }
  if (final) {
    // End-to-end latency distributions: final outcomes only, so retried
    // attempts do not double-count their queue time.
    queue_us_->Observe(static_cast<int64_t>(response.queue_ms * 1000.0));
    exec_us_->Observe(static_cast<int64_t>(response.exec_ms * 1000.0));
    total_us_->Observe(static_cast<int64_t>(
        (response.queue_ms + response.exec_ms) * 1000.0));
  }
  if (trace != nullptr) {
    trace->CloseSpan(finalize_span);
    response.trace = job->trace;
  }
  if (callbacks.empty()) {
    job->promise.set_value(std::move(response));
  } else {
    // Resolve the future first so callbacks observe a ready future (they
    // receive the same value by reference); the copy is only paid when an
    // observer is actually registered.
    job->promise.set_value(response);
    for (CompletionCallback& callback : callbacks) callback(response);
  }
}

void WhyNotService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms));
    const Clock::TimePoint now = clock_->Now();
    for (auto& [key, job] : inflight_) {
      if (job->running && !job->watchdog_fired && now >= job->deadline) {
        // Backstop for checkpoint gaps: cooperative deadline checks should
        // normally trip first, but the watchdog guarantees the bound.
        job->ctx->RequestCancel();
        job->watchdog_fired = true;
        stat_.watchdog_cancels->Increment();
      }
    }
    // Queued-but-expired entries are also failed fast from here, so expiry
    // does not wait for a worker to come free (under saturation workers can
    // stay busy for a long time -- exactly when queues expire).
    std::vector<Scheduler::Entry> expired = scheduler_.TakeExpired(now);
    if (!expired.empty()) {
      lock.unlock();
      for (const Scheduler::Entry& entry : expired) FailExpired(entry.item);
      lock.lock();
    }
  }
}

void WhyNotService::Shutdown(bool drain) {
  std::vector<std::shared_ptr<Job>> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    if (!drain) {
      for (Scheduler::Entry& entry : scheduler_.DrainAll()) {
        to_fail.push_back(std::move(entry.item));
      }
      for (auto& [key, job] : inflight_) {
        if (job->running) job->ctx->RequestCancel();
      }
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (const auto& job : to_fail) {
    // The client sees a retryable failure, but the journal ACCEPT stays
    // unresolved: an abrupt shutdown is exactly the case recovery exists
    // for, so these requests re-enqueue at the next start.
    job->keep_recoverable = true;
    WhyNotResponse response;
    response.key = job->request.key;
    response.status = Status::Unavailable("service shut down before execution");
    Finalize(job, std::move(response), /*final=*/false);
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  if (journal_ != nullptr) (void)journal_->Sync();
  // The exactly-once invariant: every accepted request was finalized -- no
  // response lost (a promise with waiters would otherwise hang them) and,
  // by construction of Finalize, none resolved twice.
  std::lock_guard<std::mutex> lock(mu_);
  NED_CHECK_MSG(inflight_.empty(),
                "shutdown left accepted requests without responses");
  NED_CHECK(scheduler_.empty());
}

WhyNotService::DrainReport WhyNotService::Drain(int64_t deadline_ms) {
  DrainReport report;
  std::vector<std::shared_ptr<Job>> queued;
  Clock::TimePoint deadline;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    deadline = clock_->Now() + std::chrono::milliseconds(deadline_ms);
    // After DrainAll every remaining in-flight job is on (or headed to) a
    // worker: workers pop under mu_, so a job is either still queued here
    // or already marked running.
    for (Scheduler::Entry& entry : scheduler_.DrainAll()) {
      queued.push_back(std::move(entry.item));
    }
    report.completed_inflight = inflight_.size() - queued.size();
  }
  for (const auto& job : queued) {
    // Resolve the waiting client retryably, but leave the journal ACCEPT
    // open: Recover() re-enqueues (or store-serves) these next start.
    job->keep_recoverable = true;
    WhyNotResponse response;
    response.key = job->request.key;
    response.status = Status::Unavailable(
        "service draining; request journaled for recovery");
    Finalize(job, std::move(response), /*final=*/false);
    ++report.journaled_queued;
  }
  // Let running requests finish. Real time paces the polling; the deadline
  // itself is read from the injected clock so ManualClock tests control
  // exactly when the cancellation rung fires.
  bool cancelled = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (inflight_.empty()) break;
      if (!cancelled && clock_->Now() >= deadline) {
        for (auto& [key, job] : inflight_) {
          if (job->running && !job->watchdog_fired) {
            job->ctx->RequestCancel();
            ++report.cancelled;
          }
        }
        cancelled = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  if (journal_ != nullptr) (void)journal_->Sync();
  std::lock_guard<std::mutex> lock(mu_);
  NED_CHECK_MSG(inflight_.empty(),
                "drain left accepted requests without responses");
  NED_CHECK(scheduler_.empty());
  return report;
}

WhyNotService::RecoveryReport WhyNotService::Recover() {
  RecoveryReport report;
  if (journal_ == nullptr) return report;
  std::vector<JournalRecord> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (recovery_done_) return report;  // idempotent: never double-enqueue
    recovery_done_ = true;
    records.swap(recovered_records_);
  }

  // Replay to a per-key last-state: ACCEPT -> pending, COMPLETE/SHED ->
  // settled. A key can cycle (ACCEPT, SHED on transient failure, ACCEPT
  // again...), so later records override earlier ones.
  enum class Kind { kPending, kCompleted, kShed };
  struct KeyState {
    Kind kind = Kind::kPending;
    std::string accept_payload;
    WhyNotRequest request;
    bool request_ok = false;
    bool has_stored_answer = false;
    std::string store_key;
  };
  std::vector<std::string> order;
  std::unordered_map<std::string, KeyState> states;
  for (const JournalRecord& record : records) {
    ++report.replayed_records;
    switch (record.type) {
      case JournalRecordType::kAccept: {
        WhyNotRequest request;
        const bool decoded = DecodeRequest(record.payload, &request).ok();
        std::string key = decoded ? request.key : std::string();
        if (!decoded) {
          // Undecodable ACCEPT (version skew, hostile bytes past the CRC's
          // reach): recover the key alone if possible so the record can at
          // least be settled, never fabricated into a request.
          wire::Reader reader(record.payload);
          uint8_t version = 0;
          reader.GetU8(&version);
          if (!reader.GetStr(&key)) key.clear();
        }
        if (key.empty()) {
          ++report.dropped;
          break;
        }
        auto [it, inserted] = states.emplace(key, KeyState{});
        if (inserted) order.push_back(key);
        it->second.kind = Kind::kPending;
        it->second.accept_payload = record.payload;
        it->second.request = std::move(request);
        it->second.request_ok = decoded;
        break;
      }
      case JournalRecordType::kComplete: {
        wire::Reader reader(record.payload);
        std::string key;
        uint8_t code = 0, stored = 0;
        std::string store_key;
        if (!reader.GetStr(&key) || !reader.GetU8(&code) ||
            !reader.GetU8(&stored) || !reader.GetStr(&store_key)) {
          break;
        }
        auto [it, inserted] = states.emplace(key, KeyState{});
        if (inserted) order.push_back(key);
        it->second.kind = Kind::kCompleted;
        it->second.has_stored_answer = stored != 0;
        it->second.store_key = std::move(store_key);
        break;
      }
      case JournalRecordType::kShed: {
        wire::Reader reader(record.payload);
        std::string key;
        if (!reader.GetStr(&key)) break;
        auto [it, inserted] = states.emplace(key, KeyState{});
        if (inserted) order.push_back(key);
        it->second.kind = Kind::kShed;
        break;
      }
    }
  }

  for (const std::string& key : order) {
    KeyState& state = states.at(key);
    switch (state.kind) {
      case Kind::kShed:
        break;  // settled: the client saw the rejection
      case Kind::kCompleted: {
        // Restore the idempotency book only when the store can actually
        // re-serve the answer; completions whose answers were never stored
        // (partial, degraded, errors) simply recompute on resubmission.
        // (A journal written with persist_answers on may be recovered with
        // it off: those completions recompute too.)
        if (!state.has_stored_answer || state.store_key.empty() ||
            answer_store_ == nullptr) {
          break;
        }
        auto stored = answer_store_->Lookup(state.store_key);
        if (!stored.ok()) break;
        WhyNotResponse response;
        response.key = key;
        response.status = Status::OK();
        response.answer = std::move(*stored);
        response.served_from_answer_store = true;
        std::lock_guard<std::mutex> lock(mu_);
        RememberCompletedLocked(key, response);
        ++report.restored_completed;
        // Re-journal into the fresh segment so the restored book survives
        // the compaction below (and the next crash).
        std::string payload;
        wire::PutStr(&payload, key);
        wire::PutU8(&payload, static_cast<uint8_t>(StatusCode::kOk));
        wire::PutU8(&payload, 1);
        wire::PutStr(&payload, state.store_key);
        (void)journal_->Append(JournalRecordType::kComplete, payload);
        break;
      }
      case Kind::kPending: {
        ++report.pending_found;
        if (!state.request_ok) {
          // Cannot re-execute what cannot be decoded; settle it so it does
          // not accumulate across restarts.
          std::lock_guard<std::mutex> lock(mu_);
          JournalShedLocked(key);
          ++report.dropped;
          break;
        }
        // Re-enqueued work rides at background priority: recovered requests
        // have no waiting client, so they must never displace live traffic.
        state.request.priority = Priority::kBackground;
        const Submission sub = Submit(state.request);
        if (sub.status.ok()) {
          // Submit either re-admitted it (fresh ACCEPT journaled) or served
          // it from the store/completed book restored above.
          if (sub.response.valid() &&
              sub.response.wait_for(std::chrono::seconds(0)) ==
                  std::future_status::ready &&
              (sub.response.get().served_from_answer_store ||
               sub.response.get().served_from_answer_cache || sub.deduped)) {
            ++report.served_from_store;
          } else {
            ++report.resubmitted;
          }
        } else if (sub.status.code() == StatusCode::kUnavailable) {
          // Shed (queue full under recovery load): keep it pending for the
          // next recovery by re-journaling the original ACCEPT.
          std::lock_guard<std::mutex> lock(mu_);
          (void)journal_->Append(JournalRecordType::kAccept,
                                 state.accept_payload);
          ++report.deferred;
        } else {
          // Permanent rejection (database since dropped, ...): settle it.
          std::lock_guard<std::mutex> lock(mu_);
          JournalShedLocked(key);
          ++report.dropped;
        }
        break;
      }
    }
  }

  // Compaction: everything still live was re-journaled into the fresh
  // segment (restored COMPLETEs, deferred ACCEPTs, resubmitted requests'
  // fresh ACCEPTs), so the pre-crash segments are now redundant history.
  (void)journal_->Sync();
  (void)journal_->DropOldSegments();
  return report;
}

WhyNotService::Stats WhyNotService::stats() const {
  // Lock-free: each field is one relaxed atomic load. The snapshot is not
  // cross-field consistent (it never was -- callers previously raced the
  // increments too), but every individual counter is exact.
  Stats s;
  s.submitted = stat_.submitted->value();
  s.accepted = stat_.accepted->value();
  s.shed_queue_full = stat_.shed_queue_full->value();
  s.shed_memory = stat_.shed_memory->value();
  s.shed_client_quota = stat_.shed_client_quota->value();
  s.shed_brownout = stat_.shed_brownout->value();
  s.rejected_shutdown = stat_.rejected_shutdown->value();
  s.deduped_inflight = stat_.deduped_inflight->value();
  s.served_from_cache = stat_.served_from_cache->value();
  s.completed = stat_.completed->value();
  s.transient_failures = stat_.transient_failures->value();
  s.watchdog_cancels = stat_.watchdog_cancels->value();
  s.expired_in_queue = stat_.expired_in_queue->value();
  s.breaker_fast_fails = stat_.breaker_fast_fails->value();
  s.degraded = stat_.degraded->value();
  s.degraded_not_cached = stat_.degraded_not_cached->value();
  s.answer_cache_hits = stat_.answer_cache_hits->value();
  s.answer_cache_misses = stat_.answer_cache_misses->value();
  s.answer_cache_inserts = stat_.answer_cache_inserts->value();
  s.answer_cache_bypass = stat_.answer_cache_bypass->value();
  s.partial_not_cached = stat_.partial_not_cached->value();
  s.journaled_accepts = stat_.journaled_accepts->value();
  s.journaled_completes = stat_.journaled_completes->value();
  s.journaled_sheds = stat_.journaled_sheds->value();
  s.journal_append_failures = stat_.journal_append_failures->value();
  s.answer_store_hits = stat_.answer_store_hits->value();
  s.answer_store_misses = stat_.answer_store_misses->value();
  s.answer_store_puts = stat_.answer_store_puts->value();
  return s;
}

size_t WhyNotService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_.size();
}

int WhyNotService::brownout_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return brownout_ != nullptr ? brownout_->level() : 0;
}

CircuitBreaker::Stats WhyNotService::breaker_stats() const {
  return breaker_ != nullptr ? breaker_->stats() : CircuitBreaker::Stats{};
}

size_t WhyNotService::client_occupancy(const std::string& client_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_.occupancy(client_id);
}

LruStats WhyNotService::subtree_cache_stats() const {
  return subtree_cache_ != nullptr ? subtree_cache_->stats() : LruStats{};
}

LruStats WhyNotService::answer_cache_stats() const {
  return answer_cache_ != nullptr ? answer_cache_->stats() : LruStats{};
}

JournalStats WhyNotService::journal_stats() const {
  return journal_ != nullptr ? journal_->stats() : JournalStats{};
}

AnswerStoreStats WhyNotService::answer_store_stats() const {
  return answer_store_ != nullptr ? answer_store_->stats()
                                  : AnswerStoreStats{};
}

int WhyNotService::parallel_pool_size() const {
  return task_pool_ != nullptr ? task_pool_->thread_count() : 0;
}

size_t WhyNotService::parallel_peak_active() const {
  return task_pool_ != nullptr ? task_pool_->peak_active() : 0;
}

}  // namespace ned
