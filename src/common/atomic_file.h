/// \file atomic_file.h
/// \brief Crash-safe file writes: temp file + atomic rename.
///
/// `WriteFile` (csv.h) truncates in place, so a crash mid-write leaves a
/// torn file where a good one used to be. Every on-disk artifact whose
/// reader assumes integrity -- golden snapshots, difftest repros, the
/// durable answer store's entries and manifest (src/persist/) -- goes
/// through AtomicWriteFile instead: the content is written to a sibling
/// temp file, optionally fsynced, and renamed over the target. POSIX
/// rename(2) is atomic within a filesystem, so readers observe either the
/// old complete file or the new complete file, never a mixture, whatever
/// instant the process dies.

#ifndef NED_COMMON_ATOMIC_FILE_H_
#define NED_COMMON_ATOMIC_FILE_H_

#include <string>

#include "common/status.h"

namespace ned {

/// Writes `content` to `path` via temp-file + rename. With `fsync_data` the
/// temp file is fsynced before the rename and the containing directory
/// after it, so the write survives power loss as well as process death
/// (process death alone never loses written bytes; see docs/DURABILITY.md).
/// On any failure the temp file is removed and `path` is left untouched.
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool fsync_data = false);

/// fsyncs the directory containing `path` (durability of renames/creates).
/// Best-effort: returns OK on filesystems that refuse directory fsync.
Status FsyncParentDir(const std::string& path);

/// Creates `dir` (and missing parents) like `mkdir -p`.
Status EnsureDir(const std::string& dir);

}  // namespace ned

#endif  // NED_COMMON_ATOMIC_FILE_H_
