#include "common/status.h"

namespace ned {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

namespace internal {

void DieCheckFailure(const char* file, int line, const char* expr,
                     const std::string& msg) {
  std::cerr << "NED_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) std::cerr << " -- " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace ned
