/// \file rng.h
/// \brief Deterministic pseudo-random generator for dataset synthesis.
///
/// The paper evaluates on extracts of real data (Trio's crime sample, IMDB,
/// US-government datasets). We regenerate equivalent synthetic instances; to
/// keep every experiment reproducible bit-for-bit, all randomness flows
/// through this seeded SplitMix64 generator rather than std::random_device.

#ifndef NED_COMMON_RNG_H_
#define NED_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ned {

/// SplitMix64: tiny, fast, well-distributed, and fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    NED_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    NED_CHECK(!v.empty());
    return v[static_cast<size_t>(Next() % v.size())];
  }

 private:
  uint64_t state_;
};

/// 64-bit FNV-1a over a string key. Used to derive per-request RNG seeds
/// from idempotency keys so concurrent requests are deterministic and
/// differential-testable: the same (base seed, key) pair always yields the
/// same stream, independent of scheduling or process-global state.
uint64_t HashSeed(const std::string& key);

/// Mixes two seeds into one (SplitMix64 finalizer over the xor). Lets a
/// request derive independent sub-streams, e.g. MixSeed(client_seed,
/// HashSeed(request_key)) for retry jitter.
uint64_t MixSeed(uint64_t a, uint64_t b);

}  // namespace ned

#endif  // NED_COMMON_RNG_H_
