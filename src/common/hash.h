/// \file hash.h
/// \brief Fixed, process-stable hash functions for on-disk artifacts.
///
/// Everything persisted to disk is checksummed or content-addressed with the
/// two algorithms here: CRC-32 (IEEE 802.3, reflected 0xEDB88320) for frame
/// integrity and FNV-1a 64-bit for content addressing (store entry names,
/// database fingerprints). Both are fully specified algorithms with
/// identical output on every compiler, platform and process run --
/// std::hash is deliberately never used on disk because its value is
/// unspecified and may change between libstdc++ versions.

#ifndef NED_COMMON_HASH_H_
#define NED_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ned {

/// CRC-32 of `data`, continuing from `seed` (pass 0 to start).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// FNV-1a 64-bit hash of `data`, continuing from `seed`.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
uint64_t Fnv1a64(std::string_view data, uint64_t seed = kFnvOffsetBasis);

}  // namespace ned

#endif  // NED_COMMON_HASH_H_
