#include "common/signal_drain.h"

#include <atomic>
#include <csignal>

namespace ned {

namespace {

std::atomic<bool> g_drain_requested{false};

extern "C" void HandleDrainSignal(int /*signo*/) {
  g_drain_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallDrainSignalHandlers() {
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
}

bool DrainRequested() {
  return g_drain_requested.load(std::memory_order_relaxed);
}

void ResetDrainRequest() {
  g_drain_requested.store(false, std::memory_order_relaxed);
}

void RequestDrain() {
  g_drain_requested.store(true, std::memory_order_relaxed);
}

}  // namespace ned
