#include "common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ned {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("cannot open directory", dir);
  // Some filesystems (and some container mounts) reject fsync on a
  // directory fd; the rename itself already happened, so treat that as
  // best-effort rather than a failure.
  (void)::fsync(fd);
  ::close(fd);
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    prefix = dir.substr(0, i == 0 ? 1 : i);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return ErrnoStatus("cannot create directory", prefix);
    }
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool fsync_data) {
  // The temp name embeds the pid so concurrent writers (e.g. two difftest
  // shards sharing an --out dir) never clobber each other's temp file; the
  // final rename is last-writer-wins either way.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return ErrnoStatus("cannot open temp file", tmp);
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("short write to", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_data && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename failed onto", path);
  }
  if (fsync_data) return FsyncParentDir(path);
  return Status::OK();
}

}  // namespace ned
