#include "common/rng.h"

namespace ned {

uint64_t HashSeed(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return h;
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace ned
