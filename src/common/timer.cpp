#include "common/timer.h"

namespace ned {

namespace {

/// The production time source: a thin virtual wrapper over steady_clock.
class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
};

}  // namespace

const Clock* Clock::Real() {
  static const RealClock clock;
  return &clock;
}

}  // namespace ned
