/// \file csv.h
/// \brief Minimal CSV reader/writer (RFC-4180 quoting subset).
///
/// Operates on raw strings; typed conversion happens in the relational layer
/// (Database::LoadCsv). This replaces the PostgreSQL backend the paper's
/// implementation used for storing the crime/imdb/gov instances.

#ifndef NED_COMMON_CSV_H_
#define NED_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ned {

/// A parsed CSV document: first row is typically a header.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
  /// 1-based physical line on which rows[i] starts (a quoted field may span
  /// several physical lines). Parallel to `rows`; used for error messages.
  std::vector<size_t> line_of;
};

/// Parses CSV text. Supports double-quoted fields with "" escapes and both
/// \n and \r\n line endings. Empty trailing line is ignored. Parse errors
/// carry the offending 1-based line number.
Result<CsvDocument> ParseCsv(const std::string& text);

/// Serialises rows to CSV text, quoting fields that need it.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path`, truncating.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace ned

#endif  // NED_COMMON_CSV_H_
