#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/strings.h"

namespace ned::json {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string Quote(std::string_view s) {
  std::string out = "\"";
  AppendEscaped(&out, s);
  out += '"';
  return out;
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser. Position-tracking so errors carry an offset;
/// every consume is bounds-checked and bad input can only produce a
/// ParseError, never UB -- the HTTP frontend feeds this bytes straight off
/// the socket.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    Value v;
    NED_RETURN_NOT_OK(ParseValue(0, &v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrCat("JSON: ", what, " at offset ", pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.size() - pos_ < lit.size()) return false;
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(int depth, Value* out) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    char c;
    if (!Peek(&c)) return Error("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        NED_RETURN_NOT_OK(ParseString(&s));
        *out = Value::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Value::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Value::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Value::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, Value* out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    char c;
    if (!Peek(&c)) return Error("unterminated object");
    if (c == '}') {
      ++pos_;
      *out = Value::Object(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (!Peek(&c) || c != '"') return Error("expected object key");
      std::string key;
      NED_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Peek(&c) || c != ':') return Error("expected ':' after key");
      ++pos_;
      Value v;
      NED_RETURN_NOT_OK(ParseValue(depth + 1, &v));
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (!Peek(&c)) return Error("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        *out = Value::Object(std::move(members));
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, Value* out) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    char c;
    if (!Peek(&c)) return Error("unterminated array");
    if (c == ']') {
      ++pos_;
      *out = Value::Array(std::move(items));
      return Status::OK();
    }
    for (;;) {
      Value v;
      NED_RETURN_NOT_OK(ParseValue(depth + 1, &v));
      items.push_back(std::move(v));
      SkipWhitespace();
      if (!Peek(&c)) return Error("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        *out = Value::Array(std::move(items));
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        *out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      // Escape sequence.
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          uint32_t cp = 0;
          NED_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a following \uDC00..\uDFFF pair.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            NED_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const size_t int_start = pos_;
    bool saw_digit = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      saw_digit = true;
    }
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return Error("leading zero in number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      bool frac_digit = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac_digit = true;
      }
      if (!frac_digit) return Error("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digit = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp_digit = true;
      }
      if (!exp_digit) return Error("digits required in exponent");
    }
    if (!saw_digit) return Error("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        *out = Value::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Integral but out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    if (errno == ERANGE && !std::isfinite(d)) {
      return Error("number out of range");
    }
    *out = Value::Double(d);
    return Status::OK();
  }

  std::string_view text_;
  const int max_depth_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).ParseDocument();
}

}  // namespace ned::json
