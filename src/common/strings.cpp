#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace ned {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t i = 0; i < header.size(); ++i) widths[i] = header[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      line += " " + PadRight(cell, widths[i]) + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

}  // namespace ned
