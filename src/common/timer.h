/// \file timer.h
/// \brief Wall-clock stopwatch and phase accounting.
///
/// NedExplain's evaluation (paper Fig. 5) breaks runtime into four phases:
/// Initialization, CompatibleFinder, SuccessorsFinder and Bottom-Up traversal.
/// PhaseTimer accumulates nanoseconds per named phase so the Fig. 5 bench can
/// print the same distribution.

#ifndef NED_COMMON_TIMER_H_
#define NED_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace ned {

/// Injectable time source: the virtual now() seam that lets the service's
/// time-driven behaviour (queue expiry, breaker half-open probes, watchdog
/// deadlines, brownout hysteresis) run against a test-controlled clock
/// instead of wall time. Production code passes nullptr / Clock::Real() and
/// pays one virtual call per read; tests inject a ManualClock and advance it
/// explicitly, so expiry tests assert on exact instants instead of sleeping.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;

  /// Process-wide real (steady_clock) instance.
  static const Clock* Real();
};

/// Deterministic clock for tests. Starts at an arbitrary fixed epoch and
/// only moves when told to. Thread-safe: Advance/Now may race freely (the
/// watchdog thread reads while the test thread advances).
class ManualClock : public Clock {
 public:
  ManualClock() = default;

  TimePoint Now() const override {
    return TimePoint(std::chrono::nanoseconds(
        now_nanos_.load(std::memory_order_relaxed)));
  }

  void AdvanceMs(int64_t ms) {
    now_nanos_.fetch_add(ms * 1'000'000, std::memory_order_relaxed);
  }
  void AdvanceNanos(int64_t ns) {
    now_nanos_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  // Start well above zero so "deadline = now - 5ms" style arithmetic in
  // tests can never underflow the epoch.
  std::atomic<int64_t> now_nanos_{int64_t{1} << 40};
};

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates elapsed time per named phase.
class PhaseTimer {
 public:
  /// RAII scope that charges its lifetime to `phase`.
  class Scope {
   public:
    Scope(PhaseTimer* timer, std::string phase)
        : timer_(timer), phase_(std::move(phase)) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(phase_, watch_.ElapsedNanos());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer* timer_;
    std::string phase_;
    Stopwatch watch_;
  };

  void Add(const std::string& phase, int64_t nanos) { nanos_[phase] += nanos; }

  /// Total nanoseconds charged to `phase` (0 if never seen).
  int64_t Nanos(const std::string& phase) const {
    auto it = nanos_.find(phase);
    return it == nanos_.end() ? 0 : it->second;
  }

  /// Sum over all phases.
  int64_t TotalNanos() const {
    int64_t total = 0;
    for (const auto& [_, ns] : nanos_) total += ns;
    return total;
  }

  const std::map<std::string, int64_t>& phases() const { return nanos_; }
  void Reset() { nanos_.clear(); }

 private:
  std::map<std::string, int64_t> nanos_;
};

/// Canonical phase names matching paper Fig. 5.
namespace phase {
inline constexpr const char kInitialization[] = "Initialization";
inline constexpr const char kCompatibleFinder[] = "CompatibleFinder";
inline constexpr const char kSuccessorsFinder[] = "SuccessorsFinder";
inline constexpr const char kBottomUp[] = "Bottom-Up";
}  // namespace phase

}  // namespace ned

#endif  // NED_COMMON_TIMER_H_
