/// \file json.h
/// \brief Minimal JSON writing + parsing shared by exposition and the wire
/// protocol.
///
/// One escaping implementation for the whole codebase: obs/expose.cpp
/// (metrics JSON), src/net/wire.cpp (the HTTP frontend's request/response
/// codec) and every tool that renders JSON route through AppendEscaped, so
/// an escaping bug can only exist -- and be fixed -- in one place.
///
/// The reader side is a small bounds-checked recursive-descent parser into
/// a DOM (json::Value). It is built for hostile input: the HTTP frontend
/// feeds it request bodies straight off the socket, so every path returns
/// Status instead of crashing, recursion is depth-limited, and trailing
/// garbage after the top-level value is rejected. Number handling preserves
/// the int/double distinction: integral literals that fit an int64 parse as
/// kInt, everything else as kDouble -- mirroring ned::Value's type split so
/// wire round-trips keep value types exact.

#ifndef NED_COMMON_JSON_H_
#define NED_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ned::json {

/// Appends `s` to `out` with JSON string escaping (backslash, double quote,
/// \n \t \r, remaining control characters as \u00XX). No surrounding
/// quotes. The single escaping implementation -- do not fork it.
void AppendEscaped(std::string* out, std::string_view s);

/// `s` escaped and wrapped in double quotes.
std::string Quote(std::string_view s);

/// Appends a double with enough digits to round-trip (%.17g), rendering
/// non-finite values as null (JSON has no NaN/Inf).
void AppendDouble(std::string* out, double v);

/// A parsed JSON value. Objects preserve member order (deterministic
/// re-rendering) and expose map-style lookup.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  /// kInt or kDouble.
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  /// Numeric view with int -> double widening.
  double as_double() const { return is_int() ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& as_array() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& as_object() const {
    return object_;
  }

  /// Object member by key, or nullptr (also nullptr when not an object).
  const Value* Find(std::string_view key) const;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value Str(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document. Rejects trailing non-whitespace, unterminated
/// constructs, bad escapes, numbers outside double range and nesting deeper
/// than `max_depth`. Never crashes on any byte sequence (net_test fuzzes
/// this with bit-flipped HTTP bodies).
Result<Value> Parse(std::string_view text, int max_depth = 64);

}  // namespace ned::json

#endif  // NED_COMMON_JSON_H_
