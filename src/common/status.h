/// \file status.h
/// \brief Lightweight error-propagation primitives (Status / Result<T>).
///
/// The library does not use exceptions (per the Google C++ style the project
/// follows). Recoverable failures -- parse errors, unknown attributes, schema
/// mismatches -- are reported through Status / Result<T>; programming errors
/// are caught with NED_DCHECK which aborts.

#ifndef NED_COMMON_STATUS_H_
#define NED_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace ned {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success/error outcome with a message. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Transient inability to serve (overload shedding, shutdown, injected
  /// infrastructure fault). The one code clients should retry with backoff.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined behaviour if !ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` on error. Ref-qualified so
  /// hot paths don't pay silent copies: on an lvalue Result the value is
  /// copied out, on an rvalue Result it is moved out.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieCheckFailure(const char* file, int line, const char* expr,
                                  const std::string& msg);
}  // namespace internal

/// Hard invariant check, active in all build types.
#define NED_CHECK(expr)                                                      \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::ned::internal::DieCheckFailure(__FILE__, __LINE__, #expr, "");       \
    }                                                                        \
  } while (0)

#define NED_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::ned::internal::DieCheckFailure(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                        \
  } while (0)

/// Propagates a non-OK Status from an expression returning Status.
#define NED_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::ned::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result<T> expression or propagates its error.
#define NED_ASSIGN_OR_RETURN(lhs, expr)          \
  auto NED_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!NED_CONCAT_(_res_, __LINE__).ok())        \
    return NED_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(NED_CONCAT_(_res_, __LINE__)).value()

#define NED_CONCAT_INNER_(a, b) a##b
#define NED_CONCAT_(a, b) NED_CONCAT_INNER_(a, b)

}  // namespace ned

#endif  // NED_COMMON_STATUS_H_
