#include "common/hash.h"

namespace ned {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const Crc32Table table;
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table.entries[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ned
