/// \file signal_drain.h
/// \brief Shared SIGTERM/SIGINT -> graceful-drain wiring for serving tools.
///
/// Every long-running binary in this repo (ned_serve, ned_stress,
/// ned_crashtest) follows the same operator contract: SIGTERM or SIGINT
/// does not kill the process, it requests a graceful stop -- finish what is
/// running, journal what is queued as recoverable, exit with books
/// balanced. This header is the one copy of the handler wiring those tools
/// used to triplicate: an async-signal-safe flag setter installed for both
/// signals, and a relaxed-atomic poll the serving loops check.
///
/// Deliberately not part of WhyNotService itself: signal disposition is
/// process-global state that belongs to main(), and tests must be able to
/// run many services in one process without touching handlers.

#ifndef NED_COMMON_SIGNAL_DRAIN_H_
#define NED_COMMON_SIGNAL_DRAIN_H_

namespace ned {

/// Installs the SIGTERM/SIGINT handler that flips the drain flag. The
/// handler only stores a relaxed atomic (async-signal-safe); everything
/// else happens on the polling side. Call once from main() before serving.
void InstallDrainSignalHandlers();

/// True once any drain signal arrived. Poll from serving/submission loops.
bool DrainRequested();

/// Resets the flag (harness restarts between crash cycles).
void ResetDrainRequest();

/// Programmatic drain request (same flag the signals set) -- lets a test or
/// a watchdog thread trigger the graceful-stop path without raising a real
/// signal.
void RequestDrain();

}  // namespace ned

#endif  // NED_COMMON_SIGNAL_DRAIN_H_
