#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace ned {

Result<CsvDocument> ParseCsv(const std::string& text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;        // current physical line (1-based)
  size_t row_line = 1;    // physical line the current row started on
  size_t quote_line = 1;  // physical line the open quote started on

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    doc.rows.push_back(std::move(row));
    doc.line_of.push_back(row_line);
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;  // quoted fields may span physical lines
        field += c;
      }
    } else {
      switch (c) {
        case '"':
          if (!field.empty()) {
            return Status::ParseError(
                "quote inside unquoted CSV field at line " +
                std::to_string(line));
          }
          in_quotes = true;
          quote_line = line;
          field_started = true;
          break;
        case ',':
          end_field();
          field_started = true;  // the next field exists even if empty
          break;
        case '\r':
          break;  // tolerate \r\n
        case '\n':
          end_row();
          ++line;
          row_line = line;
          break;
        default:
          field += c;
          field_started = true;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field opened at line " +
                              std::to_string(quote_line));
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return doc;
}

namespace {
bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}
}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      if (NeedsQuoting(row[i])) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open file for write: " + path);
  out << content;
  return out.good() ? Status::OK()
                    : Status::Internal("short write to file: " + path);
}

}  // namespace ned
