/// \file strings.h
/// \brief Small string utilities shared across the library.

#ifndef NED_COMMON_STRINGS_H_
#define NED_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ned {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Variadic streaming concatenation, e.g. StrCat("m", 3, " picky").
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Pads or truncates `s` to exactly `width` columns (left-aligned).
std::string PadRight(std::string s, size_t width);

/// Pads `s` on the left to at least `width` columns.
std::string PadLeft(std::string s, size_t width);

/// Renders a monospace table: `header` then `rows`; column widths are derived
/// from content. Used by benches and examples to print paper-style tables.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace ned

#endif  // NED_COMMON_STRINGS_H_
