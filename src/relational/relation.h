/// \file relation.h
/// \brief A named, schema-typed collection of tuples.

#ifndef NED_RELATIONAL_RELATION_H_
#define NED_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace ned {

/// Draws the next value from a process-global monotone counter. Stamped onto
/// a Relation by every mutation so caches can use the stamp as a content
/// version: equal stamps imply identical rows (the converse need not hold --
/// a reload that reproduces the same bytes still gets a fresh stamp, which
/// only costs a spurious cache miss, never a stale hit).
uint64_t NextRelationDataStamp();

/// A stored relation instance I|R. Rows are addressed by index; base TupleIds
/// are assigned per query-input alias by QueryInput (see exec/), not here,
/// because the same stored relation may back several aliases (self-joins).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row; NED_CHECKs the arity.
  void AddRow(Tuple t) {
    NED_CHECK_MSG(t.size() == schema_.size(),
                  "row arity mismatch for relation " + name_);
    rows_.push_back(std::move(t));
    data_version_ = NextRelationDataStamp();
  }
  /// Convenience: AddRow from a value list.
  void AddRow(std::vector<Value> values) { AddRow(Tuple(std::move(values))); }

  /// Content-version stamp: 0 for a relation never mutated, otherwise the
  /// global stamp of its last mutation. Copies (e.g. the catalog's COW
  /// snapshots) inherit the stamp, so an untouched relation keeps its version
  /// across a Database copy while a reloaded one gets fresh stamps from its
  /// AddRow calls -- exactly the invalidation granularity the subtree cache
  /// wants (see docs/CACHING.md).
  uint64_t data_version() const { return data_version_; }

  /// Multi-line debug rendering with header.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  uint64_t data_version_ = 0;
};

}  // namespace ned

#endif  // NED_RELATIONAL_RELATION_H_
