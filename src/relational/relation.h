/// \file relation.h
/// \brief A named, schema-typed collection of tuples.

#ifndef NED_RELATIONAL_RELATION_H_
#define NED_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace ned {

/// A stored relation instance I|R. Rows are addressed by index; base TupleIds
/// are assigned per query-input alias by QueryInput (see exec/), not here,
/// because the same stored relation may back several aliases (self-joins).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row; NED_CHECKs the arity.
  void AddRow(Tuple t) {
    NED_CHECK_MSG(t.size() == schema_.size(),
                  "row arity mismatch for relation " + name_);
    rows_.push_back(std::move(t));
  }
  /// Convenience: AddRow from a value list.
  void AddRow(std::vector<Value> values) { AddRow(Tuple(std::move(values))); }

  /// Multi-line debug rendering with header.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace ned

#endif  // NED_RELATIONAL_RELATION_H_
