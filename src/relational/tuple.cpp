#include "relational/tuple.h"

#include "common/strings.h"

namespace ned {

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

std::string Tuple::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    std::string name = i < schema.size() ? schema.at(i).FullName() : "?";
    parts.push_back(name + ":" + values_[i].ToString());
  }
  return "(" + Join(parts, ", ") + ")";
}

size_t Tuple::Hash() const {
  size_t h = 0x345678;
  for (const auto& v : values_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

}  // namespace ned
