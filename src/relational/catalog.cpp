#include "relational/catalog.h"

#include <utility>

namespace ned {

Status Catalog::Register(const std::string& name, Database db) {
  auto snapshot = std::make_shared<const Database>(std::move(db));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(name, Entry{std::move(snapshot), 1});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("database already registered: " + name);
  }
  return Status::OK();
}

Result<Catalog::Snapshot> Catalog::GetSnapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such database: " + name);
  }
  return Snapshot{it->second.db, it->second.version};
}

Result<Catalog::Snapshot> Catalog::GetSnapshotWithFingerprint(
    const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("no such database: " + name);
    }
    if (it->second.fingerprint_version == it->second.version) {
      return Snapshot{it->second.db, it->second.version,
                      it->second.fingerprint};
    }
  }
  // Cache miss: hash off-lock (the snapshot is immutable), then publish the
  // result if the entry is still at the version we hashed. Concurrent
  // misses duplicate the work but always cache a correct pair.
  NED_ASSIGN_OR_RETURN(Snapshot snapshot, GetSnapshot(name));
  snapshot.content_fingerprint = DatabaseContentFingerprint(*snapshot.db);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.version == snapshot.version) {
    it->second.fingerprint = snapshot.content_fingerprint;
    it->second.fingerprint_version = snapshot.version;
  }
  return snapshot;
}

Status Catalog::SwapDatabase(const std::string& name, Database db) {
  auto snapshot = std::make_shared<const Database>(std::move(db));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such database: " + name);
  }
  it->second.db = std::move(snapshot);
  ++it->second.version;
  return Status::OK();
}

Status Catalog::ReloadCsv(const std::string& name, const std::string& relation,
                          const std::string& csv_text) {
  // Copy and mutate outside the lock: a large reload must not block
  // admission or other snapshot reads while it parses.
  NED_ASSIGN_OR_RETURN(Snapshot base, GetSnapshot(name));
  Database copy = *base.db;
  if (copy.HasRelation(relation)) {
    NED_RETURN_NOT_OK(copy.RemoveRelation(relation));
  }
  NED_RETURN_NOT_OK(copy.LoadCsv(relation, csv_text));
  auto snapshot = std::make_shared<const Database>(std::move(copy));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("database dropped during reload: " + name);
  }
  it->second.db = std::move(snapshot);
  ++it->second.version;
  return Status::OK();
}

bool Catalog::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

uint64_t Catalog::VersionOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<std::string> Catalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  return names;
}

}  // namespace ned
