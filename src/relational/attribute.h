/// \file attribute.h
/// \brief Qualified attribute names (paper Sec. 2.1).
///
/// Relation-schema attributes are always qualified by the relation (alias)
/// name, e.g. `A.dob`. Renamings (Def. 2.1) and aggregations introduce *new
/// unqualified* attributes, e.g. `aid` or `ap`. Qualification is the device
/// NedExplain uses to locate compatible tuples in the correct instance of a
/// self-joined relation -- the Why-Not baseline ignores it, which is one of
/// the shortcomings the paper demonstrates (use cases Crime6/7).

#ifndef NED_RELATIONAL_ATTRIBUTE_H_
#define NED_RELATIONAL_ATTRIBUTE_H_

#include <functional>
#include <string>

namespace ned {

/// An attribute name, optionally qualified by a relation (alias) name.
struct Attribute {
  std::string qualifier;  ///< relation/alias name; empty for new attributes
  std::string name;       ///< attribute name proper

  Attribute() = default;
  Attribute(std::string qualifier_in, std::string name_in)
      : qualifier(std::move(qualifier_in)), name(std::move(name_in)) {}

  /// Constructs an unqualified attribute (renaming/aggregation output).
  static Attribute Unqualified(std::string name) {
    return Attribute("", std::move(name));
  }

  bool qualified() const { return !qualifier.empty(); }

  /// "A.dob" or "aid".
  std::string FullName() const {
    return qualified() ? qualifier + "." + name : name;
  }

  /// Parses "A.dob" -> {A, dob}; "aid" -> {"", aid}. The first '.' splits.
  static Attribute Parse(const std::string& text);

  bool operator==(const Attribute& other) const {
    return qualifier == other.qualifier && name == other.name;
  }
  bool operator!=(const Attribute& other) const { return !(*this == other); }
  bool operator<(const Attribute& other) const {
    if (qualifier != other.qualifier) return qualifier < other.qualifier;
    return name < other.name;
  }
};

struct AttributeHash {
  size_t operator()(const Attribute& a) const {
    return std::hash<std::string>()(a.qualifier) * 1000003 +
           std::hash<std::string>()(a.name);
  }
};

}  // namespace ned

#endif  // NED_RELATIONAL_ATTRIBUTE_H_
