/// \file catalog.h
/// \brief Snapshot-isolated catalog of named database instances.
///
/// The single-request tools hold a Database by reference for their whole
/// lifetime; a concurrent service cannot, because a CSV reload or dataset
/// swap arriving mid-request would mutate relations under a running
/// evaluation. The Catalog makes Database reachable only through immutable
/// `shared_ptr<const Database>` snapshots: a request pins the snapshot it
/// was admitted under and keeps it alive until it finishes, while reloads
/// build a *copy* off-lock (copy-on-write) and atomically publish it with a
/// bumped version. In-flight requests keep reading their pinned instance;
/// the old Database is freed when the last pinned snapshot drops.
///
/// Concurrent reloads of the same database are last-writer-wins (each copies
/// the snapshot current when it started); versions still increase
/// monotonically, so readers can detect that they raced.

#ifndef NED_RELATIONAL_CATALOG_H_
#define NED_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"

namespace ned {

/// Thread-safe registry of named, versioned, immutable database snapshots.
class Catalog {
 public:
  /// One pinned view of a database: the instance plus the version it was
  /// published under. Copyable; keeps the instance alive while held.
  struct Snapshot {
    std::shared_ptr<const Database> db;
    uint64_t version = 0;
    /// Stable content fingerprint (DatabaseContentFingerprint), filled only
    /// by GetSnapshotWithFingerprint; 0 from plain GetSnapshot. Unlike
    /// `version`, it survives process restarts, so it is what durable cache
    /// keys embed.
    uint64_t content_fingerprint = 0;
  };

  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new database under `name` at version 1; error if the name
  /// already exists (use SwapDatabase to replace).
  Status Register(const std::string& name, Database db);

  /// The current snapshot of `name`; error when absent.
  Result<Snapshot> GetSnapshot(const std::string& name) const;

  /// GetSnapshot plus a filled `content_fingerprint`. The fingerprint is
  /// computed off-lock on first demand per published version and cached on
  /// the entry, so steady-state calls cost one map lookup; only the first
  /// request after a reload pays the O(data) hash. Used by the durability
  /// layer; services with persistence off never pay for it.
  Result<Snapshot> GetSnapshotWithFingerprint(const std::string& name) const;

  /// Replaces the whole instance under `name` with `db`, bumping the
  /// version. In-flight snapshot holders are unaffected.
  Status SwapDatabase(const std::string& name, Database db);

  /// Copy-on-write CSV reload: copies the current snapshot of `name`,
  /// replaces (or creates) `relation` from `csv_text` on the copy, and
  /// publishes the copy under a bumped version. Atomic on failure by
  /// construction: all mutation happens on the private copy, so a parse
  /// error discards the copy and leaves both the published snapshot and
  /// the version counter untouched -- readers admitted before, during or
  /// after a failed reload all see the last good database. Asserted by
  /// relational_test and exercised concurrently by ned_stress's reloader.
  Status ReloadCsv(const std::string& name, const std::string& relation,
                   const std::string& csv_text);

  bool Has(const std::string& name) const;
  /// Current version of `name` (0 when absent).
  uint64_t VersionOf(const std::string& name) const;
  /// Registered database names in sorted order.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::shared_ptr<const Database> db;
    uint64_t version = 0;
    /// Cached DatabaseContentFingerprint of `db`, valid only when
    /// `fingerprint_version == version` (reloads invalidate by bumping
    /// the version, never by clearing this field). Mutable: filling the
    /// cache is logically const (guarded by mu_ like everything else).
    mutable uint64_t fingerprint = 0;
    mutable uint64_t fingerprint_version = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ned

#endif  // NED_RELATIONAL_CATALOG_H_
