/// \file database.h
/// \brief A database instance: named relations + CSV import/export.
///
/// Stands in for the PostgreSQL 9.2 backend of the paper's implementation.
/// NedExplain only needs relation scans and id-addressed tuple access, both
/// of which this in-memory catalog provides exactly.

#ifndef NED_RELATIONAL_DATABASE_H_
#define NED_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace ned {

/// An instance I over a database schema S (paper Sec. 2.1).
class Database {
 public:
  /// Registers an empty relation; error if the name exists.
  Status CreateRelation(const std::string& name, Schema schema);

  /// Adds (moves) a fully built relation.
  Status AddRelation(Relation relation);

  /// Drops a relation; error when absent. Together with LoadCsv this is the
  /// copy-on-write reload primitive the Catalog uses: copy the Database,
  /// remove + reload the relation on the copy, publish the copy.
  Status RemoveRelation(const std::string& name);

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }
  /// Looks up a relation; error when absent.
  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Relation names in insertion-independent (sorted) order.
  std::vector<std::string> RelationNames() const;

  size_t relation_count() const { return relations_.size(); }
  /// Total row count across relations.
  size_t TotalRows() const;

  /// Loads a relation from CSV text. The header row gives attribute names,
  /// which are qualified with `name` (e.g. header "aid,name" under relation
  /// "A" becomes {A.aid, A.name}). Values parse leniently (int/double/string).
  Status LoadCsv(const std::string& name, const std::string& csv_text);

  /// Serialises a relation back to CSV (header uses unqualified names).
  Result<std::string> DumpCsv(const std::string& name) const;

  /// Multi-line summary of all relations.
  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

/// Stable FNV-1a 64 fingerprint of the database's full content: relation
/// names, schemas and every row value, in sorted relation order. Unlike
/// Relation::data_version (a process-local monotone stamp that restarts at
/// an arbitrary point each run) and Catalog snapshot versions (which reset
/// to 1 on restart), the fingerprint depends only on the bytes of the data,
/// so it is the component of a durable cache key that must stay valid
/// across process restarts (see src/persist/answer_store.h). Two databases
/// with equal fingerprints have identical content for why-not purposes;
/// the converse holds up to hash collision (2^-64 per pair).
uint64_t DatabaseContentFingerprint(const Database& db);

}  // namespace ned

#endif  // NED_RELATIONAL_DATABASE_H_
