/// \file schema.h
/// \brief Ordered attribute lists (the paper's "types").
///
/// A Schema is the `type(t)` / `type(R)` of Sec. 2.1: an ordered set of
/// attributes. Order matters for tuple layout; set operations (containment,
/// intersection) are provided for the type-level reasoning the definitions
/// use (e.g. Def. 2.8 compatibility intersects `type(t)` and `type(tc)`).

#ifndef NED_RELATIONAL_SCHEMA_H_
#define NED_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/attribute.h"

namespace ned {

/// An ordered list of distinct attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);
  Schema(std::initializer_list<Attribute> attrs)
      : Schema(std::vector<Attribute>(attrs)) {}

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  const Attribute& at(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Appends an attribute; NED_CHECKs against duplicates.
  void Add(Attribute attr);

  /// Index of an exactly matching attribute, or nullopt.
  std::optional<size_t> IndexOf(const Attribute& attr) const;

  /// Resolves a possibly-unqualified reference: if `ref` is qualified this is
  /// IndexOf; otherwise the unique attribute whose name matches (error when
  /// ambiguous or absent). This is what the SQL binder uses.
  Result<size_t> Resolve(const Attribute& ref) const;

  /// Indices of every attribute whose unqualified name equals `name`
  /// (case-sensitive). Used by the Why-Not baseline's per-name matching.
  std::vector<size_t> IndicesWithName(const std::string& name) const;

  bool Contains(const Attribute& attr) const {
    return IndexOf(attr).has_value();
  }
  /// True if every attribute of `other` occurs in this schema.
  bool ContainsAll(const Schema& other) const;

  /// Schema with this schema's attributes followed by `other`'s.
  Schema Concat(const Schema& other) const;

  /// Sub-schema in the order given by `attrs`; error if any is missing.
  Result<Schema> Project(const std::vector<Attribute>& attrs) const;

  /// "{A.name, A.dob}".
  std::string ToString() const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace ned

#endif  // NED_RELATIONAL_SCHEMA_H_
