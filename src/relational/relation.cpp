#include "relational/relation.h"

#include <atomic>

#include "common/strings.h"

namespace ned {

uint64_t NextRelationDataStamp() {
  // Starts at 1 so stamp 0 unambiguously means "never mutated". Relaxed is
  // enough: the stamp only needs uniqueness, not ordering against other data.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string Relation::ToString(size_t max_rows) const {
  std::vector<std::string> header;
  for (const auto& a : schema_.attributes()) header.push_back(a.FullName());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    std::vector<std::string> row;
    for (const auto& v : rows_[i].values()) row.push_back(v.ToString());
    cells.push_back(std::move(row));
  }
  std::string out = name_ + " (" + std::to_string(rows_.size()) + " rows)\n";
  out += RenderTable(header, cells);
  if (rows_.size() > max_rows) {
    out += "... " + std::to_string(rows_.size() - max_rows) + " more rows\n";
  }
  return out;
}

}  // namespace ned
