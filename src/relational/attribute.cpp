#include "relational/attribute.h"

namespace ned {

Attribute Attribute::Parse(const std::string& text) {
  size_t dot = text.find('.');
  if (dot == std::string::npos) return Attribute("", text);
  return Attribute(text.substr(0, dot), text.substr(dot + 1));
}

}  // namespace ned
