/// \file tuple.h
/// \brief Tuples and stable base-tuple identifiers.
///
/// Base tuples (rows of the query input instance I_Q) carry a stable TupleId,
/// mirroring the paper's assumption (footnote 2) that every table has a key
/// attribute identifying each tuple. Lineage sets and compatible sets are
/// sets of TupleIds. For self-joins, each *alias* of a relation gets its own
/// id range: the same stored row seen through aliases C1 and C2 is two
/// distinct tuples of I_Q (Def. 2.3's eta_Q), with distinct ids.

#ifndef NED_RELATIONAL_TUPLE_H_
#define NED_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace ned {

/// Identifier of a base tuple of the query input instance.
/// Layout: high 24 bits = alias ordinal within the query input; low 40 bits =
/// row index. 0 is reserved as "invalid".
using TupleId = uint64_t;

inline constexpr TupleId kInvalidTupleId = 0;

/// Packs an alias ordinal and row index into a TupleId (1-based alias so the
/// id is never 0).
inline TupleId MakeTupleId(uint32_t alias_ordinal, uint64_t row) {
  return (static_cast<uint64_t>(alias_ordinal + 1) << 40) | (row & ((1ULL << 40) - 1));
}
inline uint32_t TupleIdAlias(TupleId id) {
  return static_cast<uint32_t>(id >> 40) - 1;
}
inline uint64_t TupleIdRow(TupleId id) { return id & ((1ULL << 40) - 1); }

/// A flat list of values; its type lives in the enclosing Relation / node.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  /// "(Homer, 800BC)" -- values only.
  std::string ToString() const;
  /// "(A.name:Homer, A.dob:800BC)" -- with attribute names from `schema`.
  std::string ToString(const Schema& schema) const;

  /// Order-sensitive value hash (for set semantics de-duplication).
  size_t Hash() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace ned

#endif  // NED_RELATIONAL_TUPLE_H_
