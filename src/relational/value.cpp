#include "relational/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace ned {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return op;
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;  // = and != are symmetric
  }
}

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(as_int());
    case ValueType::kDouble: return as_double();
    default:
      NED_CHECK_MSG(false, "NumericValue on non-numeric Value");
      return 0;
  }
}

std::optional<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.NumericValue(), y = b.NumericValue();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;  // string vs number: incomparable
}

bool Value::Satisfies(const Value& a, CompareOp op, const Value& b) {
  std::optional<int> c = Compare(a, b);
  if (!c.has_value()) return false;
  switch (op) {
    case CompareOp::kEq: return *c == 0;
    case CompareOp::kNe: return *c != 0;
    case CompareOp::kLt: return *c < 0;
    case CompareOp::kLe: return *c <= 0;
    case CompareOp::kGt: return *c > 0;
    case CompareOp::kGe: return *c >= 0;
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueType::kString: return as_string();
  }
  return "?";
}

Value Value::ParseLenient(const std::string& text) {
  if (text.empty()) return Null();
  const char* begin = text.data();
  const char* end = begin + text.size();

  int64_t i = 0;
  auto [p1, ec1] = std::from_chars(begin, end, i);
  if (ec1 == std::errc() && p1 == end) return Int(i);

  double d = 0;
  auto [p2, ec2] = std::from_chars(begin, end, d);
  if (ec2 == std::errc() && p2 == end) return Real(d);

  return Str(text);
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      h ^= std::hash<int64_t>()(as_int());
      break;
    case ValueType::kDouble: {
      // Hash doubles that equal an integer identically to that integer so
      // that numeric-coerced equality groups hash consistently in joins.
      double d = as_double();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        h = static_cast<size_t>(ValueType::kInt) * 0x9e3779b97f4a7c15ULL;
        h ^= std::hash<int64_t>()(static_cast<int64_t>(d));
      } else {
        h ^= std::hash<double>()(d);
      }
      break;
    }
    case ValueType::kString:
      h ^= std::hash<std::string>()(as_string());
      break;
  }
  return h;
}

}  // namespace ned
