/// \file value.h
/// \brief Typed scalar values stored in tuples.
///
/// The paper's data model is the standard relational model; values in the
/// evaluation databases are integers, decimals and strings (plus SQL NULL).
/// Comparisons follow SQL semantics with numeric coercion between int and
/// double; NULL compares as unknown (all comparisons against NULL are false).

#ifndef NED_RELATIONAL_VALUE_H_
#define NED_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "common/status.h"

namespace ned {

/// Runtime type tag of a Value.
enum class ValueType { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// Comparison operators (paper Def. 2.5's `cop`).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);
/// Logical negation, e.g. Negate(kLt) == kGe.
CompareOp NegateOp(CompareOp op);
/// Mirror for swapped operands, e.g. Mirror(kLt) == kGt.
CompareOp MirrorOp(CompareOp op);

/// An immutable scalar value: NULL, 64-bit int, double, or string.
class Value {
 public:
  /// Default-constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  /// Convenience for string literals.
  static Value Str(const char* v) { return Str(std::string(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view with int->double widening; NED_CHECKs on non-numeric.
  double NumericValue() const;

  /// Three-way comparison. Returns nullopt when incomparable (NULL involved,
  /// or string vs number). Negative/zero/positive otherwise.
  static std::optional<int> Compare(const Value& a, const Value& b);

  /// Evaluates `a op b` with SQL-ish semantics: any NULL operand or a
  /// string/number type clash yields false.
  static bool Satisfies(const Value& a, CompareOp op, const Value& b);

  /// Exact equality (same type and payload); NULL equals NULL here, unlike
  /// Satisfies(kEq). Used for container membership, not query evaluation.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Renders for display: NULL -> "NULL", strings unquoted.
  std::string ToString() const;

  /// Parses a CSV field: "" -> NULL, integral text -> Int, decimal -> Real,
  /// otherwise Str.
  static Value ParseLenient(const std::string& text);

  /// Hash combining type and payload.
  size_t Hash() const;

 private:
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Payload p) : data_(std::move(p)) {}
  Payload data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ned

#endif  // NED_RELATIONAL_VALUE_H_
