#include "relational/schema.h"

#include "common/strings.h"

namespace ned {

Schema::Schema(std::vector<Attribute> attrs) {
  for (auto& a : attrs) Add(std::move(a));
}

void Schema::Add(Attribute attr) {
  NED_CHECK_MSG(!IndexOf(attr).has_value(),
                "duplicate attribute in schema: " + attr.FullName());
  attrs_.push_back(std::move(attr));
}

std::optional<size_t> Schema::IndexOf(const Attribute& attr) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == attr) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::Resolve(const Attribute& ref) const {
  if (ref.qualified()) {
    auto idx = IndexOf(ref);
    if (!idx.has_value()) {
      return Status::NotFound("attribute not in schema: " + ref.FullName() +
                              " (schema " + ToString() + ")");
    }
    return *idx;
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == ref.name) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous attribute reference: " +
                                       ref.name);
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("attribute not in schema: " + ref.name +
                            " (schema " + ToString() + ")");
  }
  return *found;
}

std::vector<size_t> Schema::IndicesWithName(const std::string& name) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) out.push_back(i);
  }
  return out;
}

bool Schema::ContainsAll(const Schema& other) const {
  for (const auto& a : other.attributes()) {
    if (!Contains(a)) return false;
  }
  return true;
}

Schema Schema::Concat(const Schema& other) const {
  Schema out = *this;
  for (const auto& a : other.attributes()) out.Add(a);
  return out;
}

Result<Schema> Schema::Project(const std::vector<Attribute>& attrs) const {
  Schema out;
  for (const auto& a : attrs) {
    if (!Contains(a)) {
      return Status::NotFound("projection attribute not in schema: " +
                              a.FullName());
    }
    out.Add(a);
  }
  return out;
}

std::string Schema::ToString() const {
  std::vector<std::string> names;
  names.reserve(attrs_.size());
  for (const auto& a : attrs_) names.push_back(a.FullName());
  return "{" + Join(names, ", ") + "}";
}

}  // namespace ned
