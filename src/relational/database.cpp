#include "relational/database.h"

#include <cstring>

#include "common/csv.h"
#include "common/hash.h"
#include "common/strings.h"

namespace ned {

Status Database::CreateRelation(const std::string& name, Schema schema) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  relations_.emplace(name, Relation(name, std::move(schema)));
  return Status::OK();
}

Status Database::AddRelation(Relation relation) {
  if (HasRelation(relation.name())) {
    return Status::AlreadyExists("relation already exists: " + relation.name());
  }
  std::string name = relation.name();
  relations_.emplace(std::move(name), std::move(relation));
  return Status::OK();
}

Status Database::RemoveRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  relations_.erase(it);
  return Status::OK();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return &it->second;
}

Result<Relation*> Database::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, _] : relations_) names.push_back(name);
  return names;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [_, rel] : relations_) total += rel.size();
  return total;
}

Status Database::LoadCsv(const std::string& name, const std::string& csv_text) {
  NED_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv_text));
  if (doc.rows.empty()) {
    return Status::InvalidArgument("CSV for relation " + name + " has no header");
  }
  Schema schema;
  for (const auto& col : doc.rows[0]) {
    std::string trimmed = Trim(col);
    if (schema.IndexOf(Attribute(name, trimmed)).has_value()) {
      return Status::ParseError(StrCat("duplicate CSV header \"", trimmed,
                                       "\" in relation ", name, " (line ",
                                       doc.line_of[0], ")"));
    }
    schema.Add(Attribute(name, std::move(trimmed)));
  }
  Relation rel(name, schema);
  // Per-column type discipline: the first non-null value fixes a column as
  // numeric or textual; a later non-empty field that breaks that (e.g.
  // "12x3" in a numeric column) is a load error, not a silent string.
  // Int->double widening within numeric stays allowed.
  std::vector<ValueType> col_type(schema.size(), ValueType::kNull);
  for (size_t r = 1; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    size_t line = r < doc.line_of.size() ? doc.line_of[r] : r + 1;
    if (row.size() != schema.size()) {
      return Status::ParseError(StrCat("CSV row at line ", line,
                                       " of relation ", name, " has ",
                                       row.size(), " fields, expected ",
                                       schema.size()));
    }
    std::vector<Value> values;
    values.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      Value v = Value::ParseLenient(row[c]);
      if (!v.is_null()) {
        bool numeric = v.is_numeric();
        if (col_type[c] == ValueType::kNull) {
          col_type[c] = numeric ? ValueType::kInt : ValueType::kString;
        } else if ((col_type[c] == ValueType::kInt) != numeric) {
          return Status::ParseError(
              StrCat("value \"", row[c], "\" at line ", line, " of relation ",
                     name, " does not match the ",
                     col_type[c] == ValueType::kInt ? "numeric" : "textual",
                     " type of column ", schema.at(c).name));
        }
      }
      values.push_back(std::move(v));
    }
    rel.AddRow(std::move(values));
  }
  return AddRelation(std::move(rel));
}

Result<std::string> Database::DumpCsv(const std::string& name) const {
  NED_ASSIGN_OR_RETURN(const Relation* rel, GetRelation(name));
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (const auto& a : rel->schema().attributes()) header.push_back(a.name);
  rows.push_back(std::move(header));
  for (const auto& t : rel->rows()) {
    std::vector<std::string> row;
    for (const auto& v : t.values()) {
      row.push_back(v.is_null() ? "" : v.ToString());
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += name + ": " + std::to_string(rel.size()) + " rows, schema " +
           rel.schema().ToString() + "\n";
  }
  return out;
}

namespace {

// Hashes with explicit type tags and length prefixes so distinct structures
// never collide by concatenation (e.g. rows ("ab","c") vs ("a","bc")).
uint64_t HashU64(uint64_t v, uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>((v >> (8 * i)) & 0xFFu);
    h = Fnv1a64(std::string_view(&byte, 1), h);
  }
  return h;
}

uint64_t HashStr(const std::string& s, uint64_t h) {
  h = HashU64(s.size(), h);
  return Fnv1a64(s, h);
}

uint64_t HashValue(const Value& v, uint64_t h) {
  h = HashU64(static_cast<uint64_t>(v.type()), h);
  switch (v.type()) {
    case ValueType::kNull:
      return h;
    case ValueType::kInt:
      return HashU64(static_cast<uint64_t>(v.as_int()), h);
    case ValueType::kDouble: {
      // Raw bit pattern: the fingerprint must distinguish 0.0 from -0.0
      // exactly when the stored bytes differ.
      uint64_t bits = 0;
      const double d = v.as_double();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashU64(bits, h);
    }
    case ValueType::kString:
      return HashStr(v.as_string(), h);
  }
  return h;
}

}  // namespace

uint64_t DatabaseContentFingerprint(const Database& db) {
  uint64_t h = kFnvOffsetBasis;
  const std::vector<std::string> names = db.RelationNames();
  h = HashU64(names.size(), h);
  for (const std::string& name : names) {
    const Relation* rel = db.GetRelation(name).value();
    h = HashStr(name, h);
    h = HashU64(rel->schema().size(), h);
    for (const Attribute& attr : rel->schema().attributes()) {
      h = HashStr(attr.qualifier, h);
      h = HashStr(attr.name, h);
    }
    h = HashU64(rel->size(), h);
    for (const Tuple& row : rel->rows()) {
      for (const Value& v : row.values()) h = HashValue(v, h);
    }
  }
  return h;
}

}  // namespace ned
