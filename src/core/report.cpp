#include "core/report.h"

#include "common/strings.h"

namespace ned {

std::string AnswerSummary::ToString() const {
  std::string out = "condensed=[" + Join(condensed, ",") + "] detailed=" +
                    std::to_string(detailed.size()) + " secondary=[" +
                    Join(secondary, ",") + "]";
  out += complete ? " (complete)" : " (" + completeness + ")";
  // Rendered only when degraded, so L0 output (and every golden pinned
  // before brownout existed) is byte-identical.
  if (degradation_level > 0) out += " degraded=" + degradation;
  return out;
}

AnswerSummary SummarizeResult(const NedExplainEngine& engine,
                              const NedExplainResult& result) {
  const QueryInput& input = engine.last_input();
  AnswerSummary summary;
  summary.detailed.reserve(result.answer.detailed.size());
  for (const DetailedEntry& entry : result.answer.detailed) {
    summary.detailed.push_back(WhyNotAnswer::EntryToString(entry, input));
  }
  for (const OperatorNode* node : result.answer.condensed) {
    summary.condensed.push_back(node->name);
  }
  for (const OperatorNode* node : result.answer.secondary) {
    summary.secondary.push_back(node->name);
  }
  summary.dir_total = result.dir_total;
  summary.indir_total = result.indir_total;
  for (const CTupleExplainResult& part : result.per_ctuple) {
    summary.survivors_at_root += part.survivors_at_root;
  }
  summary.complete = result.completeness.complete;
  summary.tripped = result.completeness.tripped;
  summary.completeness = result.completeness.ToString();
  summary.subtree_cache_hits = result.subtree_cache_hits;
  summary.subtree_cache_misses = result.subtree_cache_misses;
  return summary;
}

std::string RenderExplainReport(const NedExplainEngine& engine,
                                const WhyNotQuestion& question,
                                const NedExplainResult& result) {
  const QueryInput& input = engine.last_input();
  std::string out;
  out += "Why-Not question: " + question.ToString() + "\n";
  out += "Unrenamed       : " + result.unrenamed.ToString() + "\n";
  out += "Query tree:\n" + engine.tree().ToString();
  if (engine.breakpoint() != nullptr) {
    out += "Breakpoint view V: " + engine.breakpoint()->name + " (" +
           engine.breakpoint()->Describe() + ")\n";
  }
  out += StrCat("|Dir| = ", result.dir_total, ", |InDir| = ",
                result.indir_total, "\n");
  if (!result.completeness.complete) {
    // Honest degradation: say up front that a limit stopped the run and how
    // far it got, so a partial answer is never mistaken for a full one.
    out += "*** PARTIAL RESULT: " + result.completeness.ToString() + " ***\n";
  }
  for (size_t i = 0; i < result.per_ctuple.size(); ++i) {
    const CTupleExplainResult& part = result.per_ctuple[i];
    out += StrCat("-- c-tuple ", i + 1, ": ", part.ctuple.ToString(), "\n");
    if (!part.complete) {
      out += "   limit tripped: " + part.limit_status.ToString() +
             (part.stopped_at != nullptr
                  ? " (while processing " + part.stopped_at->name + ")"
                  : "") +
             "\n";
    }
    for (const auto& [alias, ids] : part.compat.dir_by_alias) {
      std::vector<std::string> names;
      for (TupleId id : ids) names.push_back(input.DisplayTuple(id));
      out += "   Dir|" + alias + " = {" + Join(names, ", ") + "}\n";
    }
    if (part.early_terminated && part.terminated_at != nullptr) {
      out += "   early termination before " + part.terminated_at->name + "\n";
    }
    if (part.survivors_at_root > 0) {
      out += StrCat("   note: ", part.survivors_at_root,
                    " compatible successor(s) reached the result -- the asked "
                    "data may not be missing\n");
    }
    if (!part.tabq_dump.empty()) out += part.tabq_dump;
  }
  out += (result.completeness.complete ? "Answer:\n" : "Answer (partial):\n") +
         result.answer.ToString(input);
  return out;
}

std::string RenderPhaseBreakdown(const PhaseTimer& phases) {
  static const char* kOrder[] = {phase::kInitialization, phase::kCompatibleFinder,
                                 phase::kSuccessorsFinder, phase::kBottomUp};
  int64_t total = phases.TotalNanos();
  std::string out;
  for (const char* name : kOrder) {
    int64_t ns = phases.Nanos(name);
    double pct = total > 0 ? 100.0 * static_cast<double>(ns) /
                                 static_cast<double>(total)
                           : 0.0;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-16s %10.3f ms  (%5.1f%%)\n", name,
                  static_cast<double>(ns) / 1e6, pct);
    out += buf;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %-16s %10.3f ms\n", "total",
                static_cast<double>(total) / 1e6);
  out += buf;
  return out;
}

}  // namespace ned
