/// \file answers.h
/// \brief Why-Not answer representations (paper Defs. 2.12-2.14).

#ifndef NED_CORE_ANSWERS_H_
#define NED_CORE_ANSWERS_H_

#include <string>
#include <vector>

#include "algebra/query_tree.h"
#include "exec/evaluator.h"
#include "relational/tuple.h"

namespace ned {

/// One element of the detailed Why-Not answer: a picked compatible source
/// tuple and the subquery that picked it. `dir_tuple == kInvalidTupleId`
/// encodes the paper's (⊥, Q') entries, produced when a subquery's output
/// stops satisfying the aggregation condition although its input did.
struct DetailedEntry {
  TupleId dir_tuple = kInvalidTupleId;
  const OperatorNode* subquery = nullptr;

  bool is_bottom() const { return dir_tuple == kInvalidTupleId; }
  bool operator==(const DetailedEntry& other) const {
    return dir_tuple == other.dir_tuple && subquery == other.subquery;
  }
};

/// The three answer granularities for one question (or one c-tuple).
struct WhyNotAnswer {
  /// Detailed answer dW (Def. 2.12): pairs (t_I, Q') plus (⊥, Q').
  std::vector<DetailedEntry> detailed;
  /// Condensed answer dcW (Def. 2.13): the distinct picky subqueries.
  std::vector<const OperatorNode*> condensed;
  /// Secondary answer sW (Def. 2.14): subqueries that lost *all* tuples of
  /// an indirect-compatible relation.
  std::vector<const OperatorNode*> secondary;

  bool empty() const {
    return detailed.empty() && condensed.empty() && secondary.empty();
  }

  /// Set-unions `other` into this answer (used to combine per-c-tuple
  /// answers into the answer of a disjunctive predicate).
  void MergeFrom(const WhyNotAnswer& other);

  /// Rebuilds `condensed` from `detailed` (dedup in first-seen order).
  void DeriveCondensed();

  /// "(P.id:604, m0)" rendering of one detailed entry.
  static std::string EntryToString(const DetailedEntry& entry,
                                   const QueryInput& input);

  /// Multi-line rendering of all three granularities.
  std::string ToString(const QueryInput& input) const;
  /// Compact one-line forms used in the Table 5 bench.
  std::string DetailedToString(const QueryInput& input) const;
  std::string CondensedToString() const;
  std::string SecondaryToString() const;
};

}  // namespace ned

#endif  // NED_CORE_ANSWERS_H_
