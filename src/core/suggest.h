/// \file suggest.h
/// \brief Modification-based hints derived from query-based answers.
///
/// The paper's conclusion notes that query-based explanations "could further
/// be used to obtain modification-based explanations" (in the spirit of
/// ConQueR [20] / top-k why-not [10]); its introduction gives the canonical
/// example: relaxing `A.dob > 800BC` to `A.dob >= 800BC` makes the missing
/// Homer tuple appear. This module implements that step: for every blamed
/// *selection* in a detailed Why-Not answer it computes the minimal
/// relaxation of the comparison that admits the blocked compatible tuples,
/// and for blamed *joins* it reports which join-partner values are missing.

#ifndef NED_CORE_SUGGEST_H_
#define NED_CORE_SUGGEST_H_

#include <string>
#include <vector>

#include "core/nedexplain.h"

namespace ned {

/// One actionable hint attached to a blamed subquery.
struct ModificationHint {
  const OperatorNode* node = nullptr;
  /// Human-readable suggestion, e.g.
  /// "relax sigma A.dob > -800 to A.dob >= -800 (admits A.aid:a1)".
  std::string description;
  /// For selections: the relaxed predicate that admits the blocked tuples;
  /// nullptr for join hints (those require data changes, not query changes).
  ExprPtr relaxed_predicate;
  /// Dir tuples this hint would admit (display names).
  std::vector<std::string> admits;
};

/// Derives hints from `result` (must come from `engine.Explain`; the
/// engine's last input instance is used to read the blocked tuples' values).
/// Only simple `attr cop constant` selections yield predicate relaxations;
/// other blamed operators yield descriptive hints.
Result<std::vector<ModificationHint>> SuggestModifications(
    const NedExplainEngine& engine, const NedExplainResult& result);

}  // namespace ned

#endif  // NED_CORE_SUGGEST_H_
