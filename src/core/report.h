/// \file report.h
/// \brief Human-readable reports of NedExplain runs (examples & benches).

#ifndef NED_CORE_REPORT_H_
#define NED_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/nedexplain.h"

namespace ned {

/// A self-contained rendering of a NedExplainResult. NedExplainResult holds
/// OperatorNode* / TupleId references into the engine's tree and input
/// instance, so it must not outlive them; AnswerSummary copies everything
/// into strings, making it safe to hand across thread and lifetime
/// boundaries (the service returns these from its workers after the
/// per-request tree and snapshot are gone).
struct AnswerSummary {
  std::vector<std::string> detailed;   ///< "(P.id:604, m0)" per entry
  std::vector<std::string> condensed;  ///< picky subquery names
  std::vector<std::string> secondary;  ///< secondary-answer subquery names
  size_t dir_total = 0;
  size_t indir_total = 0;
  size_t survivors_at_root = 0;
  bool complete = true;
  StatusCode tripped = StatusCode::kOk;
  /// ResultCompleteness::ToString() of the run.
  std::string completeness;
  /// Subtree-cache traffic of the run that produced this answer (both 0
  /// when no cache was attached). Note these describe the *computation*,
  /// not the answer content: the answer-cache key deliberately excludes
  /// them, and a summary replayed from the answer cache reports the
  /// original run's counters.
  size_t subtree_cache_hits = 0;
  size_t subtree_cache_misses = 0;
  /// Brownout ladder level this answer was computed at (0 = full quality).
  /// Degraded answers are honestly flagged and never stored in the answer
  /// cache; see service/brownout.h for the ladder semantics.
  int degradation_level = 0;
  /// Human-readable degradation tag ("L1:no-secondary", ...); empty at L0.
  std::string degradation;

  bool empty() const {
    return detailed.empty() && condensed.empty() && secondary.empty();
  }
  /// One-line "condensed=[m0,m2] detailed=2 (complete)" form.
  std::string ToString() const;
};

/// Copies `result` into an AnswerSummary using the engine's last input
/// instance to render tuples. Call on the thread that ran Explain, while the
/// engine (and its tree/database) are still alive.
AnswerSummary SummarizeResult(const NedExplainEngine& engine,
                              const NedExplainResult& result);

/// Renders a full explanation report: the question, its unrenamed form,
/// compatible-set sizes, per-c-tuple answers and the merged answer; when the
/// engine kept TabQ dumps, those are included (Table 1/2 style).
std::string RenderExplainReport(const NedExplainEngine& engine,
                                const WhyNotQuestion& question,
                                const NedExplainResult& result);

/// Renders the phase breakdown of a run: absolute ms and percentages in the
/// paper's Fig. 5 phase order.
std::string RenderPhaseBreakdown(const PhaseTimer& phases);

}  // namespace ned

#endif  // NED_CORE_REPORT_H_
