/// \file report.h
/// \brief Human-readable reports of NedExplain runs (examples & benches).

#ifndef NED_CORE_REPORT_H_
#define NED_CORE_REPORT_H_

#include <string>

#include "core/nedexplain.h"

namespace ned {

/// Renders a full explanation report: the question, its unrenamed form,
/// compatible-set sizes, per-c-tuple answers and the merged answer; when the
/// engine kept TabQ dumps, those are included (Table 1/2 style).
std::string RenderExplainReport(const NedExplainEngine& engine,
                                const WhyNotQuestion& question,
                                const NedExplainResult& result);

/// Renders the phase breakdown of a run: absolute ms and percentages in the
/// paper's Fig. 5 phase order.
std::string RenderPhaseBreakdown(const PhaseTimer& phases);

}  // namespace ned

#endif  // NED_CORE_REPORT_H_
