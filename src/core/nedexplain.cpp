#include "core/nedexplain.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "expr/satisfiability.h"
#include "obs/trace.h"

#ifdef NED_FORCE_SUBTREE_CACHE
#include "cache/subtree_cache.h"
#endif
#ifdef NED_FORCE_PARALLEL
#include "exec/parallel.h"
#endif

namespace ned {

std::string ResultCompleteness::ToString() const {
  if (complete) return "complete";
  std::string out = StrCat("partial: ", StatusCodeName(tripped));
  if (!detail.empty()) out += " (" + detail + ")";
  out += StrCat("; ", ctuples_finished, "/", ctuples_total,
                " c-tuple(s) finished");
  if (!stopped_at.empty()) out += "; traversal stopped at " + stopped_at;
  return out;
}

// ---------------------------------------------------------------------------
// Breakpoint view V (Sec. 3.1, 2b)
// ---------------------------------------------------------------------------

Result<const OperatorNode*> DetermineBreakpoint(const QueryTree& tree) {
  const OperatorNode* aggregate = nullptr;
  for (const OperatorNode* node : tree.bottom_up()) {
    if (node->kind == OpKind::kAggregate) {
      if (aggregate != nullptr) {
        return Status::Unsupported(
            "queries with more than one aggregation are outside the supported "
            "class (unions of SPJA queries with one aggregate)");
      }
      aggregate = node;
    }
  }
  if (aggregate == nullptr) return static_cast<const OperatorNode*>(nullptr);

  // Needed attributes: G union aggregation arguments.
  Schema needed;
  for (const auto& g : aggregate->group_by) {
    if (!needed.Contains(g)) needed.Add(g);
  }
  for (const auto& call : aggregate->aggregates) {
    if (!needed.Contains(call.arg)) needed.Add(call.arg);
  }
  // bottom_up() is ordered by decreasing depth, so the first covering node in
  // the aggregate's subtree is the one closest to the leaves.
  for (const OperatorNode* node : tree.bottom_up()) {
    if (!OperatorNode::IsInSubtree(aggregate, node)) continue;
    if (node->output_schema.ContainsAll(needed)) return node;
  }
  return Status::Internal("no subquery covers the aggregation attributes");
}

namespace {

/// A picky recording: subquery, blocked compatibles, and whether the
/// aggregation condition flipped from satisfied (input) to violated (output).
struct PickyRecord {
  const OperatorNode* node;
  std::unordered_set<Rid> blocked;
  /// Dir tuples that still have a valid successor in the node's output.
  /// Def. 2.11 makes a subquery picky w.r.t. t_I only when *no* valid
  /// successor of t_I survives, so these are excluded from the detailed
  /// answer even when one of t_I's traces died here.
  std::unordered_set<TupleId> surviving_dirs;
  bool cond_alpha_flip = false;
};

/// Checks whether `tuples` (typed by `schema`) contain/aggregate-to a row
/// matching the c-tuple's group fields and satisfying cond-alpha.
/// `aggregate` supplies G and F when aggregation still needs to be applied.
Result<bool> SatisfiesCondAlpha(const CondAlpha& ca,
                                const std::vector<const TraceTuple*>& tuples,
                                const Schema& schema,
                                const OperatorNode* aggregate,
                                ExecContext* ctx) {
  if (ca.empty()) return false;

  // Does `schema` already expose the aggregate outputs (we are above alpha)?
  bool has_agg_outputs = true;
  for (const auto& [attr, _] : ca.agg_fields) {
    if (!schema.Contains(attr)) {
      has_agg_outputs = false;
      break;
    }
  }

  auto row_matches = [&](const Tuple& row, const Schema& row_schema) -> bool {
    std::map<std::string, Value> bindings;
    auto check_field = [&](const Attribute& attr, const CValue& cval) -> bool {
      std::optional<size_t> idx = row_schema.IndexOf(attr);
      if (!idx.has_value()) return true;  // attribute projected away: skip
      const Value& v = row.at(*idx);
      if (!cval.is_var) {
        return Value::Satisfies(v, CompareOp::kEq, cval.constant);
      }
      auto it = bindings.find(cval.var);
      if (it != bindings.end()) {
        return Value::Satisfies(it->second, CompareOp::kEq, v);
      }
      bindings.emplace(cval.var, v);
      return true;
    };
    for (const auto& [attr, cval] : ca.group_fields) {
      if (!check_field(attr, cval)) return false;
    }
    for (const auto& [attr, cval] : ca.agg_fields) {
      if (!check_field(attr, cval)) return false;
    }
    return SatisfiableWith(ca.cond, bindings);
  };

  if (has_agg_outputs) {
    for (const TraceTuple* t : tuples) {
      NED_EXEC_TICK(ctx);
      if (row_matches(t->values, schema)) return true;
    }
    return false;
  }

  // Below (or at the input of) the aggregate: apply alpha_{G,F} first. The
  // schema must cover G and the aggregation arguments; otherwise cond-alpha
  // cannot be verified here.
  NED_CHECK(aggregate != nullptr);
  Schema needed;
  for (const auto& g : aggregate->group_by) {
    if (!needed.Contains(g)) needed.Add(g);
  }
  for (const auto& call : aggregate->aggregates) {
    if (!needed.Contains(call.arg)) needed.Add(call.arg);
  }
  if (!schema.ContainsAll(needed)) return false;

  Schema row_schema;
  for (const auto& g : aggregate->group_by) row_schema.Add(g);
  for (const auto& call : aggregate->aggregates) {
    row_schema.Add(Attribute::Unqualified(call.out_name));
  }
  NED_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      ComputeAggregateTuples(aggregate->group_by, aggregate->aggregates,
                             tuples, schema, row_schema, ctx));
  for (const Tuple& row : rows) {
    if (row_matches(row, row_schema)) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Result<NedExplainEngine> NedExplainEngine::Create(const QueryTree* tree,
                                                  const Database* db,
                                                  NedExplainOptions options) {
  if (tree == nullptr || tree->root() == nullptr) {
    return Status::InvalidArgument("NedExplainEngine requires a query tree");
  }
  NedExplainEngine engine;
  engine.tree_ = tree;
  engine.db_ = db;
  engine.options_ = options;
#ifdef NED_FORCE_SUBTREE_CACHE
  // The CI cache-enabled configuration: every engine that would run
  // cache-free shares one process-global cache instead, so the entire test
  // suite exercises hit replay. Bit-identity of hits (docs/CACHING.md) is
  // what makes this transparent.
  if (engine.options_.subtree_cache == nullptr) {
    static SubtreeCache* forced = new SubtreeCache(256u << 20);
    engine.options_.subtree_cache = forced;
  }
#endif
  NED_ASSIGN_OR_RETURN(engine.breakpoint_, DetermineBreakpoint(*tree));
  for (const OperatorNode* node : tree->bottom_up()) {
    if (node->kind == OpKind::kAggregate) {
      engine.aggregate_node_ = node;
      for (const auto& call : node->aggregates) {
        engine.agg_output_names_.push_back(call.out_name);
      }
    }
  }
  return engine;
}

Result<NedExplainResult> NedExplainEngine::Explain(
    const WhyNotQuestion& question, ExecContext* ctx) {
#ifdef NED_FORCE_PARALLEL
  // The CI forced-parallel configuration: every evaluation that would run
  // serial draws threads from one process-global pool instead, so the whole
  // suite exercises the parallel paths. Bit-identity with serial evaluation
  // (docs/PARALLELISM.md) is what makes this transparent.
  static TaskPool* forced_pool = new TaskPool(3);
  ExecContext forced_ctx;
  if (ctx == nullptr) ctx = &forced_ctx;
  if (ctx->task_pool() == nullptr) {
    ctx->set_parallelism(forced_pool, 4);
    ctx->set_parallel_min_rows(4);
  }
#endif
  NedExplainResult result;

  // Per-request span sink (null = two-branch fast path everywhere). Spans
  // are emitted only on this coordinator thread; worker shards never see
  // the trace, so the span tree is identical at any thread count.
  obs::Trace* trace = ctx != nullptr ? ctx->trace() : nullptr;

  // Marks the run partial because `limit` tripped. Used wherever a governed
  // limit surfaces so the caller still receives the answers computed so far.
  auto mark_partial = [&result](const Status& limit) {
    result.completeness.complete = false;
    result.completeness.tripped = limit.code();
    result.completeness.detail = limit.message();
  };

  // -- Initialization: materialise I_Q and unrename the predicate (step 1).
  std::shared_ptr<QueryInput> input;
  std::unique_ptr<Evaluator> evaluator;
  {
    obs::PhasedSpanScope scope(&result.phases, phase::kInitialization, trace);
    auto built = QueryInput::Build(*tree_, *db_, ctx);
    if (!built.ok()) {
      if (!IsResourceLimit(built.status())) return built.status();
      // The budget tripped while materialising the input instance: nothing
      // was computed, but the degradation is reported, not thrown.
      result.completeness.ctuples_total = question.ctuples().size();
      mark_partial(built.status());
      return result;
    }
    input = std::make_shared<QueryInput>(std::move(built).value());
    evaluator = std::make_unique<Evaluator>(tree_, input.get(), ctx,
                                            options_.subtree_cache);
    NED_ASSIGN_OR_RETURN(result.unrenamed, UnrenameQuestion(*tree_, question));
  }
  last_input_ = input;
  result.completeness.ctuples_total = result.unrenamed.ctuples().size();

  // -- One Alg. 1 run per unrenamed c-tuple; the final answer is the union.
  size_t ctuple_idx = 0;
  for (const CTuple& tc : result.unrenamed.ctuples()) {
    obs::SpanScope ctuple_span(trace, StrCat("ctuple_", ctuple_idx++));
    auto part_result =
        ExplainCTuple(tc, input.get(), evaluator.get(), &result.phases, ctx);
    if (!part_result.ok()) {
      // A limit that escaped mid-phase: keep the finished c-tuples' answers.
      if (!IsResourceLimit(part_result.status())) return part_result.status();
      mark_partial(part_result.status());
      break;
    }
    CTupleExplainResult part = std::move(part_result).value();
    result.dir_total += part.compat.dir.size();
    result.indir_total += part.compat.indir.size();
    result.answer.MergeFrom(part.answer);
    if (!part.complete) {
      mark_partial(part.limit_status);
      if (part.stopped_at != nullptr) {
        result.completeness.stopped_at = part.stopped_at->name;
      }
      result.per_ctuple.push_back(std::move(part));
      break;
    }
    ++result.completeness.ctuples_finished;
    result.per_ctuple.push_back(std::move(part));
  }
  result.subtree_cache_hits = evaluator->cache_hits();
  result.subtree_cache_misses = evaluator->cache_misses();
  return result;
}

Result<CTupleExplainResult> NedExplainEngine::ExplainCTuple(
    const CTuple& tc, QueryInput* input, Evaluator* evaluator,
    PhaseTimer* phases, ExecContext* ctx) {
  CTupleExplainResult result;
  result.ctuple = tc;
  obs::Trace* trace = ctx != nullptr ? ctx->trace() : nullptr;

  // Marks this c-tuple's run partial: the traversal stopped at `node` (may
  // be null) because `limit` tripped. The answer derivation below still runs
  // on the picky records established so far.
  auto mark_partial = [&result](const Status& limit, const OperatorNode* node) {
    result.complete = false;
    result.limit_status = limit;
    result.stopped_at = node;
  };

  // -- CompatibleFinder (step 2a): Dir_tc and InDir_tc.
  {
    obs::PhasedSpanScope scope(phases, phase::kCompatibleFinder, trace);
    auto compat_result = FindCompatibles(tc, *input, agg_output_names_, ctx);
    if (!compat_result.ok()) {
      if (!IsResourceLimit(compat_result.status())) {
        return compat_result.status();
      }
      mark_partial(compat_result.status(), nullptr);
      return result;  // nothing established yet: empty partial answer
    }
    result.compat = std::move(compat_result).value();
  }
  const CompatibleSets& compat = result.compat;

  // -- Initialization (step 2c/2d): TabQ and the secondary structures.
  TabQ tabq(tree_);
  std::unordered_set<const OperatorNode*> non_picky;
  std::vector<const OperatorNode*> empty_output;
  std::vector<PickyRecord> picky;
  std::unordered_map<Rid, const TraceTuple*> rid_index;
  {
    obs::PhasedSpanScope scope(phases, phase::kInitialization, trace);
    for (const OperatorNode* scan : tree_->scans()) {
      TabQEntry& entry = tabq.entry_for(scan);
      NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                           input->AliasTuples(scan->alias));
      entry.input.reserve(tuples->size());
      for (const TraceTuple& t : *tuples) {
        entry.input.push_back(&t);
        rid_index[t.rid] = &t;
      }
      auto it = compat.dir_by_alias.find(scan->alias);
      if (it != compat.dir_by_alias.end()) {
        entry.compatibles.insert(it->second.begin(), it->second.end());
      }
    }
  }

  auto record_picky = [&](const OperatorNode* node,
                          std::unordered_set<Rid> blocked,
                          std::unordered_set<TupleId> surviving_dirs,
                          bool flip) {
    for (PickyRecord& rec : picky) {
      if (rec.node == node) {
        rec.blocked.insert(blocked.begin(), blocked.end());
        rec.surviving_dirs.insert(surviving_dirs.begin(), surviving_dirs.end());
        rec.cond_alpha_flip |= flip;
        return;
      }
    }
    picky.push_back({node, std::move(blocked), std::move(surviving_dirs), flip});
  };

  // ---- Alg. 1 main loop ----------------------------------------------------
  bool terminated = false;
  // One structural span per TabQ level, opened at the level's first entry
  // and closed when the walk leaves it (or at any exit from the loop). The
  // open/close points depend only on the TabQ ordering, never on thread
  // count, so the level spans are part of the deterministic structure.
  int32_t level_span = -1;
  auto open_level_span = [&](int level) {
    if (trace == nullptr) return;
    if (level_span >= 0) trace->CloseSpan(level_span);
    level_span = trace->OpenSpan(StrCat("tabq_level_", level));
  };
  // A limit that tripped during a level pre-warm (parallel sibling fan-out).
  // It surfaces when the walk reaches the first node left unevaluated, which
  // is exactly where the serial walk would have stopped.
  Status prewarm_limit = Status::OK();
  for (size_t i = 0; i < tabq.size(); ++i) {
    TabQEntry& entry = tabq.at(i);
    const OperatorNode* m = entry.node;

    // Subquery boundary: honour deadline/budget/cancellation between
    // subqueries; on a trip, degrade to the answer established so far.
    if (Status limit = CheckExec(ctx); !limit.ok()) {
      if (!IsResourceLimit(limit)) return limit;
      mark_partial(limit, m);
      break;
    }

    // -- Alg. 2: checkEarlyTermination(m).
    if (options_.enable_early_termination && i != 0 &&
        entry.level() != tabq.at(i - 1).level()) {
      obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
      bool stop = true;
      int prev_level = tabq.at(i - 1).level();
      for (size_t j = i; j-- > 0 && tabq.at(j).level() == prev_level;) {
        if (non_picky.count(tabq.at(j).node) > 0) {
          stop = false;
          break;
        }
      }
      if (stop) {
        for (size_t k = i; k < tabq.size(); ++k) {
          if (tabq.at(k).node->is_leaf()) {
            stop = false;
            break;
          }
        }
      }
      if (stop) {
        terminated = true;
        result.early_terminated = true;
        result.terminated_at = m;
        break;
      }
    }

    if (i == 0 || entry.level() != tabq.at(i - 1).level()) {
      open_level_span(entry.level());
    }

    // -- Level pre-warm: when parallelism is active, evaluate this level's
    //    sibling subtrees concurrently before the per-node walk consumes
    //    them. Runs after the early-termination check, so it computes
    //    exactly the node set the serial walk evaluates; without a task
    //    pool (or with everything memoized) EvalNodes is a no-op.
    if (prewarm_limit.ok() &&
        (i == 0 || entry.level() != tabq.at(i - 1).level())) {
      std::vector<const OperatorNode*> level_nodes;
      for (size_t j = i;
           j < tabq.size() && tabq.at(j).level() == entry.level(); ++j) {
        level_nodes.push_back(tabq.at(j).node);
      }
      if (level_nodes.size() > 1) {
        obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
        Status warm = evaluator->EvalNodes(level_nodes);
        if (!warm.ok()) {
          if (!IsResourceLimit(warm)) return warm;
          prewarm_limit = warm;
        }
      }
    }

    // -- Evaluate m on its input (Alg. 1 line 8) and maintain the parent's
    //    entries and the EmptyOutput/Picky managers (lines 9-14).
    {
      obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
      if (!prewarm_limit.ok() && evaluator->TryGetOutput(m) == nullptr) {
        // The pre-warm tripped before (or while) computing m: stop here,
        // keeping the maintenance state of everything evaluated below.
        // Re-running m could consume a deterministic fault injection twice,
        // so the walk must not retry.
        mark_partial(prewarm_limit, m);
        break;
      }
      auto output_result = evaluator->EvalNode(m);
      if (!output_result.ok()) {
        // A limit tripping inside the operator leaves no output for m; the
        // traversal cannot continue, but everything recorded below m stands.
        if (!IsResourceLimit(output_result.status())) {
          return output_result.status();
        }
        mark_partial(output_result.status(), m);
        break;
      }
      entry.output = std::move(output_result).value();
      if (m->parent != nullptr) {
        TabQEntry& parent = tabq.entry_for(m->parent);
        for (const TraceTuple& t : *entry.output) {
          parent.input.push_back(&t);
          rid_index[t.rid] = &t;
        }
      }
      if (entry.output->empty()) {
        empty_output.push_back(m);
        if (!entry.compatibles.empty()) {
          record_picky(m, entry.compatibles, {}, false);
        }
      }
    }

    if (m->is_leaf()) {
      // Alg. 1 lines 17-20: a base relation passes its compatibles through.
      obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
      if (!entry.compatibles.empty()) {
        TabQEntry& parent = tabq.entry_for(m->parent);
        parent.compatibles.insert(entry.compatibles.begin(),
                                  entry.compatibles.end());
        non_picky.insert(m);
      }
      continue;
    }

    // -- Alg. 3: FindSuccessors(m).
    {
      obs::PhasedSpanScope scope(phases, phase::kSuccessorsFinder, trace);
      std::unordered_set<Rid> successors;  // valid successors in m.Output
      std::unordered_set<Rid> covered;     // compatibles with a successor
      std::unordered_set<TupleId> surviving_dirs;
      for (const TraceTuple& o : *entry.output) {
        NED_EXEC_TICK(ctx);
        // Valid successor of a compatible tuple (Notation 2.1): lineage
        // within D, touching Dir, derived from a compatible input tuple.
        if (!BaseSetSubsetOf(o.lineage, compat.all)) continue;
        if (!BaseSetIntersects(o.lineage, compat.dir)) continue;
        bool from_compatible = false;
        for (Rid pred : o.preds) {
          if (entry.compatibles.count(pred) > 0) {
            from_compatible = true;
            covered.insert(pred);
          }
        }
        if (from_compatible) {
          successors.insert(o.rid);
          for (TupleId dir_id : BaseSetIntersection(o.lineage, compat.dir)) {
            surviving_dirs.insert(dir_id);
          }
        }
      }

      std::unordered_set<Rid> blocked;
      for (Rid c : entry.compatibles) {
        if (covered.count(c) == 0) blocked.insert(c);
      }
      entry.blocked = blocked;

      if (!successors.empty()) {
        non_picky.insert(m);
        if (m->parent != nullptr) {
          TabQEntry& parent = tabq.entry_for(m->parent);
          parent.compatibles.insert(successors.begin(), successors.end());
        } else {
          result.survivors_at_root = successors.size();
        }
      }

      // Alg. 3 lines 9-12. Above the breakpoint view V the aggregation
      // condition governs; we additionally keep blocked recordings above V
      // (Def. 2.12's first set has no V restriction), which is a documented
      // strengthening of the pseudocode's literal condition.
      bool above_v = breakpoint_ != nullptr && m != breakpoint_ &&
                     OperatorNode::IsInSubtree(m, breakpoint_);
      if (!above_v) {
        if (!blocked.empty()) record_picky(m, blocked, surviving_dirs, false);
      } else {
        NED_ASSIGN_OR_RETURN(
            bool in_ok, [&]() -> Result<bool> {
              // m.Input: union of children outputs; a side satisfies
              // cond-alpha if its typed tuple set does.
              for (const auto& child : m->children) {
                std::vector<const TraceTuple*> side;
                const std::vector<TraceTuple>* child_out =
                    tabq.entry_for(child.get()).output;
                if (child_out == nullptr) continue;
                for (const TraceTuple& t : *child_out) side.push_back(&t);
                NED_ASSIGN_OR_RETURN(
                    bool ok,
                    SatisfiesCondAlpha(compat.cond_alpha, side,
                                       child->output_schema, aggregate_node_,
                                       ctx));
                if (ok) return true;
              }
              return false;
            }());
        std::vector<const TraceTuple*> out_tuples;
        for (const TraceTuple& t : *entry.output) out_tuples.push_back(&t);
        NED_ASSIGN_OR_RETURN(
            bool out_ok,
            SatisfiesCondAlpha(compat.cond_alpha, out_tuples, m->output_schema,
                               aggregate_node_, ctx));
        if (in_ok && !out_ok) record_picky(m, blocked, surviving_dirs, true);
        else if (!blocked.empty()) record_picky(m, blocked, surviving_dirs, false);
      }
    }
  }
  (void)terminated;
  if (trace != nullptr && level_span >= 0) trace->CloseSpan(level_span);

  // ---- Derive the detailed answer from PickyMan ----------------------------
  {
    obs::SpanScope answer_span(trace, "answer_construction");
    obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
    for (const PickyRecord& rec : picky) {
      bool emitted_pair = false;
      for (Rid b : rec.blocked) {
        auto it = rid_index.find(b);
        if (it == rid_index.end()) continue;
        BaseSet dirs = BaseSetIntersection(it->second->lineage, compat.dir);
        for (TupleId dir_id : dirs) {
          // Def. 2.11: the subquery is picky w.r.t. a Dir tuple only when no
          // valid successor of it survives the subquery.
          if (rec.surviving_dirs.count(dir_id) > 0) continue;
          DetailedEntry entry;
          entry.dir_tuple = dir_id;
          entry.subquery = rec.node;
          emitted_pair = true;
          if (std::find(result.answer.detailed.begin(),
                        result.answer.detailed.end(),
                        entry) == result.answer.detailed.end()) {
            result.answer.detailed.push_back(entry);
          }
        }
      }
      // A cond-alpha flip without blocked tuples yields the paper's (⊥, Q')
      // entry (Crime9's (null, m3)); with blocked tuples the concrete pairs
      // subsume it (Ex. 2.6 reports only (t4, Q3)).
      if (rec.cond_alpha_flip && !emitted_pair) {
        DetailedEntry entry;
        entry.dir_tuple = kInvalidTupleId;
        entry.subquery = rec.node;
        if (std::find(result.answer.detailed.begin(),
                      result.answer.detailed.end(),
                      entry) == result.answer.detailed.end()) {
          result.answer.detailed.push_back(entry);
        }
      }
    }
    result.answer.DeriveCondensed();
  }

  // ---- Secondary answer (Def. 2.14) ----------------------------------------
  // Skipped on a partial run: it walks outputs the stopped traversal never
  // produced, and the tripped budget means no more work should be done.
  if (options_.compute_secondary && result.complete) {
    obs::SpanScope secondary_span(trace, "secondary_answer");
    obs::PhasedSpanScope scope(phases, phase::kBottomUp, trace);
    // Alias name -> ordinal for lineage-membership tests.
    std::unordered_map<std::string, uint32_t> ordinal_of;
    for (uint32_t i = 0; i < input->aliases().size(); ++i) {
      ordinal_of[input->aliases()[i]] = i;
    }
    for (const std::string& alias : compat.indir_aliases) {
      NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                           input->AliasTuples(alias));
      if (tuples->empty()) continue;  // no d in I|S to be picky about
      uint32_t ordinal = ordinal_of.at(alias);
      const OperatorNode* scan = nullptr;
      for (const OperatorNode* s : tree_->scans()) {
        if (s->alias == alias) scan = s;
      }
      NED_CHECK(scan != nullptr);
      const OperatorNode* prev = scan;
      for (const OperatorNode* m = scan->parent; m != nullptr;
           prev = m, m = m->parent) {
        // Data of a difference's right operand is *meant* to vanish there;
        // the node is not a Def. 2.14 terminator for it.
        if (m->kind == OpKind::kDifference && m->children[1].get() == prev) {
          break;
        }
        const TabQEntry& entry = tabq.entry_for(m);
        const std::vector<TraceTuple>* output = entry.output;
        if (output == nullptr) {
          // Early termination stopped the traversal below m, but Def. 2.14
          // ranges over the *whole* tree: evaluate m on demand (memoized in
          // the evaluator). A tripped resource limit degrades to a partial
          // secondary answer instead of an error.
          auto evaluated = evaluator->EvalNode(m);
          if (!evaluated.ok()) {
            if (IsResourceLimit(evaluated.status())) {
              result.complete = false;
              result.limit_status = evaluated.status();
              break;
            }
            return evaluated.status();
          }
          output = *evaluated;
        }
        bool has_successor = false;
        for (const TraceTuple& o : *output) {
          NED_EXEC_TICK(ctx);
          for (TupleId id : o.lineage) {
            if (TupleIdAlias(id) == ordinal) {
              has_successor = true;
              break;
            }
          }
          if (has_successor) break;
        }
        if (!has_successor) {
          if (std::find(result.answer.secondary.begin(),
                        result.answer.secondary.end(),
                        m) == result.answer.secondary.end()) {
            result.answer.secondary.push_back(m);
          }
          break;
        }
      }
    }
  }

  if (options_.keep_tabq_dump) result.tabq_dump = tabq.ToString(*input);
  return result;
}

}  // namespace ned
