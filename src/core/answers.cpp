#include "core/answers.h"

#include <algorithm>

#include "common/strings.h"

namespace ned {

void WhyNotAnswer::MergeFrom(const WhyNotAnswer& other) {
  for (const auto& entry : other.detailed) {
    if (std::find(detailed.begin(), detailed.end(), entry) == detailed.end()) {
      detailed.push_back(entry);
    }
  }
  for (const OperatorNode* node : other.condensed) {
    if (std::find(condensed.begin(), condensed.end(), node) == condensed.end()) {
      condensed.push_back(node);
    }
  }
  for (const OperatorNode* node : other.secondary) {
    if (std::find(secondary.begin(), secondary.end(), node) == secondary.end()) {
      secondary.push_back(node);
    }
  }
}

void WhyNotAnswer::DeriveCondensed() {
  condensed.clear();
  for (const auto& entry : detailed) {
    if (std::find(condensed.begin(), condensed.end(), entry.subquery) ==
        condensed.end()) {
      condensed.push_back(entry.subquery);
    }
  }
}

std::string WhyNotAnswer::EntryToString(const DetailedEntry& entry,
                                        const QueryInput& input) {
  std::string tuple = entry.is_bottom() ? "null" : input.DisplayTuple(entry.dir_tuple);
  return "(" + tuple + ", " + entry.subquery->name + ")";
}

std::string WhyNotAnswer::DetailedToString(const QueryInput& input) const {
  if (detailed.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(detailed.size());
  for (const auto& e : detailed) parts.push_back(EntryToString(e, input));
  return Join(parts, ", ");
}

namespace {
std::string NodeListToString(const std::vector<const OperatorNode*>& nodes) {
  if (nodes.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(nodes.size());
  for (const OperatorNode* n : nodes) parts.push_back(n->name);
  return Join(parts, ", ");
}
}  // namespace

std::string WhyNotAnswer::CondensedToString() const {
  return NodeListToString(condensed);
}

std::string WhyNotAnswer::SecondaryToString() const {
  return NodeListToString(secondary);
}

std::string WhyNotAnswer::ToString(const QueryInput& input) const {
  return "detailed : " + DetailedToString(input) +
         "\ncondensed: " + CondensedToString() +
         "\nsecondary: " + SecondaryToString() + "\n";
}

}  // namespace ned
