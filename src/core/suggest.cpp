#include "core/suggest.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace ned {
namespace {

/// Decomposes a predicate of the shape `ColumnRef cop Literal` (either
/// operand order); returns false otherwise.
bool SimpleComparison(const ExprPtr& predicate, Attribute* attr, CompareOp* op,
                      Value* bound) {
  auto cmp = std::dynamic_pointer_cast<const Comparison>(predicate);
  if (cmp == nullptr) return false;
  auto lcol = std::dynamic_pointer_cast<const ColumnRef>(cmp->left());
  auto rlit = std::dynamic_pointer_cast<const Literal>(cmp->right());
  if (lcol != nullptr && rlit != nullptr) {
    *attr = lcol->attribute();
    *op = cmp->op();
    *bound = rlit->value();
    return true;
  }
  auto llit = std::dynamic_pointer_cast<const Literal>(cmp->left());
  auto rcol = std::dynamic_pointer_cast<const ColumnRef>(cmp->right());
  if (llit != nullptr && rcol != nullptr) {
    *attr = rcol->attribute();
    *op = MirrorOp(cmp->op());
    *bound = llit->value();
    return true;
  }
  return false;
}

/// The blocked tuple's value for `attr`, when the attribute belongs to the
/// tuple's own relation (the common case for blamed selections: the
/// selection filters the relation the compatible tuple comes from).
std::optional<Value> ValueOfBlockedTuple(const QueryInput& input, TupleId id,
                                         const Attribute& attr) {
  std::string alias = input.AliasOfId(id);
  if (alias.empty() || attr.qualifier != alias) return std::nullopt;
  auto schema = input.AliasSchema(alias);
  if (!schema.ok()) return std::nullopt;
  std::optional<size_t> idx = (*schema)->IndexOf(attr);
  if (!idx.has_value()) return std::nullopt;
  const TraceTuple* tuple = input.FindById(id);
  if (tuple == nullptr) return std::nullopt;
  return tuple->values.at(*idx);
}

/// Builds the minimal relaxation of `attr cop bound` that also admits every
/// value in `values` (all of which currently fail the comparison).
/// Returns nullptr when no simple relaxation exists (e.g. strings under =).
ExprPtr RelaxComparison(const Attribute& attr, CompareOp op, const Value& bound,
                        const std::vector<Value>& values, std::string* text) {
  auto col = std::make_shared<ColumnRef>(attr);
  switch (op) {
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Lower the bound to the smallest blocked value (inclusive).
      Value lo = bound;
      for (const Value& v : values) {
        if (Value::Satisfies(v, CompareOp::kLt, lo)) lo = v;
      }
      *text = attr.FullName() + " >= " + lo.ToString();
      return Ge(col, Lit(lo));
    }
    case CompareOp::kLt:
    case CompareOp::kLe: {
      Value hi = bound;
      for (const Value& v : values) {
        if (Value::Satisfies(v, CompareOp::kGt, hi)) hi = v;
      }
      *text = attr.FullName() + " <= " + hi.ToString();
      return Le(col, Lit(hi));
    }
    case CompareOp::kEq: {
      // Widen the equality into a disjunction over the blocked values.
      std::vector<ExprPtr> terms = {Eq(col, Lit(bound))};
      std::vector<std::string> names = {bound.ToString()};
      for (const Value& v : values) {
        terms.push_back(Eq(std::make_shared<ColumnRef>(attr), Lit(v)));
        names.push_back(v.ToString());
      }
      *text = attr.FullName() + " IN {" + Join(names, ", ") + "}";
      return Or(std::move(terms));
    }
    case CompareOp::kNe:
      // attr != c blocked a tuple means its value *is* c; the only
      // "relaxation" is dropping the condition.
      *text = "drop the condition " + attr.FullName() + " != " +
              bound.ToString();
      return And(std::vector<ExprPtr>{});  // TRUE
  }
  return nullptr;
}

}  // namespace

Result<std::vector<ModificationHint>> SuggestModifications(
    const NedExplainEngine& engine, const NedExplainResult& result) {
  const QueryInput& input = engine.last_input();

  // Group blamed Dir tuples per subquery.
  std::map<const OperatorNode*, std::vector<TupleId>> blamed;
  for (const auto& entry : result.answer.detailed) {
    if (!entry.is_bottom()) {
      blamed[entry.subquery].push_back(entry.dir_tuple);
    } else {
      blamed[entry.subquery];  // cond-alpha flip: hint without tuples
    }
  }

  std::vector<ModificationHint> hints;
  for (const auto& [node, tuples] : blamed) {
    ModificationHint hint;
    hint.node = node;
    for (TupleId id : tuples) hint.admits.push_back(input.DisplayTuple(id));
    std::sort(hint.admits.begin(), hint.admits.end());

    if (node->kind == OpKind::kSelect) {
      Attribute attr;
      CompareOp op;
      Value bound;
      if (SimpleComparison(node->predicate, &attr, &op, &bound)) {
        // Collect the blocked tuples' values for the filtered attribute.
        std::vector<Value> values;
        for (TupleId id : tuples) {
          std::optional<Value> v = ValueOfBlockedTuple(input, id, attr);
          if (v.has_value() && !v->is_null()) values.push_back(*v);
        }
        if (!values.empty() || tuples.empty()) {
          std::string relaxed_text;
          hint.relaxed_predicate =
              RelaxComparison(attr, op, bound, values, &relaxed_text);
          if (hint.relaxed_predicate != nullptr) {
            hint.description =
                StrCat("relax ", node->name, " [sigma ",
                       node->predicate->ToString(), "] to ", relaxed_text,
                       hint.admits.empty()
                           ? std::string()
                           : " (admits " + Join(hint.admits, ", ") + ")");
          }
        }
      }
      if (hint.description.empty()) {
        hint.description =
            StrCat("selection ", node->name, " [",
                   node->predicate->ToString(),
                   "] prunes the compatible data; consider weakening it");
      }
    } else if (node->kind == OpKind::kJoin) {
      // Join partners are missing: report the blocked tuples' key values so
      // the developer can check the other side's data.
      std::vector<std::string> keys;
      for (const auto& triple : node->renaming.triples()) {
        for (TupleId id : tuples) {
          for (const Attribute& side : {triple.a1, triple.a2}) {
            std::optional<Value> v = ValueOfBlockedTuple(input, id, side);
            if (v.has_value()) {
              keys.push_back(side.FullName() + "=" + v->ToString());
            }
          }
        }
      }
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      hint.description = StrCat(
          "join ", node->name, " finds no valid partner",
          keys.empty() ? std::string()
                       : " for " + Join(keys, ", "),
          "; the missing side needs matching (compatible) data");
    } else if (node->kind == OpKind::kDifference) {
      hint.description = StrCat(
          "difference ", node->name,
          " eliminates the compatible data: a right-operand counterpart "
          "exists; remove it or restrict the subtracted side");
    } else if (node->kind == OpKind::kAggregate) {
      hint.description = StrCat("aggregation ", node->name,
                                " groups the compatible data away");
    } else {
      hint.description = StrCat(OpKindName(node->kind), " ", node->name,
                                " prunes the compatible data");
    }
    hints.push_back(std::move(hint));
  }

  // Secondary answers: emptied side branches are root causes worth fixing.
  for (const OperatorNode* node : result.answer.secondary) {
    ModificationHint hint;
    hint.node = node;
    hint.description =
        StrCat(node->name, " [", node->Describe(),
               "] starves an entire relation the query depends on; no tuple "
               "of that relation survives past it");
    hints.push_back(std::move(hint));
  }
  return hints;
}

}  // namespace ned
