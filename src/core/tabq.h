/// \file tabq.h
/// \brief The primary global structure TabQ (paper Sec. 3.1, 2c).
///
/// TabQ keeps, for every subquery m of Q (in decreasing-depth order): its
/// input and output tuple sets, the compatible tuples present in its input,
/// its level/parent/operator, and -- added by FindSuccessors -- the blocked
/// compatibles. It also backs the Table 1 / Table 2 renderings of the paper.

#ifndef NED_CORE_TABQ_H_
#define NED_CORE_TABQ_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/query_tree.h"
#include "exec/evaluator.h"

namespace ned {

/// Per-subquery entry of TabQ.
struct TabQEntry {
  const OperatorNode* node = nullptr;

  /// m.Input: the tuples of the children's outputs (or the base instance for
  /// a scan). Stored as pointers into the evaluator/input materialisations.
  std::vector<const TraceTuple*> input;

  /// m.Output: set after the node is evaluated; nullptr before.
  const std::vector<TraceTuple>* output = nullptr;

  /// m.Compatibles: rids of input tuples that are compatible tuples or valid
  /// successors thereof.
  std::unordered_set<Rid> compatibles;

  /// Compatibles without a valid successor in m.Output (set by
  /// FindSuccessors when the entry lands in PickyMan).
  std::unordered_set<Rid> blocked;

  int level() const { return node->level; }
  const OperatorNode* parent() const { return node->parent; }
};

/// TabQ: entries in decreasing-depth (bottom-up) order, indexable by
/// position and by node.
class TabQ {
 public:
  explicit TabQ(const QueryTree* tree);

  size_t size() const { return entries_.size(); }
  TabQEntry& at(size_t i) { return entries_[i]; }
  const TabQEntry& at(size_t i) const { return entries_[i]; }

  TabQEntry& entry_for(const OperatorNode* node) {
    return entries_[index_of_.at(node)];
  }
  const TabQEntry& entry_for(const OperatorNode* node) const {
    return entries_[index_of_.at(node)];
  }
  size_t index_of(const OperatorNode* node) const { return index_of_.at(node); }

  /// Renders the Table 1 / Table 2 style dump: one column per subquery with
  /// Input/Output/Compatibles/Blocked/Level/Parent/Op rows summarised.
  std::string ToString(const QueryInput& input) const;

 private:
  std::vector<TabQEntry> entries_;
  std::unordered_map<const OperatorNode*, size_t> index_of_;
};

}  // namespace ned

#endif  // NED_CORE_TABQ_H_
