/// \file nedexplain.h
/// \brief The NedExplain algorithm (paper Sec. 3, Algorithms 1-3).
///
/// Given a query tree, a database instance, and a Why-Not question, the
/// engine computes detailed, condensed and secondary Why-Not answers
/// (Defs. 2.12-2.14) by tracing *valid successors* of compatible tuples
/// bottom-up through the tree, stopping early when no compatible data can
/// reach the remaining subqueries (Alg. 2).
///
/// Phase accounting matches the paper's Fig. 5 split: Initialization
/// (structures + input materialisation), CompatibleFinder, SuccessorsFinder
/// (Alg. 3) and Bottom-Up traversal (Alg. 1's loop including operator
/// evaluation).

#ifndef NED_CORE_NEDEXPLAIN_H_
#define NED_CORE_NEDEXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/answers.h"
#include "core/tabq.h"
#include "whynot/compatible_finder.h"
#include "whynot/ctuple.h"
#include "whynot/unrenaming.h"

namespace ned {

class SubtreeCache;

/// Tuning knobs, mostly for ablation benchmarks.
struct NedExplainOptions {
  /// Alg. 2: stop the traversal once no compatible tuple can be traced
  /// further. Disable to measure its benefit.
  bool enable_early_termination = true;
  /// Compute the secondary answer (Def. 2.14).
  bool compute_secondary = true;
  /// Record a Table-2 style TabQ dump per c-tuple (costs formatting time;
  /// keep off in benchmarks).
  bool keep_tabq_dump = false;
  /// Shared memo of materialized subtree outputs (cache/subtree_cache.h).
  /// nullptr = recompute everything, the pre-caching behaviour. The cache
  /// only ever returns bit-identical outputs (keys pin structure + data
  /// versions), so answers are unchanged -- the differential sweep proves it.
  SubtreeCache* subtree_cache = nullptr;
};

/// How much of an answer survived a resource-governed run (tentpole of the
/// graceful-degradation subsystem). A partial answer is still a *sound*
/// answer: every reported picky subquery was genuinely established before
/// the limit tripped; completeness is what was given up.
struct ResultCompleteness {
  bool complete = true;
  /// The limit that tripped: kDeadlineExceeded, kResourceExhausted or
  /// kCancelled (kOk when complete).
  StatusCode tripped = StatusCode::kOk;
  /// Human-readable description of the tripped budget.
  std::string detail;
  /// C-tuples whose traversal ran to the end vs. asked.
  size_t ctuples_finished = 0;
  size_t ctuples_total = 0;
  /// Name of the subquery the bottom-up traversal stopped at ("" when the
  /// limit hit outside the traversal, e.g. during input materialisation).
  std::string stopped_at;

  /// "complete" or "partial: <code> (<detail>); k/n c-tuples; stopped at m2".
  std::string ToString() const;
};

/// Outcome for a single (unrenamed) c-tuple.
struct CTupleExplainResult {
  CTuple ctuple;
  WhyNotAnswer answer;
  CompatibleSets compat;
  bool early_terminated = false;
  const OperatorNode* terminated_at = nullptr;
  /// False when a resource limit stopped this c-tuple's traversal; the
  /// answer then holds only what was established before the limit.
  bool complete = true;
  /// Subquery being processed when the limit tripped (nullptr otherwise).
  const OperatorNode* stopped_at = nullptr;
  /// The limit status that tripped (OK when complete).
  Status limit_status;
  /// Compatible successors present in the root output: when non-zero the
  /// asked-for data is arguably *not* missing (the question may be answered
  /// by an existing result tuple).
  size_t survivors_at_root = 0;
  std::string tabq_dump;
};

/// Outcome for a whole question (union over its c-tuples, per Sec. 2.5).
struct NedExplainResult {
  WhyNotAnswer answer;
  std::vector<CTupleExplainResult> per_ctuple;
  WhyNotQuestion unrenamed;
  PhaseTimer phases;
  size_t dir_total = 0;    ///< |Dir| summed over c-tuples
  size_t indir_total = 0;  ///< |InDir| summed over c-tuples
  /// Whether the run finished, or which budget stopped it where.
  ResultCompleteness completeness;
  /// Subtree-cache traffic of this run (both 0 when no cache is attached).
  /// A warm repeat of the same question on the same snapshot shows
  /// misses == 0 -- the counter the cache tests and bench_cache read.
  size_t subtree_cache_hits = 0;
  size_t subtree_cache_misses = 0;
};

/// The NedExplain engine, bound to one (query, database) pair.
class NedExplainEngine {
 public:
  /// Validates the query against the database. The tree must outlive the
  /// engine. If the query aggregates, the breakpoint view V is derived here
  /// (lowest subquery whose type covers G and the aggregation arguments)
  /// unless the canonicalizer already marked one.
  static Result<NedExplainEngine> Create(const QueryTree* tree,
                                         const Database* db,
                                         NedExplainOptions options = {});

  /// Runs NedExplain for `question` (Alg. 1 per unrenamed c-tuple; answers
  /// are unioned). Each call materialises a fresh input instance and
  /// evaluation, so timings are independent across calls.
  ///
  /// With an ExecContext, the run is governed: when a deadline, budget,
  /// cancellation or injected fault trips, the call still returns OK with a
  /// *partial* NedExplainResult -- `completeness` records which c-tuples
  /// finished, where the traversal stopped and what budget tripped, and the
  /// answer holds everything established up to that point. Only
  /// non-resource errors (type errors, internal faults) surface as statuses.
  Result<NedExplainResult> Explain(const WhyNotQuestion& question,
                                   ExecContext* ctx = nullptr);

  /// Convenience overload for single-c-tuple questions.
  Result<NedExplainResult> Explain(const CTuple& tc,
                                   ExecContext* ctx = nullptr) {
    return Explain(WhyNotQuestion(std::move(tc)), ctx);
  }

  const QueryTree& tree() const { return *tree_; }
  const Database& db() const { return *db_; }
  /// The breakpoint view V; nullptr for queries without aggregation.
  const OperatorNode* breakpoint() const { return breakpoint_; }
  /// Output names of the aggregation (empty without aggregation).
  const std::vector<std::string>& agg_output_names() const {
    return agg_output_names_;
  }

  /// The most recent Explain call's input instance (valid until the next
  /// Explain call); used to render answers.
  const QueryInput& last_input() const { return *last_input_; }

 private:
  NedExplainEngine() = default;

  Result<CTupleExplainResult> ExplainCTuple(const CTuple& tc,
                                            QueryInput* input,
                                            Evaluator* evaluator,
                                            PhaseTimer* phases,
                                            ExecContext* ctx);

  const QueryTree* tree_ = nullptr;
  const Database* db_ = nullptr;
  NedExplainOptions options_;
  const OperatorNode* breakpoint_ = nullptr;
  const OperatorNode* aggregate_node_ = nullptr;
  std::vector<std::string> agg_output_names_;
  std::shared_ptr<QueryInput> last_input_;
};

/// Derives the breakpoint view V for `tree`: the deepest subquery whose
/// output type contains every group-by attribute and aggregation argument.
/// Returns nullptr when the tree has no aggregation. Errors when the tree
/// has more than one aggregate node (outside the paper's query class).
Result<const OperatorNode*> DetermineBreakpoint(const QueryTree& tree);

}  // namespace ned

#endif  // NED_CORE_NEDEXPLAIN_H_
