#include "core/tabq.h"

#include "common/strings.h"

namespace ned {

TabQ::TabQ(const QueryTree* tree) {
  entries_.reserve(tree->bottom_up().size());
  for (const OperatorNode* node : tree->bottom_up()) {
    TabQEntry entry;
    entry.node = node;
    index_of_[node] = entries_.size();
    entries_.push_back(std::move(entry));
  }
}

std::string TabQ::ToString(const QueryInput& input) const {
  std::vector<std::string> header = {"entry"};
  for (const auto& e : entries_) header.push_back(e.node->name);

  auto row_of = [&](const std::string& label,
                    auto&& cell) -> std::vector<std::string> {
    std::vector<std::string> row = {label};
    for (const auto& e : entries_) row.push_back(cell(e));
    return row;
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back(row_of("Op", [](const TabQEntry& e) {
    return std::string(e.node->Describe());
  }));
  rows.push_back(row_of("Level", [](const TabQEntry& e) {
    return std::to_string(e.level());
  }));
  rows.push_back(row_of("Parent", [](const TabQEntry& e) {
    return e.parent() == nullptr ? std::string("-") : e.parent()->name;
  }));
  rows.push_back(row_of("|Input|", [](const TabQEntry& e) {
    return std::to_string(e.input.size());
  }));
  rows.push_back(row_of("|Output|", [](const TabQEntry& e) {
    return e.output == nullptr ? std::string("-")
                               : std::to_string(e.output->size());
  }));
  rows.push_back(row_of("|Compatibles|", [](const TabQEntry& e) {
    return std::to_string(e.compatibles.size());
  }));
  rows.push_back(row_of("|Blocked|", [](const TabQEntry& e) {
    return std::to_string(e.blocked.size());
  }));
  // Table 2-style how-provenance of the output tuples, for small outputs.
  constexpr size_t kMaxShown = 4;
  rows.push_back(row_of("Output (how)", [&](const TabQEntry& e) -> std::string {
    if (e.output == nullptr) return "-";
    if (e.output->size() > kMaxShown) return "...";
    std::vector<std::string> parts;
    for (const TraceTuple& t : *e.output) {
      parts.push_back(HowProvenance(t, input));
    }
    return Join(parts, " ; ");
  }));
  return RenderTable(header, rows);
}

}  // namespace ned
