#include "algebra/fingerprint.h"

#include <cstdio>

#include "common/status.h"
#include "common/strings.h"

namespace ned {

namespace {

std::string FingerprintAttribute(const Attribute& attr) {
  // FullName is "qualifier.name"; length-prefix so generated names cannot
  // collide with the surrounding separators.
  std::string full = attr.FullName();
  return StrCat(full.size(), ":", full);
}

std::string FingerprintSchema(const Schema& schema) {
  std::string out = "[";
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    if (i > 0) out += ",";
    out += FingerprintAttribute(schema.attributes()[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string FingerprintValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "n:";
    case ValueType::kInt:
      return StrCat("i:", value.as_int());
    case ValueType::kDouble: {
      // %.17g round-trips every double exactly.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d:%.17g", value.as_double());
      return buf;
    }
    case ValueType::kString:
      return StrCat("s:", value.as_string().size(), ":", value.as_string());
  }
  return "?";
}

std::string FingerprintExpression(const Expression* expr) {
  if (expr == nullptr) return "-";
  if (const auto* col = dynamic_cast<const ColumnRef*>(expr)) {
    return StrCat("col(", FingerprintAttribute(col->attribute()), ")");
  }
  if (const auto* lit = dynamic_cast<const Literal*>(expr)) {
    return StrCat("lit(", FingerprintValue(lit->value()), ")");
  }
  if (const auto* cmp = dynamic_cast<const Comparison*>(expr)) {
    return StrCat("cmp(", CompareOpSymbol(cmp->op()), ",",
                  FingerprintExpression(cmp->left().get()), ",",
                  FingerprintExpression(cmp->right().get()), ")");
  }
  if (const auto* conj = dynamic_cast<const Conjunction*>(expr)) {
    std::string out = "and(";
    for (const auto& t : conj->terms()) {
      out += FingerprintExpression(t.get());
      out += ";";
    }
    out += ")";
    return out;
  }
  if (const auto* disj = dynamic_cast<const Disjunction*>(expr)) {
    std::string out = "or(";
    for (const auto& t : disj->terms()) {
      out += FingerprintExpression(t.get());
      out += ";";
    }
    out += ")";
    return out;
  }
  if (const auto* neg = dynamic_cast<const Not*>(expr)) {
    return StrCat("not(", FingerprintExpression(neg->inner().get()), ")");
  }
  // Unknown subclass: fall back to ToString, still wrapped so it cannot be
  // confused with any tagged form above.
  return StrCat("other(", expr->ToString(), ")");
}

std::string NodeFingerprint(const OperatorNode& node) {
  std::string out = OpKindName(node.kind);
  out += "[";
  switch (node.kind) {
    case OpKind::kScan:
      // Alias + base table + resolved schema. Including the schema means two
      // scans of same-named (but structurally different) relations in
      // different databases cannot collide even when both relations carry
      // data-version 0 (e.g. empty relations never touched by AddRow).
      out += StrCat("a=", node.alias.size(), ":", node.alias, ";t=",
                    node.base_table.size(), ":", node.base_table,
                    ";s=", FingerprintSchema(node.output_schema));
      break;
    case OpKind::kSelect:
      out += StrCat("p=", FingerprintExpression(node.predicate.get()));
      break;
    case OpKind::kProject: {
      out += "a=";
      for (const Attribute& a : node.projection) {
        out += FingerprintAttribute(a);
        out += ",";
      }
      break;
    }
    case OpKind::kJoin:
    case OpKind::kUnion:
    case OpKind::kDifference: {
      out += "r=";
      for (const RenameTriple& t : node.renaming.triples()) {
        out += StrCat(FingerprintAttribute(t.a1), "|",
                      FingerprintAttribute(t.a2), "|", t.anew.size(), ":",
                      t.anew, ",");
      }
      out += StrCat(";x=", FingerprintExpression(node.extra_predicate.get()));
      break;
    }
    case OpKind::kAggregate: {
      out += "g=";
      for (const Attribute& a : node.group_by) {
        out += FingerprintAttribute(a);
        out += ",";
      }
      out += ";f=";
      for (const AggCall& c : node.aggregates) {
        out += StrCat(AggFnName(c.fn), "(", FingerprintAttribute(c.arg),
                      ")->", c.out_name.size(), ":", c.out_name, ",");
      }
      break;
    }
  }
  out += "]";
  return out;
}

std::string SubtreeFingerprint(const OperatorNode& node) {
  std::string out = "(";
  out += NodeFingerprint(node);
  for (const auto& child : node.children) {
    out += ";";
    out += SubtreeFingerprint(*child);
  }
  out += ")";
  return out;
}

}  // namespace ned
