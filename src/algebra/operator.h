/// \file operator.h
/// \brief Query-tree operator nodes (the paper's subqueries / manipulations).
///
/// One node of the standard tree representation corresponds to one subquery
/// Q_i with its manipulation m_{Q_i} (Sec. 2.4). Nodes own their children;
/// parent/level/name bookkeeping is filled in by QueryTree::Finalize.

#ifndef NED_ALGEBRA_OPERATOR_H_
#define NED_ALGEBRA_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/renaming.h"
#include "expr/expression.h"
#include "relational/schema.h"

namespace ned {

/// Operator kinds. kDifference extends the paper's query class (its Sec. 5
/// names set difference as future work); see DESIGN.md for the semantics.
enum class OpKind { kScan, kSelect, kProject, kJoin, kUnion, kAggregate, kDifference };

const char* OpKindName(OpKind kind);

/// Aggregation functions of Def. 2.2-3.
enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregation call `f(A) -> A'`.
struct AggCall {
  AggFn fn;
  Attribute arg;         ///< input attribute A
  std::string out_name;  ///< fresh unqualified output attribute A'

  std::string ToString() const {
    return std::string(AggFnName(fn)) + "(" + arg.FullName() + ")->" + out_name;
  }
};

/// A node of the query tree. Fields beyond `kind`/`children` are populated
/// per kind; `name`, `parent`, `level` and `output_schema` are derived by
/// QueryTree::Finalize.
class OperatorNode {
 public:
  OpKind kind = OpKind::kScan;

  // ---- derived bookkeeping (filled by QueryTree::Finalize) ----
  std::string name;                 ///< "m0".."mk" in bottom-up order
  OperatorNode* parent = nullptr;   ///< nullptr at the root
  int level = 0;                    ///< root has level 0 (paper's TabQ)
  Schema output_schema;             ///< the subquery's target type

  std::vector<std::unique_ptr<OperatorNode>> children;

  // ---- Scan ----
  std::string alias;       ///< relation name in S_Q (e.g. "C2")
  std::string base_table;  ///< eta_Q(alias): stored relation (e.g. "C")

  // ---- Select ----
  ExprPtr predicate;

  // ---- Project ----
  std::vector<Attribute> projection;

  // ---- Join / Union ----
  Renaming renaming;
  ExprPtr extra_predicate;  ///< residual non-equi join condition (theta)

  // ---- Aggregate ----
  std::vector<Attribute> group_by;
  std::vector<AggCall> aggregates;

  /// Marks the breakpoint subquery V / visibility frontier (Sec. 3.1, 2b);
  /// set by the canonicalizer.
  bool is_breakpoint = false;

  // ---- factories ----
  static std::unique_ptr<OperatorNode> MakeScan(std::string alias,
                                                std::string base_table);
  static std::unique_ptr<OperatorNode> MakeSelect(
      std::unique_ptr<OperatorNode> child, ExprPtr predicate);
  static std::unique_ptr<OperatorNode> MakeProject(
      std::unique_ptr<OperatorNode> child, std::vector<Attribute> attrs);
  static std::unique_ptr<OperatorNode> MakeJoin(
      std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
      Renaming renaming, ExprPtr extra_predicate = nullptr);
  static std::unique_ptr<OperatorNode> MakeUnion(
      std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
      Renaming renaming);
  /// Set difference left \ right; the renaming aligns the operand types as
  /// for a union. Extension beyond the paper's SPJA+union class.
  static std::unique_ptr<OperatorNode> MakeDifference(
      std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
      Renaming renaming);
  static std::unique_ptr<OperatorNode> MakeAggregate(
      std::unique_ptr<OperatorNode> child, std::vector<Attribute> group_by,
      std::vector<AggCall> aggregates);

  bool is_leaf() const { return kind == OpKind::kScan; }
  bool is_binary() const {
    return kind == OpKind::kJoin || kind == OpKind::kUnion ||
           kind == OpKind::kDifference;
  }

  /// Operator-level description: "scan C as C2", "sigma A.dob > 800", ...
  std::string Describe() const;

  /// True when `maybe_ancestor` is `node` or an ancestor of it.
  static bool IsSameOrAncestor(const OperatorNode* node,
                               const OperatorNode* maybe_ancestor);
  /// True when `maybe_descendant` lies in the subtree rooted at `node`
  /// (inclusive). "V subquery of m" in Alg. 3 is IsInSubtree(m, V).
  static bool IsInSubtree(const OperatorNode* node,
                          const OperatorNode* maybe_descendant);
};

}  // namespace ned

#endif  // NED_ALGEBRA_OPERATOR_H_
