#include "algebra/query_tree.h"

#include <algorithm>

#include "common/strings.h"

namespace ned {
namespace {

/// Derives `node->output_schema` from its children (already derived) and
/// validates kind-specific constraints.
Status DeriveSchema(OperatorNode* node, const Database& db,
                    std::map<std::string, std::string>* alias_to_table) {
  switch (node->kind) {
    case OpKind::kScan: {
      if (node->alias.empty()) node->alias = node->base_table;
      if (alias_to_table->count(node->alias) > 0) {
        return Status::InvalidArgument("duplicate scan alias: " + node->alias);
      }
      NED_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(node->base_table));
      (*alias_to_table)[node->alias] = node->base_table;
      Schema schema;
      for (const auto& a : rel->schema().attributes()) {
        schema.Add(Attribute(node->alias, a.name));
      }
      node->output_schema = std::move(schema);
      return Status::OK();
    }
    case OpKind::kSelect: {
      const Schema& in = node->children[0]->output_schema;
      if (node->predicate == nullptr) {
        return Status::InvalidArgument("selection without predicate");
      }
      std::vector<Attribute> used;
      node->predicate->CollectAttributes(&used);
      for (const auto& a : used) {
        NED_RETURN_NOT_OK(in.Resolve(a).ok()
                              ? Status::OK()
                              : Status::NotFound("selection references " +
                                                 a.FullName() +
                                                 " outside input type " +
                                                 in.ToString()));
      }
      node->output_schema = in;
      return Status::OK();
    }
    case OpKind::kProject: {
      const Schema& in = node->children[0]->output_schema;
      NED_ASSIGN_OR_RETURN(Schema projected, in.Project(node->projection));
      node->output_schema = std::move(projected);
      return Status::OK();
    }
    case OpKind::kJoin: {
      const Schema& left = node->children[0]->output_schema;
      const Schema& right = node->children[1]->output_schema;
      for (const auto& t : node->renaming.triples()) {
        if (!left.Contains(t.a1)) {
          return Status::NotFound("join renaming attribute " + t.a1.FullName() +
                                  " not in left type " + left.ToString());
        }
        if (!right.Contains(t.a2)) {
          return Status::NotFound("join renaming attribute " + t.a2.FullName() +
                                  " not in right type " + right.ToString());
        }
      }
      Schema out;
      for (const auto& a : left.attributes()) {
        Attribute mapped = node->renaming.Apply(a);
        if (!out.Contains(mapped)) out.Add(mapped);
      }
      for (const auto& a : right.attributes()) {
        Attribute mapped = node->renaming.Apply(a);
        if (!out.Contains(mapped)) out.Add(mapped);
      }
      node->output_schema = std::move(out);
      if (node->extra_predicate != nullptr) {
        std::vector<Attribute> used;
        node->extra_predicate->CollectAttributes(&used);
        for (const auto& a : used) {
          if (!node->output_schema.Contains(a)) {
            return Status::NotFound("join condition references " + a.FullName() +
                                    " outside joined type");
          }
        }
      }
      return Status::OK();
    }
    case OpKind::kUnion:
    case OpKind::kDifference: {
      // Both set operations require nu-aligned operand types; the output is
      // nu(type(Q1)) (for a difference, only left tuples survive anyway).
      const Schema& left = node->children[0]->output_schema;
      const Schema& right = node->children[1]->output_schema;
      Schema out;
      for (const auto& a : left.attributes()) {
        Attribute mapped = node->renaming.Apply(a);
        if (!out.Contains(mapped)) out.Add(mapped);
      }
      Schema right_mapped;
      for (const auto& a : right.attributes()) {
        Attribute mapped = node->renaming.Apply(a);
        if (!right_mapped.Contains(mapped)) right_mapped.Add(mapped);
      }
      if (!(out.ContainsAll(right_mapped) && right_mapped.ContainsAll(out))) {
        return Status::TypeError(
            std::string(OpKindName(node->kind)) +
            " operand types differ after renaming: " + out.ToString() +
            " vs " + right_mapped.ToString());
      }
      node->output_schema = std::move(out);
      return Status::OK();
    }
    case OpKind::kAggregate: {
      const Schema& in = node->children[0]->output_schema;
      Schema out;
      for (const auto& g : node->group_by) {
        if (!in.Contains(g)) {
          return Status::NotFound("group-by attribute " + g.FullName() +
                                  " not in input type " + in.ToString());
        }
        out.Add(g);
      }
      if (node->aggregates.empty()) {
        return Status::InvalidArgument("aggregate node without aggregate calls");
      }
      for (const auto& call : node->aggregates) {
        if (!in.Contains(call.arg)) {
          return Status::NotFound("aggregate argument " + call.arg.FullName() +
                                  " not in input type " + in.ToString());
        }
        out.Add(Attribute::Unqualified(call.out_name));
      }
      node->output_schema = std::move(out);
      return Status::OK();
    }
  }
  return Status::Internal("unknown operator kind");
}

Status FinalizeRecursive(OperatorNode* node, OperatorNode* parent, int level,
                         const Database& db,
                         std::map<std::string, std::string>* alias_to_table) {
  node->parent = parent;
  node->level = level;
  size_t expected_children =
      node->kind == OpKind::kScan ? 0 : (node->is_binary() ? 2 : 1);
  if (node->children.size() != expected_children) {
    return Status::InvalidArgument(
        StrCat(OpKindName(node->kind), " node has ", node->children.size(),
               " children, expected ", expected_children));
  }
  for (auto& child : node->children) {
    NED_RETURN_NOT_OK(
        FinalizeRecursive(child.get(), node, level + 1, db, alias_to_table));
  }
  return DeriveSchema(node, db, alias_to_table);
}

void CollectPreorder(OperatorNode* node, std::vector<OperatorNode*>* out) {
  out->push_back(node);
  for (auto& child : node->children) CollectPreorder(child.get(), out);
}

void RenderTree(const OperatorNode* node, const std::string& indent,
                std::string* out) {
  *out += indent + node->name + " [L" + std::to_string(node->level) + "] " +
          node->Describe();
  if (node->is_breakpoint) *out += "  *breakpoint*";
  *out += "   : " + node->output_schema.ToString() + "\n";
  for (const auto& child : node->children) {
    RenderTree(child.get(), indent + "  ", out);
  }
}

}  // namespace

Result<QueryTree> QueryTree::Create(std::unique_ptr<OperatorNode> root,
                                    const Database& db) {
  if (root == nullptr) return Status::InvalidArgument("null query root");
  QueryTree tree;
  tree.root_ = std::move(root);
  NED_RETURN_NOT_OK(FinalizeRecursive(tree.root_.get(), nullptr, 0, db,
                                      &tree.alias_to_table_));

  std::vector<OperatorNode*> preorder;
  CollectPreorder(tree.root_.get(), &preorder);

  // TabQ order: decreasing level; ties left-to-right. A preorder DFS visits
  // same-level nodes left-to-right, and stable_sort preserves that.
  tree.bottom_up_ = preorder;
  std::stable_sort(tree.bottom_up_.begin(), tree.bottom_up_.end(),
                   [](const OperatorNode* a, const OperatorNode* b) {
                     return a->level > b->level;
                   });
  for (size_t i = 0; i < tree.bottom_up_.size(); ++i) {
    tree.bottom_up_[i]->name = "m" + std::to_string(i);
  }
  for (const OperatorNode* node : tree.bottom_up_) {
    if (node->is_leaf()) tree.scans_.push_back(node);
  }
  return tree;
}

const OperatorNode* QueryTree::FindByName(const std::string& name) const {
  for (const OperatorNode* node : bottom_up_) {
    if (node->name == name) return node;
  }
  return nullptr;
}

std::string QueryTree::ToString() const {
  std::string out;
  RenderTree(root_.get(), "", &out);
  return out;
}

}  // namespace ned
