/// \file fingerprint.h
/// \brief Stable structural fingerprints of expressions and operator subtrees.
///
/// A fingerprint is a canonical string that two expressions / subtrees share
/// exactly when they are structurally identical: same operator kinds, same
/// conditions (with *type-tagged* literals, so the integer 800 and the string
/// "800" never collide even though Value::ToString renders both as "800"),
/// same projections, renamings, grouping and aggregation, same scan aliases
/// and base tables, in the same shape. The caching layer (src/cache/) keys
/// memoized subtree results on these fingerprints plus the data versions of
/// the relations the subtree reads; see docs/CACHING.md for the derivation.
///
/// Full strings are used instead of 64-bit hashes on purpose: keys stay
/// collision-proof by construction, and the LRU's byte accounting charges
/// them honestly.

#ifndef NED_ALGEBRA_FINGERPRINT_H_
#define NED_ALGEBRA_FINGERPRINT_H_

#include <string>

#include "algebra/operator.h"
#include "expr/expression.h"
#include "relational/value.h"

namespace ned {

/// Type-tagged value rendering: "i:800", "d:8.5e2", "s:3:800", "n:" (NULL).
/// Strings are length-prefixed so no payload can forge the separators.
std::string FingerprintValue(const Value& value);

/// Canonical expression rendering over the Expression hierarchy. nullptr
/// (e.g. an absent extra_predicate) renders as "-". Unlike
/// Expression::ToString this is unambiguous: literals are type-tagged and
/// every connective carries its own bracket structure.
std::string FingerprintExpression(const Expression* expr);

/// One node's *local* descriptor: kind plus the per-kind payload (predicate,
/// projection, renaming triples, extra predicate, group-by, aggregates, and
/// for scans the alias, base table and output schema). Children are NOT
/// included -- compose with SubtreeFingerprint for the structural key.
std::string NodeFingerprint(const OperatorNode& node);

/// Recursive structural fingerprint of the subtree rooted at `node`:
/// "(<local>;<child1>;<child2>)". Stable across rebuilds of the same query
/// (canonicalization is deterministic) and across processes.
std::string SubtreeFingerprint(const OperatorNode& node);

}  // namespace ned

#endif  // NED_ALGEBRA_FINGERPRINT_H_
