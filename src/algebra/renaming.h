/// \file renaming.h
/// \brief Renamings nu (paper Def. 2.1) used by joins and unions.
///
/// A renaming is a set of triples (A1, A2, Anew) mapping one attribute of
/// each operand to a fresh *unqualified* attribute. For a join, each triple
/// doubles as the equi-join condition A1 = A2 (as in the running example
/// where (A.aid, AB.aid, aid) both joins and renames). For a union, triples
/// align the operands' columns under common names.

#ifndef NED_ALGEBRA_RENAMING_H_
#define NED_ALGEBRA_RENAMING_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/attribute.h"

namespace ned {

/// One (A1, A2, Anew) renaming triple.
struct RenameTriple {
  Attribute a1;       ///< attribute from the left operand's type
  Attribute a2;       ///< attribute from the right operand's type
  std::string anew;   ///< fresh unqualified attribute name

  std::string ToString() const {
    return "(" + a1.FullName() + ", " + a2.FullName() + ", " + anew + ")";
  }
};

/// A set of renaming triples.
class Renaming {
 public:
  Renaming() = default;
  explicit Renaming(std::vector<RenameTriple> triples)
      : triples_(std::move(triples)) {}

  void Add(Attribute a1, Attribute a2, std::string anew) {
    triples_.push_back({std::move(a1), std::move(a2), std::move(anew)});
  }

  bool empty() const { return triples_.empty(); }
  size_t size() const { return triples_.size(); }
  const std::vector<RenameTriple>& triples() const { return triples_; }

  /// nu(A): maps A to Unqualified(Anew) when A equals some triple's A1 or A2,
  /// otherwise A itself (Def. 2.1's mapping nu(T)).
  Attribute Apply(const Attribute& a) const;

  /// The triple introducing unqualified attribute `anew`, if any. Used by
  /// unrenaming (Def. 2.7) to invert the mapping.
  std::optional<RenameTriple> FindByNewName(const std::string& anew) const;

  /// "{(A.aid, AB.aid, aid)}".
  std::string ToString() const;

 private:
  std::vector<RenameTriple> triples_;
};

}  // namespace ned

#endif  // NED_ALGEBRA_RENAMING_H_
