#include "algebra/renaming.h"

#include "common/strings.h"

namespace ned {

Attribute Renaming::Apply(const Attribute& a) const {
  for (const auto& t : triples_) {
    if (a == t.a1 || a == t.a2) return Attribute::Unqualified(t.anew);
  }
  return a;
}

std::optional<RenameTriple> Renaming::FindByNewName(const std::string& anew) const {
  for (const auto& t : triples_) {
    if (t.anew == anew) return t;
  }
  return std::nullopt;
}

std::string Renaming::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(triples_.size());
  for (const auto& t : triples_) parts.push_back(t.ToString());
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace ned
