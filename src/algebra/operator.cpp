#include "algebra/operator.h"

#include "common/strings.h"

namespace ned {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan: return "scan";
    case OpKind::kSelect: return "select";
    case OpKind::kProject: return "project";
    case OpKind::kJoin: return "join";
    case OpKind::kUnion: return "union";
    case OpKind::kDifference: return "difference";
    case OpKind::kAggregate: return "aggregate";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "sum";
    case AggFn::kCount: return "count";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

std::unique_ptr<OperatorNode> OperatorNode::MakeScan(std::string alias,
                                                     std::string base_table) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kScan;
  node->alias = std::move(alias);
  node->base_table = std::move(base_table);
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeSelect(
    std::unique_ptr<OperatorNode> child, ExprPtr predicate) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kSelect;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeProject(
    std::unique_ptr<OperatorNode> child, std::vector<Attribute> attrs) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kProject;
  node->projection = std::move(attrs);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeJoin(
    std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
    Renaming renaming, ExprPtr extra_predicate) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kJoin;
  node->renaming = std::move(renaming);
  node->extra_predicate = std::move(extra_predicate);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeUnion(
    std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
    Renaming renaming) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kUnion;
  node->renaming = std::move(renaming);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeDifference(
    std::unique_ptr<OperatorNode> left, std::unique_ptr<OperatorNode> right,
    Renaming renaming) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kDifference;
  node->renaming = std::move(renaming);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<OperatorNode> OperatorNode::MakeAggregate(
    std::unique_ptr<OperatorNode> child, std::vector<Attribute> group_by,
    std::vector<AggCall> aggregates) {
  auto node = std::make_unique<OperatorNode>();
  node->kind = OpKind::kAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

std::string OperatorNode::Describe() const {
  switch (kind) {
    case OpKind::kScan:
      return alias == base_table ? "scan " + base_table
                                 : "scan " + base_table + " as " + alias;
    case OpKind::kSelect:
      return "sigma " + (predicate ? predicate->ToString() : "true");
    case OpKind::kProject: {
      std::vector<std::string> names;
      for (const auto& a : projection) names.push_back(a.FullName());
      return "pi " + Join(names, ",");
    }
    case OpKind::kJoin: {
      std::vector<std::string> keys;
      for (const auto& t : renaming.triples()) keys.push_back(t.anew);
      std::string s = "join " + Join(keys, ",");
      if (extra_predicate) s += " on " + extra_predicate->ToString();
      return s;
    }
    case OpKind::kUnion:
      return "union";
    case OpKind::kDifference:
      return "difference";
    case OpKind::kAggregate: {
      std::vector<std::string> groups, calls;
      for (const auto& g : group_by) groups.push_back(g.FullName());
      for (const auto& a : aggregates) calls.push_back(a.ToString());
      return "alpha {" + Join(groups, ",") + "},{" + Join(calls, ",") + "}";
    }
  }
  return "?";
}

bool OperatorNode::IsSameOrAncestor(const OperatorNode* node,
                                    const OperatorNode* maybe_ancestor) {
  for (const OperatorNode* cur = node; cur != nullptr; cur = cur->parent) {
    if (cur == maybe_ancestor) return true;
  }
  return false;
}

bool OperatorNode::IsInSubtree(const OperatorNode* node,
                               const OperatorNode* maybe_descendant) {
  return IsSameOrAncestor(maybe_descendant, node);
}

}  // namespace ned
