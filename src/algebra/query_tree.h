/// \file query_tree.h
/// \brief A finalized query (Q, eta_Q) over a database (paper Def. 2.3).
///
/// QueryTree owns a validated operator tree: schemas are derived bottom-up,
/// parents/levels are linked, nodes are named m0..mk in *TabQ order*
/// (decreasing depth, left-to-right within a level -- Sec. 3.1, 2c), and the
/// alias->stored-table mapping eta_Q is recorded so self-joins reference the
/// same stored relation through distinct schema aliases.

#ifndef NED_ALGEBRA_QUERY_TREE_H_
#define NED_ALGEBRA_QUERY_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "relational/database.h"

namespace ned {

class QueryTree {
 public:
  QueryTree() = default;
  QueryTree(QueryTree&&) = default;
  QueryTree& operator=(QueryTree&&) = default;

  /// Validates and finalizes `root` against `db`: resolves scan base tables,
  /// derives every node's output schema, assigns parent/level/name, and
  /// builds the bottom-up order. Errors on schema violations (unknown
  /// attributes, duplicate aliases, mismatched union types, ...).
  static Result<QueryTree> Create(std::unique_ptr<OperatorNode> root,
                                  const Database& db);

  const OperatorNode* root() const { return root_.get(); }
  OperatorNode* mutable_root() { return root_.get(); }

  /// Nodes in TabQ order: decreasing level, left-to-right within a level.
  const std::vector<OperatorNode*>& bottom_up() const { return bottom_up_; }

  /// All scan nodes (leaves), in bottom-up order.
  const std::vector<const OperatorNode*>& scans() const { return scans_; }

  /// eta_Q: alias -> stored relation name.
  const std::map<std::string, std::string>& alias_to_table() const {
    return alias_to_table_;
  }

  /// Node lookup by assigned name ("m3"); nullptr when absent.
  const OperatorNode* FindByName(const std::string& name) const;

  /// The query's target type.
  const Schema& target_type() const { return root_->output_schema; }

  /// ASCII rendering of the tree with names, levels and schemas.
  std::string ToString() const;

  /// Number of subqueries (nodes).
  size_t size() const { return bottom_up_.size(); }

 private:
  std::unique_ptr<OperatorNode> root_;
  std::vector<OperatorNode*> bottom_up_;
  std::vector<const OperatorNode*> scans_;
  std::map<std::string, std::string> alias_to_table_;
};

}  // namespace ned

#endif  // NED_ALGEBRA_QUERY_TREE_H_
