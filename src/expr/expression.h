/// \file expression.h
/// \brief Scalar/boolean expressions over tuples (selection conditions C).
///
/// Selection conditions in Def. 2.2 are conditions over the child's target
/// type; we support comparisons between attributes and constants plus the
/// boolean connectives, which covers every query of the paper's evaluation
/// (Table 3) and general SPJA usage.

#ifndef NED_EXPR_EXPRESSION_H_
#define NED_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace ned {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

/// Abstract expression node. Expressions are immutable and shared.
class Expression {
 public:
  virtual ~Expression() = default;

  /// Evaluates against a tuple typed by `schema`. Errors on unresolvable
  /// attribute references.
  virtual Result<Value> Eval(const Tuple& tuple, const Schema& schema) const = 0;

  /// Human-readable rendering, e.g. "A.dob > 800".
  virtual std::string ToString() const = 0;

  /// Appends every attribute referenced by this expression.
  virtual void CollectAttributes(std::vector<Attribute>* out) const = 0;

  /// Evaluates as a boolean condition: non-boolean or NULL results count as
  /// false (SQL WHERE semantics).
  Result<bool> EvalBool(const Tuple& tuple, const Schema& schema) const;
};

/// Reference to an attribute of the input schema.
class ColumnRef : public Expression {
 public:
  explicit ColumnRef(Attribute attr) : attr_(std::move(attr)) {}
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const override;
  std::string ToString() const override { return attr_.FullName(); }
  void CollectAttributes(std::vector<Attribute>* out) const override {
    out->push_back(attr_);
  }
  const Attribute& attribute() const { return attr_; }

 private:
  Attribute attr_;
};

/// Constant value.
class Literal : public Expression {
 public:
  explicit Literal(Value value) : value_(std::move(value)) {}
  Result<Value> Eval(const Tuple&, const Schema&) const override {
    return value_;
  }
  std::string ToString() const override;
  void CollectAttributes(std::vector<Attribute>*) const override {}
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison `left cop right`; evaluates to Int(0/1).
class Comparison : public Expression {
 public:
  Comparison(ExprPtr left, CompareOp op, ExprPtr right)
      : left_(std::move(left)), op_(op), right_(std::move(right)) {}
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const override;
  std::string ToString() const override;
  void CollectAttributes(std::vector<Attribute>* out) const override {
    left_->CollectAttributes(out);
    right_->CollectAttributes(out);
  }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  CompareOp op() const { return op_; }

 private:
  ExprPtr left_;
  CompareOp op_;
  ExprPtr right_;
};

/// N-ary conjunction; empty conjunction is true.
class Conjunction : public Expression {
 public:
  explicit Conjunction(std::vector<ExprPtr> terms) : terms_(std::move(terms)) {}
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const override;
  std::string ToString() const override;
  void CollectAttributes(std::vector<Attribute>* out) const override {
    for (const auto& t : terms_) t->CollectAttributes(out);
  }
  const std::vector<ExprPtr>& terms() const { return terms_; }

 private:
  std::vector<ExprPtr> terms_;
};

/// N-ary disjunction; empty disjunction is false.
class Disjunction : public Expression {
 public:
  explicit Disjunction(std::vector<ExprPtr> terms) : terms_(std::move(terms)) {}
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const override;
  std::string ToString() const override;
  void CollectAttributes(std::vector<Attribute>* out) const override {
    for (const auto& t : terms_) t->CollectAttributes(out);
  }
  const std::vector<ExprPtr>& terms() const { return terms_; }

 private:
  std::vector<ExprPtr> terms_;
};

/// Logical negation.
class Not : public Expression {
 public:
  explicit Not(ExprPtr inner) : inner_(std::move(inner)) {}
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const override;
  std::string ToString() const override { return "NOT (" + inner_->ToString() + ")"; }
  void CollectAttributes(std::vector<Attribute>* out) const override {
    inner_->CollectAttributes(out);
  }
  const ExprPtr& inner() const { return inner_; }

 private:
  ExprPtr inner_;
};

// ---- Builder helpers (the public construction API) -------------------------

/// Column reference: Col("A", "dob") or Col("A.dob").
ExprPtr Col(const std::string& qualifier, const std::string& name);
ExprPtr Col(const std::string& dotted);
/// Literals.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const std::string& v);
ExprPtr Lit(const char* v);
ExprPtr Lit(Value v);
/// Comparisons.
ExprPtr Cmp(ExprPtr l, CompareOp op, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
/// Connectives.
ExprPtr And(std::vector<ExprPtr> terms);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(std::vector<ExprPtr> terms);
ExprPtr Negate(ExprPtr inner);

}  // namespace ned

#endif  // NED_EXPR_EXPRESSION_H_
