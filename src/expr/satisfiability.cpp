#include "expr/satisfiability.h"

#include <algorithm>
#include <optional>
#include <set>

namespace ned {
namespace {

/// A one-variable feasible region: optional lower/upper bound (with
/// strictness) plus excluded points. Domains are treated as dense.
struct Interval {
  std::optional<Value> lo;
  bool lo_strict = false;
  std::optional<Value> hi;
  bool hi_strict = false;
  std::vector<Value> excluded;

  /// Tightens the lower bound; returns false on immediate contradiction
  /// (incomparable bound types, e.g. string vs number).
  bool TightenLo(const Value& v, bool strict) {
    if (!lo.has_value()) {
      lo = v;
      lo_strict = strict;
      return true;
    }
    std::optional<int> c = Value::Compare(v, *lo);
    if (!c.has_value()) return false;
    if (*c > 0 || (*c == 0 && strict)) {
      lo = v;
      lo_strict = strict;
    }
    return true;
  }
  bool TightenHi(const Value& v, bool strict) {
    if (!hi.has_value()) {
      hi = v;
      hi_strict = strict;
      return true;
    }
    std::optional<int> c = Value::Compare(v, *hi);
    if (!c.has_value()) return false;
    if (*c < 0 || (*c == 0 && strict)) {
      hi = v;
      hi_strict = strict;
    }
    return true;
  }

  /// True when some value remains in the region (dense-domain semantics).
  bool Feasible() const {
    if (lo.has_value() && hi.has_value()) {
      std::optional<int> c = Value::Compare(*lo, *hi);
      if (!c.has_value()) return false;
      if (*c > 0) return false;
      if (*c == 0) {
        if (lo_strict || hi_strict) return false;
        // Interval pinched to the single point *lo: excluded points matter.
        for (const auto& e : excluded) {
          if (Value::Satisfies(*lo, CompareOp::kEq, e)) return false;
        }
      }
    }
    // Dense unbounded domain: a half-open/unbounded interval always contains
    // infinitely many points, so finitely many exclusions cannot empty it.
    return true;
  }
};

struct UnionFind {
  std::map<std::string, std::string> parent;
  std::string Find(const std::string& x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second == x) return x;
    std::string root = Find(it->second);
    parent[x] = root;
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    parent[Find(a)] = Find(b);
  }
};

}  // namespace

bool SatisfiableWith(const std::vector<CPred>& cond,
                     const std::map<std::string, Value>& bindings) {
  // Working copy of bindings that equality propagation can extend.
  std::map<std::string, Value> bound = bindings;
  UnionFind uf;
  for (const auto& p : cond) {
    uf.Find(p.lhs_var);
    if (p.rhs_is_var) uf.Find(p.rhs_var);
  }
  // Merge equality classes of `x = y` predicates.
  for (const auto& p : cond) {
    if (p.rhs_is_var && p.op == CompareOp::kEq) uf.Union(p.lhs_var, p.rhs_var);
  }
  // Each equality class takes the binding of any bound member; two distinct
  // bound members must agree.
  std::map<std::string, Value> class_value;
  for (const auto& [var, val] : bound) {
    std::string root = uf.Find(var);
    auto it = class_value.find(root);
    if (it == class_value.end()) {
      class_value[root] = val;
    } else if (!Value::Satisfies(it->second, CompareOp::kEq, val)) {
      return false;
    }
  }
  // Constant propagation through `x = a` predicates (fixpoint in one pass
  // since classes are already merged).
  for (const auto& p : cond) {
    if (!p.rhs_is_var && p.op == CompareOp::kEq) {
      std::string root = uf.Find(p.lhs_var);
      auto it = class_value.find(root);
      if (it == class_value.end()) {
        class_value[root] = p.rhs_const;
      } else if (!Value::Satisfies(it->second, CompareOp::kEq, p.rhs_const)) {
        return false;
      }
    }
  }

  auto value_of = [&](const std::string& var) -> std::optional<Value> {
    auto it = class_value.find(uf.Find(var));
    if (it == class_value.end()) return std::nullopt;
    return it->second;
  };

  // Partition remaining predicates into ground checks, per-class intervals
  // and free var-vs-var inequality edges.
  struct Edge {
    std::string lhs;  // class roots
    CompareOp op;
    std::string rhs;
  };
  std::map<std::string, Interval> intervals;
  std::vector<Edge> edges;

  for (const auto& p : cond) {
    if (p.rhs_is_var && p.op == CompareOp::kEq) continue;  // already merged
    std::optional<Value> l = value_of(p.lhs_var);
    std::optional<Value> r =
        p.rhs_is_var ? value_of(p.rhs_var) : std::optional<Value>(p.rhs_const);

    if (l.has_value() && r.has_value()) {
      if (!Value::Satisfies(*l, p.op, *r)) return false;
      continue;
    }
    if (l.has_value() && !r.has_value()) {
      // a cop y  ==>  y mirror(cop) a
      std::string root = uf.Find(p.rhs_var);
      Interval& iv = intervals[root];
      switch (MirrorOp(p.op)) {
        case CompareOp::kEq:
          if (!iv.TightenLo(*l, false) || !iv.TightenHi(*l, false)) return false;
          break;
        case CompareOp::kNe: iv.excluded.push_back(*l); break;
        case CompareOp::kLt: if (!iv.TightenHi(*l, true)) return false; break;
        case CompareOp::kLe: if (!iv.TightenHi(*l, false)) return false; break;
        case CompareOp::kGt: if (!iv.TightenLo(*l, true)) return false; break;
        case CompareOp::kGe: if (!iv.TightenLo(*l, false)) return false; break;
      }
      continue;
    }
    if (!l.has_value() && r.has_value()) {
      std::string root = uf.Find(p.lhs_var);
      Interval& iv = intervals[root];
      switch (p.op) {
        case CompareOp::kEq:
          if (!iv.TightenLo(*r, false) || !iv.TightenHi(*r, false)) return false;
          break;
        case CompareOp::kNe: iv.excluded.push_back(*r); break;
        case CompareOp::kLt: if (!iv.TightenHi(*r, true)) return false; break;
        case CompareOp::kLe: if (!iv.TightenHi(*r, false)) return false; break;
        case CompareOp::kGt: if (!iv.TightenLo(*r, true)) return false; break;
        case CompareOp::kGe: if (!iv.TightenLo(*r, false)) return false; break;
      }
      continue;
    }
    // Both free.
    if (p.op == CompareOp::kNe) continue;  // dense domain: always satisfiable
    edges.push_back({uf.Find(p.lhs_var), p.op, uf.Find(p.rhs_var)});
  }

  // Bound propagation across free-variable inequality edges. Chains in
  // c-tuple conditions are short; |edges|+1 rounds reach a fixpoint for
  // acyclic systems and expose contradictions in simple cycles.
  for (size_t round = 0; round <= edges.size(); ++round) {
    for (const auto& e : edges) {
      Interval& li = intervals[e.lhs];
      Interval& ri = intervals[e.rhs];
      bool lhs_below = e.op == CompareOp::kLt || e.op == CompareOp::kLe;
      bool strict = e.op == CompareOp::kLt || e.op == CompareOp::kGt;
      if (lhs_below) {
        // lhs < rhs: lhs inherits rhs's upper bound, rhs inherits lhs's lower.
        if (ri.hi.has_value() &&
            !li.TightenHi(*ri.hi, strict || ri.hi_strict)) {
          return false;
        }
        if (li.lo.has_value() &&
            !ri.TightenLo(*li.lo, strict || li.lo_strict)) {
          return false;
        }
      } else {
        if (ri.lo.has_value() &&
            !li.TightenLo(*ri.lo, strict || ri.lo_strict)) {
          return false;
        }
        if (li.hi.has_value() &&
            !ri.TightenHi(*li.hi, strict || li.hi_strict)) {
          return false;
        }
      }
    }
  }

  for (const auto& [_, iv] : intervals) {
    if (!iv.Feasible()) return false;
  }
  return true;
}

bool EvaluateGround(const std::vector<CPred>& cond,
                    const std::map<std::string, Value>& bindings) {
  for (const auto& p : cond) {
    auto l = bindings.find(p.lhs_var);
    if (l == bindings.end()) return false;
    Value rhs;
    if (p.rhs_is_var) {
      auto r = bindings.find(p.rhs_var);
      if (r == bindings.end()) return false;
      rhs = r->second;
    } else {
      rhs = p.rhs_const;
    }
    if (!Value::Satisfies(l->second, p.op, rhs)) return false;
  }
  return true;
}

}  // namespace ned
