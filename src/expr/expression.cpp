#include "expr/expression.h"

#include "common/strings.h"

namespace ned {

Result<bool> Expression::EvalBool(const Tuple& tuple, const Schema& schema) const {
  NED_ASSIGN_OR_RETURN(Value v, Eval(tuple, schema));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  return Status::TypeError("expression is not boolean: " + ToString());
}

Result<Value> ColumnRef::Eval(const Tuple& tuple, const Schema& schema) const {
  NED_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(attr_));
  if (idx >= tuple.size()) {
    return Status::Internal("tuple narrower than schema at " + attr_.FullName());
  }
  return tuple.at(idx);
}

std::string Literal::ToString() const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.as_string() + "'";
  }
  return value_.ToString();
}

Result<Value> Comparison::Eval(const Tuple& tuple, const Schema& schema) const {
  NED_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple, schema));
  NED_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple, schema));
  return Value::Int(Value::Satisfies(l, op_, r) ? 1 : 0);
}

std::string Comparison::ToString() const {
  return left_->ToString() + " " + CompareOpSymbol(op_) + " " +
         right_->ToString();
}

Result<Value> Conjunction::Eval(const Tuple& tuple, const Schema& schema) const {
  for (const auto& t : terms_) {
    NED_ASSIGN_OR_RETURN(bool b, t->EvalBool(tuple, schema));
    if (!b) return Value::Int(0);
  }
  return Value::Int(1);
}

std::string Conjunction::ToString() const {
  if (terms_.empty()) return "TRUE";
  std::vector<std::string> parts;
  for (const auto& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " AND ") + ")";
}

Result<Value> Disjunction::Eval(const Tuple& tuple, const Schema& schema) const {
  for (const auto& t : terms_) {
    NED_ASSIGN_OR_RETURN(bool b, t->EvalBool(tuple, schema));
    if (b) return Value::Int(1);
  }
  return Value::Int(0);
}

std::string Disjunction::ToString() const {
  if (terms_.empty()) return "FALSE";
  std::vector<std::string> parts;
  for (const auto& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " OR ") + ")";
}

Result<Value> Not::Eval(const Tuple& tuple, const Schema& schema) const {
  NED_ASSIGN_OR_RETURN(bool b, inner_->EvalBool(tuple, schema));
  return Value::Int(b ? 0 : 1);
}

ExprPtr Col(const std::string& qualifier, const std::string& name) {
  return std::make_shared<ColumnRef>(Attribute(qualifier, name));
}
ExprPtr Col(const std::string& dotted) {
  return std::make_shared<ColumnRef>(Attribute::Parse(dotted));
}
ExprPtr Lit(int64_t v) { return std::make_shared<Literal>(Value::Int(v)); }
ExprPtr Lit(double v) { return std::make_shared<Literal>(Value::Real(v)); }
ExprPtr Lit(const std::string& v) {
  return std::make_shared<Literal>(Value::Str(v));
}
ExprPtr Lit(const char* v) { return std::make_shared<Literal>(Value::Str(v)); }
ExprPtr Lit(Value v) { return std::make_shared<Literal>(std::move(v)); }

ExprPtr Cmp(ExprPtr l, CompareOp op, ExprPtr r) {
  return std::make_shared<Comparison>(std::move(l), op, std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kEq, std::move(r)); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kNe, std::move(r)); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kLt, std::move(r)); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kLe, std::move(r)); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kGt, std::move(r)); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(std::move(l), CompareOp::kGe, std::move(r)); }

ExprPtr And(std::vector<ExprPtr> terms) {
  if (terms.size() == 1) return terms[0];
  return std::make_shared<Conjunction>(std::move(terms));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return And(std::vector<ExprPtr>{std::move(a), std::move(b)});
}
ExprPtr Or(std::vector<ExprPtr> terms) {
  if (terms.size() == 1) return terms[0];
  return std::make_shared<Disjunction>(std::move(terms));
}
ExprPtr Negate(ExprPtr inner) { return std::make_shared<Not>(std::move(inner)); }

}  // namespace ned
