#include "expr/condition.h"

#include "common/strings.h"

namespace ned {

std::string CPred::ToString() const {
  std::string rhs = rhs_is_var ? rhs_var : rhs_const.ToString();
  return lhs_var + " " + CompareOpSymbol(op) + " " + rhs;
}

std::string ConditionToString(const std::vector<CPred>& cond) {
  if (cond.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(cond.size());
  for (const auto& p : cond) parts.push_back(p.ToString());
  return Join(parts, " AND ");
}

}  // namespace ned
