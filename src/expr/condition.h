/// \file condition.h
/// \brief Conditions on c-tuple variables (paper Def. 2.5).
///
/// A c-tuple condition is a conjunction of predicates of the form
/// `x cop x'` or `x cop a` where x, x' are variables and a is a constant.

#ifndef NED_EXPR_CONDITION_H_
#define NED_EXPR_CONDITION_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace ned {

/// One conjunct of a c-tuple condition.
struct CPred {
  std::string lhs_var;   ///< variable on the left
  CompareOp op;
  bool rhs_is_var = false;
  std::string rhs_var;   ///< set when rhs_is_var
  Value rhs_const;       ///< set when !rhs_is_var

  /// `x > 25`-style constant predicate.
  static CPred VsConst(std::string var, CompareOp op, Value constant) {
    CPred p;
    p.lhs_var = std::move(var);
    p.op = op;
    p.rhs_is_var = false;
    p.rhs_const = std::move(constant);
    return p;
  }
  /// `x != y`-style variable predicate.
  static CPred VsVar(std::string var, CompareOp op, std::string other) {
    CPred p;
    p.lhs_var = std::move(var);
    p.op = op;
    p.rhs_is_var = true;
    p.rhs_var = std::move(other);
    return p;
  }

  std::string ToString() const;
};

/// Renders a conjunction, "x1 > 25 AND x2 != Homer"; "true" when empty.
std::string ConditionToString(const std::vector<CPred>& cond);

}  // namespace ned

#endif  // NED_EXPR_CONDITION_H_
