/// \file satisfiability.h
/// \brief Satisfiability of c-tuple conditions under partial bindings.
///
/// Def. 2.8 (compatibility) asks whether "there exists a valuation nu for tc
/// s.t. nu(tc) |= tc.cond" after fixing the variables that a candidate source
/// tuple binds. This module decides that existence question for conjunctions
/// of `var cop const` and `var cop var` predicates (the full condition
/// language of Def. 2.5).
///
/// Decision procedure:
///   1. substitute bound variables; fully-ground predicates are checked
///      directly;
///   2. equalities are propagated to a fixpoint (union-find on variables,
///      constant propagation through `x = a` and `x = y`);
///   3. inequality bounds are propagated through `x cop y` edges for a
///      bounded number of rounds (enough for the acyclic chains that c-tuple
///      conditions form in practice -- the paper restricts conditions to
///      variables local to one relation);
///   4. each remaining free variable is checked for a non-empty feasible
///      interval, treating domains as dense and unbounded (the paper's active
///      domains are unconstrained), so disequalities only matter when the
///      interval is pinched to a single point.

#ifndef NED_EXPR_SATISFIABILITY_H_
#define NED_EXPR_SATISFIABILITY_H_

#include <map>
#include <string>
#include <vector>

#include "expr/condition.h"

namespace ned {

/// Decides whether `cond` has a satisfying valuation extending `bindings`.
/// Variables absent from `bindings` are existentially quantified.
bool SatisfiableWith(const std::vector<CPred>& cond,
                     const std::map<std::string, Value>& bindings);

/// Evaluates `cond` under a *complete* binding of its variables; unbound
/// variables make the result false (no existential quantification).
bool EvaluateGround(const std::vector<CPred>& cond,
                    const std::map<std::string, Value>& bindings);

}  // namespace ned

#endif  // NED_EXPR_SATISFIABILITY_H_
