#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace ned::obs {

namespace {

// Canonical series key within a family: labels sorted by key, rendered as
// k=v pairs joined by '\x1f' (no escaping needed for a map key -- the
// exposition layer handles user-visible escaping).
std::string SeriesKey(const LabelSet& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

int64_t HistogramSnapshot::QuantileUpperBound(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      if (i < bounds.size()) return bounds[i];
      return std::numeric_limits<int64_t>::max();  // overflow bucket
    }
  }
  return std::numeric_limits<int64_t>::max();
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  NED_CHECK_MSG(!bounds_.empty(),
                "histogram needs at least one bucket boundary");
  NED_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram boundaries must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(int64_t value) {
  // `le` semantics: first boundary >= value; value above every boundary
  // lands in the overflow bucket at index bounds_.size().
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.counts[i];
  }
  // Count derives from the bucket reads themselves, so count == sum(counts)
  // holds for every snapshot no matter how writers interleave. The sum is
  // read last and may include observations the buckets missed (or vice
  // versa) mid-race; tests that need exactness quiesce writers first.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

const std::vector<int64_t>& DefaultLatencyBoundsUs() {
  static const std::vector<int64_t> kBounds = {
      100,     250,     500,     1000,    2500,     5000,
      10000,   25000,   50000,   100000,  250000,   500000,
      1000000, 2500000, 5000000, 10000000};
  return kBounds;
}

// A family owns every series sharing one metric name. The map values are
// unique_ptrs so handles stay stable across rehashes.
struct MetricsRegistry::Family {
  MetricType type;
  std::vector<int64_t> bounds;  // histogram families only
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, LabelSet> labels;  // series key -> normalized labels
};

struct MetricsRegistry::Shard {
  mutable std::mutex mu;
  std::map<std::string, Family, std::less<>> families;
};

MetricsRegistry::MetricsRegistry() : shards_(new Shard[kShards]) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(
    std::string_view name, MetricType type, const std::vector<int64_t>* bounds,
    Shard& shard) {
  auto it = shard.families.find(name);
  if (it == shard.families.end()) {
    Family family;
    family.type = type;
    if (bounds != nullptr) family.bounds = *bounds;
    it = shard.families.emplace(std::string(name), std::move(family)).first;
  } else {
    NED_CHECK_MSG(it->second.type == type,
                  "metric \"" + std::string(name) +
                      "\" re-registered with a different type");
    if (bounds != nullptr) {
      NED_CHECK_MSG(it->second.bounds == *bounds,
                    "histogram \"" + std::string(name) +
                        "\" re-registered with different boundaries");
    }
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = FamilyFor(name, MetricType::kCounter, nullptr, shard);
  std::string key = SeriesKey(labels);
  auto& slot = family.counters[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    family.labels.emplace(std::move(key), std::move(labels));
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = FamilyFor(name, MetricType::kGauge, nullptr, shard);
  std::string key = SeriesKey(labels);
  auto& slot = family.gauges[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    family.labels.emplace(std::move(key), std::move(labels));
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, LabelSet labels,
                                         std::vector<int64_t> bounds) {
  std::sort(labels.begin(), labels.end());
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = FamilyFor(name, MetricType::kHistogram, &bounds, shard);
  std::string key = SeriesKey(labels);
  auto& slot = family.histograms[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
    family.labels.emplace(std::move(key), std::move(labels));
  }
  return slot.get();
}

void MetricsRegistry::RegisterCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(collectors_mu_);
  collectors_.push_back(std::move(collector));
}

std::vector<MetricSnapshot> MetricsRegistry::Collect() const {
  {
    // Run mirror-refresh callbacks before reading values. Copy the list so
    // callbacks can themselves register metrics without deadlock.
    std::vector<std::function<void()>> collectors;
    {
      std::lock_guard<std::mutex> lock(collectors_mu_);
      collectors = collectors_;
    }
    for (const auto& fn : collectors) fn();
  }

  std::vector<MetricSnapshot> out;
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, family] : shard.families) {
      auto emit = [&](const std::string& key) {
        MetricSnapshot snap;
        snap.name = name;
        snap.type = family.type;
        auto lit = family.labels.find(key);
        if (lit != family.labels.end()) snap.labels = lit->second;
        return snap;
      };
      for (const auto& [key, counter] : family.counters) {
        MetricSnapshot snap = emit(key);
        snap.counter_value = counter->value();
        out.push_back(std::move(snap));
      }
      for (const auto& [key, gauge] : family.gauges) {
        MetricSnapshot snap = emit(key);
        snap.gauge_value = gauge->value();
        out.push_back(std::move(snap));
      }
      for (const auto& [key, histogram] : family.histograms) {
        MetricSnapshot snap = emit(key);
        snap.histogram = histogram->Snapshot();
        out.push_back(std::move(snap));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

}  // namespace ned::obs
