#include "obs/expose.h"

#include <limits>

#include "common/json.h"

namespace ned::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Renders {k="v",...}; `extra` appends one more pair (used for le=).
std::string PromLabels(const LabelSet& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

// JSON string escaping lives in common/json.h (shared with the HTTP wire
// codec -- one escaping implementation, exactly one place to fix it).
std::string JsonString(const std::string& value) { return json::Quote(value); }

std::string QuantileJson(const HistogramSnapshot& histogram, double q) {
  int64_t v = histogram.QuantileUpperBound(q);
  if (v == std::numeric_limits<int64_t>::max()) return "null";
  return std::to_string(v);
}

}  // namespace

std::string FormatPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot) {
    if (m.name != last_family) {
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += TypeName(m.type);
      out += '\n';
      last_family = m.name;
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name;
        out += PromLabels(m.labels, "", "");
        out += ' ';
        out += std::to_string(m.counter_value);
        out += '\n';
        break;
      case MetricType::kGauge:
        out += m.name;
        out += PromLabels(m.labels, "", "");
        out += ' ';
        out += std::to_string(m.gauge_value);
        out += '\n';
        break;
      case MetricType::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.counts.size(); ++i) {
          cumulative += m.histogram.counts[i];
          std::string le = i < m.histogram.bounds.size()
                               ? std::to_string(m.histogram.bounds[i])
                               : std::string("+Inf");
          out += m.name;
          out += "_bucket";
          out += PromLabels(m.labels, "le", le);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += m.name;
        out += "_sum";
        out += PromLabels(m.labels, "", "");
        out += ' ';
        out += std::to_string(m.histogram.sum);
        out += '\n';
        out += m.name;
        out += "_count";
        out += PromLabels(m.labels, "", "");
        out += ' ';
        out += std::to_string(m.histogram.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string FormatJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "[\n";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& m = snapshot[i];
    out += "  {\n    \"name\": ";
    out += JsonString(m.name);
    out += ",\n    \"type\": \"";
    out += TypeName(m.type);
    out += "\",\n    \"labels\": {";
    for (size_t l = 0; l < m.labels.size(); ++l) {
      if (l > 0) out += ", ";
      out += JsonString(m.labels[l].first);
      out += ": ";
      out += JsonString(m.labels[l].second);
    }
    out += "}";
    switch (m.type) {
      case MetricType::kCounter:
        out += ",\n    \"value\": ";
        out += std::to_string(m.counter_value);
        break;
      case MetricType::kGauge:
        out += ",\n    \"value\": ";
        out += std::to_string(m.gauge_value);
        break;
      case MetricType::kHistogram: {
        out += ",\n    \"bounds\": [";
        for (size_t b = 0; b < m.histogram.bounds.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(m.histogram.bounds[b]);
        }
        out += "],\n    \"counts\": [";
        for (size_t b = 0; b < m.histogram.counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(m.histogram.counts[b]);
        }
        out += "],\n    \"sum\": ";
        out += std::to_string(m.histogram.sum);
        out += ",\n    \"count\": ";
        out += std::to_string(m.histogram.count);
        out += ",\n    \"p50\": ";
        out += QuantileJson(m.histogram, 0.50);
        out += ",\n    \"p99\": ";
        out += QuantileJson(m.histogram, 0.99);
        break;
      }
    }
    out += "\n  }";
    if (i + 1 < snapshot.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

}  // namespace ned::obs
