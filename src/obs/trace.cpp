#include "obs/trace.h"

#include <algorithm>

#include "common/status.h"

namespace ned::obs {

int64_t Trace::RelNanos(Clock::TimePoint at) {
  if (!have_epoch_) {
    have_epoch_ = true;
    epoch_ = at;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(at - epoch_)
      .count();
}

int32_t Trace::OpenSpan(std::string name) {
  return OpenSpanAt(std::move(name), clock_->Now());
}

int32_t Trace::OpenSpanAt(std::string name, Clock::TimePoint at) {
  Span span;
  span.name = std::move(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.start_ns = RelNanos(at);
  int32_t id = static_cast<int32_t>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void Trace::CloseSpan(int32_t id) { CloseSpanAt(id, clock_->Now()); }

void Trace::CloseSpanAt(int32_t id, Clock::TimePoint at) {
  NED_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < spans_.size(),
                "CloseSpan on unknown span id");
  int64_t rel = RelNanos(at);
  // Close any open descendants first (scopes normally guarantee LIFO order,
  // but an early return between explicit Open/Close calls must not wedge
  // the stack).
  while (!open_stack_.empty()) {
    int32_t top = open_stack_.back();
    open_stack_.pop_back();
    spans_[top].end_ns = rel;
    if (top == id) return;
  }
  NED_CHECK_MSG(false, "CloseSpan on a span that is not open");
}

namespace {

std::vector<int> Depths(const std::vector<Span>& spans) {
  std::vector<int> depth(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent >= 0) depth[i] = depth[spans[i].parent] + 1;
  }
  return depth;
}

}  // namespace

std::string Trace::RenderStructure() const {
  std::vector<int> depth = Depths(spans_);
  std::string out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += spans_[i].name;
    out += '\n';
  }
  return out;
}

std::string Trace::Render() const {
  std::vector<int> depth = Depths(spans_);
  std::string out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += span.name;
    out += ' ';
    if (span.end_ns >= 0) {
      out += std::to_string((span.end_ns - span.start_ns) / 1000);
      out += "us";
    } else {
      out += "(open)";
    }
    out += '\n';
  }
  return out;
}

int64_t Trace::PhaseNanos(const std::string& name) const {
  int64_t total = 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (span.name != name || span.end_ns < 0) continue;
    // Skip spans with a same-named ancestor: the ancestor's interval
    // already covers this one.
    bool nested = false;
    for (int32_t p = span.parent; p >= 0; p = spans_[p].parent) {
      if (spans_[p].name == name) {
        nested = true;
        break;
      }
    }
    if (!nested) total += span.end_ns - span.start_ns;
  }
  return total;
}

}  // namespace ned::obs
