/// \file expose.h
/// \brief Render a registry snapshot in Prometheus text or JSON form.
///
/// Both formatters are deterministic: series arrive sorted from
/// MetricsRegistry::Collect() and are rendered in that order with fixed
/// formatting, so the same registry state always produces the same bytes --
/// the property tests/golden/metrics_*.golden pin.

#ifndef NED_OBS_EXPOSE_H_
#define NED_OBS_EXPOSE_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ned::obs {

/// Prometheus text exposition format 0.0.4: one `# TYPE` line per family,
/// histogram series expanded into `_bucket{le=...}` (cumulative, ending in
/// le="+Inf"), `_sum` and `_count`. Label values are escaped per the spec
/// (backslash, double-quote, newline).
std::string FormatPrometheus(const std::vector<MetricSnapshot>& snapshot);

/// JSON array of series objects, stable key order, 2-space indent:
/// {"name","type","labels",value fields}. Histograms carry bounds/counts/
/// sum/count plus convenience p50/p99 (QuantileUpperBound; the int64-max
/// overflow sentinel renders as null).
std::string FormatJson(const std::vector<MetricSnapshot>& snapshot);

}  // namespace ned::obs

#endif  // NED_OBS_EXPOSE_H_
