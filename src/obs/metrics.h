/// \file metrics.h
/// \brief Lock-sharded metrics registry: counters, gauges and fixed-boundary
/// latency histograms with exact quantiles-from-buckets.
///
/// The unified observability layer every subsystem reports through
/// (docs/OBSERVABILITY.md). Design constraints, in order:
///
///  - *Cheap writes.* A counter increment or histogram observation is one
///    relaxed atomic RMW -- no lock, no allocation. Registration (name +
///    label-set lookup) is the only locked path, and callers hold the
///    returned handle, so hot paths register once and write forever.
///  - *Deterministic reads.* Collect() yields a snapshot sorted by metric
///    name then label set, so two collections of identical state render
///    byte-identically -- the property the exposition goldens pin.
///  - *Exactness.* Histograms count integer values (the service uses
///    microseconds) into fixed `le` buckets; a histogram's count is *derived*
///    from its buckets, so every snapshot satisfies count == sum(buckets)
///    even while writers race, and after writers join the totals are exact.
///    Quantiles come from bucket counts by an exact, documented rule
///    (HistogramSnapshot::QuantileUpperBound) instead of interpolation.
///
/// Metric identity is (name, label set). Asking twice for the same identity
/// returns the same handle; asking for the same name with a different type
/// (or different histogram boundaries) is a programming error (NED_CHECK).
/// The registry owns every metric and must outlive all handles.

#ifndef NED_OBS_METRICS_H_
#define NED_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ned::obs {

/// Label key/value pairs. The registry normalizes order (sorted by key), so
/// {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonically increasing counter. Thread-safe; writes are relaxed atomic
/// adds (the totals are exact once writers are quiescent, which is what the
/// 8-thread hammer test asserts).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, bytes, ladder level).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram. `counts` has bounds.size() + 1
/// entries: counts[i] holds observations v with bounds[i-1] < v <= bounds[i]
/// (`le` semantics: a value equal to a boundary lands in that boundary's
/// bucket); the final entry is the +Inf overflow bucket.
struct HistogramSnapshot {
  std::vector<int64_t> bounds;
  std::vector<uint64_t> counts;
  int64_t sum = 0;
  uint64_t count = 0;  ///< derived: sum over counts, consistent by construction

  /// Exact quantile-from-buckets rule: the tightest upper bound the bucket
  /// counts prove for the q-quantile. Let r = max(1, ceil(q * count)); the
  /// result is the boundary of the first bucket whose cumulative count
  /// reaches r. Returns 0 for an empty histogram and
  /// std::numeric_limits<int64_t>::max() when r falls in the overflow
  /// bucket (the buckets prove no finite bound).
  int64_t QuantileUpperBound(double q) const;
};

/// Fixed-boundary histogram over int64 values. Boundaries are ascending and
/// use `le` (value <= boundary) semantics. Observations are two relaxed
/// atomic adds (bucket + sum); the count is derived from the buckets at
/// snapshot time, so snapshots stay internally consistent under concurrent
/// writes.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);
  HistogramSnapshot Snapshot() const;
  const std::vector<int64_t>& bounds() const { return bounds_; }

  /// Convenience: QuantileUpperBound on a fresh snapshot.
  int64_t Quantile(double q) const { return Snapshot().QuantileUpperBound(q); }

 private:
  const std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> sum_{0};
};

/// One collected series, ready for exposition (obs/expose.h).
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Default latency bucket ladder in microseconds: 100us .. 10s, roughly
/// 1-2.5-5 per decade. Exact p50/p99-to-bucket-boundary resolution at the
/// sub-ms to tens-of-ms scale the Fig. 6 workloads live in.
const std::vector<int64_t>& DefaultLatencyBoundsUs();

/// The registry. Get* registers on first use and returns a stable handle;
/// Collect() snapshots everything. Lock-sharded by metric name: concurrent
/// registration of unrelated metrics does not contend, and value writes
/// through handles never take any lock at all.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, LabelSet labels = {});
  /// All series of one histogram family share `bounds`; re-registering the
  /// family with different bounds is a programming error.
  Histogram* GetHistogram(std::string_view name, LabelSet labels,
                          std::vector<int64_t> bounds);

  /// Registers a callback run at the start of every Collect(), for gauges
  /// that mirror subsystem-internal state (cache occupancy, queue depth,
  /// pool high-watermarks) instead of being written inline. Callbacks run
  /// outside all registry locks and may call Get*/Set freely.
  void RegisterCollector(std::function<void()> collector);

  /// Snapshot of every registered series, sorted by (name, labels) --
  /// deterministic rendering order for the exposition formatters.
  std::vector<MetricSnapshot> Collect() const;

 private:
  struct Family;
  struct Shard;

  static constexpr size_t kShards = 16;

  Shard& ShardFor(std::string_view name) const;
  Family& FamilyFor(std::string_view name, MetricType type,
                    const std::vector<int64_t>* bounds, Shard& shard);

  std::unique_ptr<Shard[]> shards_;

  mutable std::mutex collectors_mu_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace ned::obs

#endif  // NED_OBS_METRICS_H_
