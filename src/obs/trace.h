/// \file trace.h
/// \brief Per-request span trees mirroring the paper's Fig. 5 phase
/// breakdown, plus the serving phases around it.
///
/// A Trace records nested, named spans for one request: admission work
/// (snapshot pin, cache/store lookups, journal append), queue wait, and the
/// engine's own Fig. 5 phases (Initialization, CompatibleFinder,
/// SuccessorsFinder, Bottom-Up) down to per-TabQ-level granularity.
///
/// Two properties the tests pin:
///
///  - *Null fast path.* Nothing in the hot path pays for tracing unless a
///    trace is attached: every emission site is guarded by a raw pointer
///    check (SpanScope on a nullptr trace compiles down to two branches).
///    bench_obs gates the attached-trace overhead itself at <2%.
///  - *Thread-count determinism.* Spans are emitted only by the coordinator
///    thread of a request; worker shards never see the trace
///    (ExecContext::BeginWorkerShard deliberately does not propagate it).
///    Hence RenderStructure() -- the names-and-nesting rendering with no
///    durations -- is byte-identical for serial and parallel evaluation of
///    the same request, the span-structure analogue of the engine's
///    rid-merge answer identity.
///
/// Trace is deliberately NOT thread-safe: exactly one thread appends to it
/// at a time. Cross-thread handoff (client -> worker -> client) is sequenced
/// by the service's own synchronization (job mutex + promise), which
/// publishes the trace along with the response.

#ifndef NED_OBS_TRACE_H_
#define NED_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"

namespace ned::obs {

/// One span: a named interval with a parent (index into the trace's span
/// vector, -1 for roots). Children always follow their parent in the
/// vector (append order == pre-order), which the renderers rely on.
struct Span {
  std::string name;
  int32_t parent = -1;
  int64_t start_ns = 0;  ///< clock-relative to the trace's first span start
  int64_t end_ns = -1;   ///< -1 while still open
};

/// Append-only span tree with clock injection. Spans open and close in
/// stack (LIFO) order; OpenSpan returns the span id to pass to CloseSpan,
/// and the RAII SpanScope below is the usual way to use it.
class Trace {
 public:
  /// `clock` may be nullptr for Clock::Real(). Span start/end offsets are
  /// relative to the first OpenSpan, so ManualClock tests see durations as
  /// exactly the nanos they advanced.
  explicit Trace(const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : Clock::Real()) {}

  /// Opens a child of the innermost open span (a root if none) and returns
  /// its id.
  int32_t OpenSpan(std::string name);
  /// Closes span `id`, and any forgotten open descendants, at the current
  /// clock reading.
  void CloseSpan(int32_t id);

  /// Opens/closes with an explicit clock reading -- used by PhasedSpanScope
  /// so the span and the PhaseTimer charge derive from the same two
  /// readings and can never disagree.
  int32_t OpenSpanAt(std::string name, Clock::TimePoint at);
  void CloseSpanAt(int32_t id, Clock::TimePoint at);

  const std::vector<Span>& spans() const { return spans_; }
  const Clock* clock() const { return clock_; }

  /// Names and nesting only, durations omitted -- the byte-identity
  /// artifact for serial-vs-parallel comparison. One span per line,
  /// two-space indent per depth.
  std::string RenderStructure() const;

  /// RenderStructure plus per-span durations in microseconds.
  std::string Render() const;

  /// Total nanoseconds across spans named `name`. Sums only spans without a
  /// same-named ancestor, so recursive nesting is not double-counted; the
  /// Fig. 5-from-spans recipe sums the four engine phase names this way.
  int64_t PhaseNanos(const std::string& name) const;

 private:
  int64_t RelNanos(Clock::TimePoint at);

  const Clock* clock_;
  std::vector<Span> spans_;
  std::vector<int32_t> open_stack_;
  bool have_epoch_ = false;
  Clock::TimePoint epoch_{};
};

/// RAII span with a null fast path: if `trace` is nullptr this is two
/// branches and no clock read.
class SpanScope {
 public:
  SpanScope(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->OpenSpan(name);
  }
  /// Dynamic-name variant for cold sites (per-ctuple, per-level): the name
  /// is built by the caller and therefore costs an allocation even when no
  /// trace is attached -- do not use in per-row paths.
  SpanScope(Trace* trace, std::string name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->OpenSpan(std::move(name));
  }
  ~SpanScope() {
    if (trace_ != nullptr) trace_->CloseSpan(id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Trace* trace_;
  int32_t id_ = -1;
};

/// Charges a PhaseTimer phase AND emits a same-named span from one pair of
/// clock readings, so trace-derived Fig. 5 numbers equal timer-derived ones
/// by construction. With no trace attached it degrades to the plain
/// Stopwatch-based PhaseTimer::Scope behaviour (real wall clock), keeping
/// the untraced path identical to what bench_fig5 always measured.
class PhasedSpanScope {
 public:
  PhasedSpanScope(PhaseTimer* timer, const char* phase, Trace* trace)
      : timer_(timer), phase_(phase), trace_(trace) {
    if (trace_ != nullptr) {
      start_ = trace_->clock()->Now();
      id_ = trace_->OpenSpanAt(phase, start_);
    }
  }
  ~PhasedSpanScope() {
    if (trace_ != nullptr) {
      Clock::TimePoint end = trace_->clock()->Now();
      trace_->CloseSpanAt(id_, end);
      if (timer_ != nullptr) {
        timer_->Add(phase_,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        end - start_)
                        .count());
      }
    } else if (timer_ != nullptr) {
      timer_->Add(phase_, watch_.ElapsedNanos());
    }
  }
  PhasedSpanScope(const PhasedSpanScope&) = delete;
  PhasedSpanScope& operator=(const PhasedSpanScope&) = delete;

 private:
  PhaseTimer* timer_;
  const char* phase_;
  Trace* trace_;
  int32_t id_ = -1;
  Clock::TimePoint start_{};
  Stopwatch watch_;
};

}  // namespace ned::obs

#endif  // NED_OBS_TRACE_H_
