/// \file whynot_baseline.h
/// \brief The Why-Not algorithm [Chapman & Jagadish, SIGMOD'09] -- the
/// state-of-the-art baseline the paper compares against (bottom-up variant).
///
/// Reimplemented from the paper's Sec. 1/4 characterisation, deliberately
/// keeping the shortcomings NedExplain fixes:
///
///  * *Unpicked data items* are source tuples containing "pieces" of the
///    missing answer, matched on **unqualified** attribute names -- so a
///    self-joined relation contributes items through *every* alias
///    (Crime6/7's wrong answers).
///  * Tracing follows plain (non-valid) successors via lineage. The traversal
///    proceeds bottom-up over the canonical tree; the **first** manipulation
///    that takes traced successors in its input and emits none -- or whose
///    output is empty altogether (Crime5's m4) -- is returned as the
///    *frontier picky manipulation* and the traversal stops, so at most one
///    manipulation is blamed per c-tuple (vs. NedExplain's per-tuple detail).
///  * If traced successors reach the query result, the algorithm concludes
///    the answer is "not missing" and returns nothing, even when the
///    surviving successors only carry *some* pieces of the answer (the
///    Sec. 1 Q2 example; Crime8; Imdb2).
///  * No aggregation or union support: such queries yield "n.a." as in
///    Table 5 (Crime9/10, Gov6/7).

#ifndef NED_BASELINE_WHYNOT_BASELINE_H_
#define NED_BASELINE_WHYNOT_BASELINE_H_

#include <string>
#include <vector>

#include "algebra/query_tree.h"
#include "common/timer.h"
#include "exec/evaluator.h"
#include "whynot/ctuple.h"

namespace ned {

/// Traversal strategy of [2]: the bottom-up variant walks the tree in TabQ
/// order; the top-down variant descends from the root, pruning every subtree
/// whose output still carries successors of a piece. Both produce the same
/// frontier-picky answer ([2] states their equivalence; our tests verify
/// it); they differ in how much lineage derivation they pay -- top-down is
/// cheap when the answer is "not missing" (it stops at the root), bottom-up
/// when the blocking manipulation sits deep in the tree.
enum class BaselineTraversal { kBottomUp, kTopDown };

/// Per-c-tuple outcome of the baseline.
struct BaselineCTupleResult {
  CTuple ctuple;
  size_t unpicked_items = 0;
  /// Frontier picky manipulation; nullptr when none was found.
  const OperatorNode* frontier_picky = nullptr;
  /// True when traced successors reached the query result (the algorithm
  /// then concludes the answer is not missing).
  bool answer_deemed_present = false;
};

/// Result of a baseline run.
struct WhyNotBaselineResult {
  bool supported = true;
  std::string unsupported_reason;
  std::vector<const OperatorNode*> answer;  ///< frontier picky manipulations
  std::vector<BaselineCTupleResult> per_ctuple;
  PhaseTimer phases;
  /// False when a resource limit (deadline/budget/cancellation) stopped the
  /// run; `answer` then holds only the manipulations found so far and
  /// `limit_status` names the tripped limit.
  bool complete = true;
  Status limit_status;

  /// "n.a.", "-" (no answer) or "m3, m7".
  std::string AnswerToString() const;
};

/// The baseline engine bound to one (query, database) pair.
class WhyNotBaseline {
 public:
  static Result<WhyNotBaseline> Create(
      const QueryTree* tree, const Database* db,
      BaselineTraversal traversal = BaselineTraversal::kBottomUp);

  /// Runs the bottom-up Why-Not algorithm for `question`. The question is
  /// used as given (the baseline has no unrenaming; fields are matched on
  /// unqualified names, as in [2]). With an ExecContext the run is governed:
  /// a tripped limit yields an OK result flagged `complete = false` holding
  /// the partial answer, mirroring NedExplainEngine's graceful degradation.
  Result<WhyNotBaselineResult> Explain(const WhyNotQuestion& question,
                                       ExecContext* ctx = nullptr);

  const QueryTree& tree() const { return *tree_; }

 private:
  WhyNotBaseline() = default;

  const QueryTree* tree_ = nullptr;
  const Database* db_ = nullptr;
  BaselineTraversal traversal_ = BaselineTraversal::kBottomUp;
  bool supported_ = true;
  std::string unsupported_reason_;
};

}  // namespace ned

#endif  // NED_BASELINE_WHYNOT_BASELINE_H_
