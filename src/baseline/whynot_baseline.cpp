#include "baseline/whynot_baseline.h"

#include <functional>
#include <map>
#include <unordered_set>

#include "common/strings.h"
#include "expr/satisfiability.h"

namespace ned {

std::string WhyNotBaselineResult::AnswerToString() const {
  if (!supported) return "n.a.";
  if (answer.empty()) return "-";
  std::vector<std::string> parts;
  for (const OperatorNode* node : answer) parts.push_back(node->name);
  return Join(parts, ", ");
}

Result<WhyNotBaseline> WhyNotBaseline::Create(const QueryTree* tree,
                                              const Database* db,
                                              BaselineTraversal traversal) {
  if (tree == nullptr || tree->root() == nullptr) {
    return Status::InvalidArgument("WhyNotBaseline requires a query tree");
  }
  WhyNotBaseline baseline;
  baseline.tree_ = tree;
  baseline.db_ = db;
  baseline.traversal_ = traversal;
  for (const OperatorNode* node : tree->bottom_up()) {
    if (node->kind == OpKind::kAggregate) {
      baseline.supported_ = false;
      baseline.unsupported_reason_ =
          "the Why-Not implementation does not support aggregation";
    } else if (node->kind == OpKind::kUnion) {
      baseline.supported_ = false;
      baseline.unsupported_reason_ =
          "the Why-Not implementation does not support union";
    } else if (node->kind == OpKind::kDifference) {
      baseline.supported_ = false;
      baseline.unsupported_reason_ =
          "the Why-Not implementation does not support set difference";
    }
  }
  return baseline;
}

namespace {

/// Unpicked data items for one *piece* (one field) of the missing answer:
/// source tuples containing the piece's value. Matching is per-field on
/// *unqualified* attribute names -- qualifiers are ignored, which is
/// precisely what misleads the algorithm on self-joins (paper Sec. 4,
/// Crime6/7): a self-joined relation contributes items through every alias.
Result<std::unordered_set<TupleId>> FindPieceItems(
    const CTuple& tc, const std::pair<Attribute, CValue>& field,
    const QueryInput& input, ExecContext* ctx) {
  const auto& [attr, cval] = field;
  std::unordered_set<TupleId> items;
  for (const std::string& alias : input.aliases()) {
    NED_ASSIGN_OR_RETURN(const Schema* schema, input.AliasSchema(alias));
    NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                         input.AliasTuples(alias));
    std::vector<size_t> indices = schema->IndicesWithName(attr.name);
    if (indices.empty()) continue;
    for (const TraceTuple& t : *tuples) {
      NED_EXEC_TICK(ctx);
      bool matches = false;
      for (size_t idx : indices) {
        const Value& v = t.values.at(idx);
        if (!cval.is_var) {
          if (Value::Satisfies(v, CompareOp::kEq, cval.constant)) {
            matches = true;
          }
        } else {
          std::map<std::string, Value> binding{{cval.var, v}};
          if (SatisfiableWith(tc.cond(), binding)) matches = true;
        }
        if (matches) break;
      }
      if (matches) items.insert(t.rid);
    }
  }
  return items;
}

}  // namespace

Result<WhyNotBaselineResult> WhyNotBaseline::Explain(
    const WhyNotQuestion& question, ExecContext* ctx) {
  WhyNotBaselineResult result;
  if (!supported_) {
    result.supported = false;
    result.unsupported_reason = unsupported_reason_;
    return result;
  }
  // Converts a tripped resource limit into a flagged partial result; the
  // answer keeps whatever frontier manipulations were established so far.
  auto mark_partial = [&result](const Status& limit) {
    result.complete = false;
    result.limit_status = limit;
  };

  // The baseline always evaluates the full workflow first (it needs the
  // result both for the "not missing" conclusion and for lineage tracing;
  // the original implementation issued Trio lineage queries against the
  // fully materialised run).
  std::unique_ptr<QueryInput> input;
  std::unique_ptr<Evaluator> evaluator;
  {
    PhaseTimer::Scope scope(&result.phases, phase::kInitialization);
    Result<QueryInput> built = QueryInput::Build(*tree_, *db_, ctx);
    if (!built.ok()) {
      if (IsResourceLimit(built.status())) {
        mark_partial(built.status());
        return result;
      }
      return built.status();
    }
    input = std::make_unique<QueryInput>(std::move(built).value());
    evaluator = std::make_unique<Evaluator>(tree_, input.get(), ctx);
  }
  {
    PhaseTimer::Scope scope(&result.phases, phase::kBottomUp);
    auto root = evaluator->EvalAll();
    if (!root.ok()) {
      if (IsResourceLimit(root.status())) {
        mark_partial(root.status());
        return result;
      }
      return root.status();
    }
  }

  for (const CTuple& tc : question.ctuples()) {
    if (!result.complete) break;
    BaselineCTupleResult part;
    part.ctuple = tc;

    // One traced set per piece (field) of the missing answer: the algorithm
    // follows each piece's matching source tuples independently.
    std::vector<std::unordered_set<Rid>> piece_items;
    {
      PhaseTimer::Scope scope(&result.phases, phase::kCompatibleFinder);
      for (const auto& field : tc.fields()) {
        Result<std::unordered_set<TupleId>> items =
            FindPieceItems(tc, field, *input, ctx);
        if (!items.ok()) {
          if (IsResourceLimit(items.status())) {
            mark_partial(items.status());
            break;
          }
          return items.status();
        }
        part.unpicked_items += items->size();
        piece_items.push_back(std::move(items).value());
      }
    }
    if (!result.complete) {
      result.per_ctuple.push_back(std::move(part));
      break;
    }

    // Bottom-up successor tracing. traced[node][p] holds the rids of the
    // node's output tuples that are (plain, not valid) successors of piece
    // p's items. A manipulation is *frontier picky* when some piece has
    // traced successors in the manipulation's input but none in its output;
    // the first such manipulation (TabQ order) is the answer ([2] reports a
    // single manipulation per question, not a per-tuple breakdown). The
    // traversal must still run to the root: successors of *any* piece
    // reaching the result make the algorithm conclude the answer is not
    // missing and return nothing -- even when another piece was blocked on
    // the way (the Sec. 1 Q2 / Crime8 shortcoming), and even when the same
    // piece only survives through a different alias of a self-joined
    // relation (Crime6/7).
    //
    // Lineage is *re-derived per manipulation* by walking the provenance
    // graph down to the base tuples, with no cross-node memoisation. This
    // mirrors the original implementation, which issued a Trio lineage query
    // for each manipulation's output -- the overhead the paper identifies as
    // the baseline's main cost (Sec. 4.3).
    PhaseTimer::Scope scope(&result.phases, phase::kSuccessorsFinder);

    std::unordered_map<Rid, const TraceTuple*> by_rid;
    for (const OperatorNode* m : tree_->bottom_up()) {
      for (const TraceTuple& t : *evaluator->TryGetOutput(m)) {
        by_rid[t.rid] = &t;
      }
    }
    // Recursive lineage derivation (the simulated per-tuple lineage query).
    auto derive_lineage = [&](const TraceTuple& tuple,
                              std::unordered_set<TupleId>* out) {
      std::vector<const TraceTuple*> stack = {&tuple};
      while (!stack.empty()) {
        const TraceTuple* cur = stack.back();
        stack.pop_back();
        if (cur->preds.empty()) {
          out->insert(cur->rid);  // base tuple
          continue;
        }
        for (Rid pred : cur->preds) {
          auto it = by_rid.find(pred);
          if (it != by_rid.end()) stack.push_back(it->second);
        }
      }
    };

    size_t n_pieces = piece_items.size();
    std::unordered_map<const OperatorNode*,
                       std::vector<std::unordered_set<Rid>>>
        traced;
    const OperatorNode* frontier = nullptr;
    for (const OperatorNode* m : tree_->bottom_up()) {
      if (traversal_ != BaselineTraversal::kBottomUp) break;
      // Manipulation boundary: a tripped limit stops the tracing but keeps
      // any frontier already found sound.
      {
        Status st = CheckExec(ctx);
        if (!st.ok()) {
          if (!IsResourceLimit(st)) return st;
          mark_partial(st);
          break;
        }
      }
      const std::vector<TraceTuple>* output = evaluator->TryGetOutput(m);
      NED_CHECK(output != nullptr);
      std::vector<std::unordered_set<Rid>>& out_sets = traced[m];
      out_sets.resize(n_pieces);
      if (m->is_leaf()) {
        for (size_t p = 0; p < n_pieces; ++p) {
          for (const TraceTuple& t : *output) {
            if (piece_items[p].count(t.rid) > 0) out_sets[p].insert(t.rid);
          }
        }
        continue;
      }
      bool any_input = false;
      for (const auto& child : m->children) {
        any_input =
            any_input || !evaluator->TryGetOutput(child.get())->empty();
      }
      // A manipulation with empty output contributes no successors; the
      // empty-output rule blames it in the frontier scan below. Tracing
      // continues, since other branches may still carry successors.
      if (output->empty()) continue;
      // One lineage query per output tuple of this manipulation.
      for (const TraceTuple& o : *output) {
        if (ctx != nullptr) {
          Status st = ctx->CheckEvery();
          if (!st.ok()) {
            if (!IsResourceLimit(st)) return st;
            mark_partial(st);
            break;
          }
        }
        std::unordered_set<TupleId> lineage;
        derive_lineage(o, &lineage);
        for (size_t p = 0; p < n_pieces; ++p) {
          for (TupleId id : lineage) {
            if (piece_items[p].count(id) > 0) {
              out_sets[p].insert(o.rid);
              break;
            }
          }
        }
      }
      if (!result.complete) break;
    }

    if (result.complete && traversal_ == BaselineTraversal::kBottomUp) {
      // Frontier: the earliest manipulation (TabQ order) that empties a
      // non-empty data flow (Crime5's sigma sector>99), or that takes a
      // piece's traced successors in its input, emits none, and has no
      // successors of that piece anywhere above it. The "above" condition
      // matters for self-joins: a piece fed through the other alias of the
      // same stored relation can re-surface in a join ancestor, so the piece
      // actually dies later (or not at all) -- which is where the top-down
      // descent places the boundary. A piece that reaches the root has the
      // root among its ancestors and thus never yields a boundary.
      for (const OperatorNode* m : tree_->bottom_up()) {
        if (m->is_leaf()) continue;
        bool any_input = false;
        for (const auto& child : m->children) {
          any_input =
              any_input || !evaluator->TryGetOutput(child.get())->empty();
        }
        if (evaluator->TryGetOutput(m)->empty() && any_input) {
          frontier = m;
          break;
        }
        bool boundary = false;
        for (size_t p = 0; p < n_pieces && !boundary; ++p) {
          if (!traced.at(m)[p].empty()) continue;
          bool in_nonempty = false;
          for (const auto& child : m->children) {
            if (!traced.at(child.get())[p].empty()) in_nonempty = true;
          }
          if (!in_nonempty) continue;
          bool survives_above = false;
          for (const OperatorNode* a = m->parent; a != nullptr;
               a = a->parent) {
            if (!traced.at(a)[p].empty()) survives_above = true;
          }
          if (!survives_above) boundary = true;
        }
        if (boundary) {
          frontier = m;
          break;
        }
      }
      if (frontier == nullptr) {
        // No boundary, and some piece's successors reached the result: the
        // algorithm concludes the answer is not missing, even when the
        // survivors carry only some pieces of the missing tuple (the Sec. 1
        // Q2 example; Crime8) or arrived through the wrong alias (Crime6/7).
        auto it = traced.find(tree_->root());
        if (it != traced.end()) {
          for (const auto& set : it->second) {
            if (!set.empty()) part.answer_deemed_present = true;
          }
        }
      }
    }

    // ---- top-down variant ----------------------------------------------------
    // Descends from the root, pruning every subtree whose output still
    // carries piece successors; a node is a boundary when it has no
    // surviving successors but a child (or leaf items) feeds some in. The
    // answer -- the earliest boundary in TabQ order -- matches the
    // bottom-up variant ([2]'s equivalence claim; verified by tests).
    if (traversal_ == BaselineTraversal::kTopDown) {
      // A tripped limit inside the recursive checks is latched here (the
      // lambdas return bool, not Status) and handled after the descent.
      Status td_limit = Status::OK();
      // Memoized "does m's output carry successors of piece p" checks; each
      // miss pays one simulated lineage query per inspected output tuple.
      std::map<std::pair<const OperatorNode*, size_t>, bool> traced_memo;
      std::function<bool(const OperatorNode*, size_t)> has_traced =
          [&](const OperatorNode* m, size_t p) -> bool {
        if (!td_limit.ok()) return false;
        auto key = std::make_pair(m, p);
        auto it = traced_memo.find(key);
        if (it != traced_memo.end()) return it->second;
        bool found = false;
        for (const TraceTuple& o : *evaluator->TryGetOutput(m)) {
          if (ctx != nullptr) {
            Status st = ctx->CheckEvery();
            if (!st.ok()) {
              td_limit = st;
              break;
            }
          }
          if (m->is_leaf()) {
            if (piece_items[p].count(o.rid) > 0) found = true;
          } else {
            std::unordered_set<TupleId> lineage;
            derive_lineage(o, &lineage);
            for (TupleId id : lineage) {
              if (piece_items[p].count(id) > 0) {
                found = true;
                break;
              }
            }
          }
          if (found) break;
        }
        // Never memoize a verdict cut short by a limit.
        if (!td_limit.ok()) return false;
        traced_memo[key] = found;
        return found;
      };
      std::function<bool(const OperatorNode*, size_t)> has_items =
          [&](const OperatorNode* m, size_t p) -> bool {
        if (m->is_leaf()) {
          for (const TraceTuple& t : *evaluator->TryGetOutput(m)) {
            if (piece_items[p].count(t.rid) > 0) return true;
          }
          return false;
        }
        for (const auto& child : m->children) {
          if (has_items(child.get(), p)) return true;
        }
        return false;
      };

      std::vector<const OperatorNode*> candidates;
      std::function<void(const OperatorNode*, size_t)> descend =
          [&](const OperatorNode* m, size_t p) {
        if (m->is_leaf()) return;
        if (!has_items(m, p)) return;
        if (has_traced(m, p)) return;  // survivors here: boundary is above
        bool fed = false;
        for (const auto& child : m->children) {
          if (has_traced(child.get(), p)) {
            fed = true;
          } else {
            descend(child.get(), p);
          }
        }
        if (fed) candidates.push_back(m);
      };
      // Pieces whose successors reach the root are not descended into: they
      // arrived, so no manipulation blocked them. Boundaries come only from
      // pieces that died on the way.
      bool any_survives_root = false;
      for (size_t p = 0; p < n_pieces && td_limit.ok(); ++p) {
        if (has_traced(tree_->root(), p)) {
          any_survives_root = true;
          continue;
        }
        descend(tree_->root(), p);
      }
      if (!td_limit.ok()) {
        if (!IsResourceLimit(td_limit)) return td_limit;
        mark_partial(td_limit);
      }
      // The piece-independent empty-output rule (no lineage cost).
      for (const OperatorNode* m : tree_->bottom_up()) {
        if (m->is_leaf()) continue;
        bool any_input = false;
        for (const auto& child : m->children) {
          any_input =
              any_input || !evaluator->TryGetOutput(child.get())->empty();
        }
        if (evaluator->TryGetOutput(m)->empty() && any_input) {
          candidates.push_back(m);
        }
      }
      // Earliest candidate in TabQ order = the bottom-up answer.
      std::unordered_map<const OperatorNode*, size_t> tabq_pos;
      for (size_t i = 0; i < tree_->bottom_up().size(); ++i) {
        tabq_pos[tree_->bottom_up()[i]] = i;
      }
      for (const OperatorNode* c : candidates) {
        if (frontier == nullptr || tabq_pos[c] < tabq_pos[frontier]) {
          frontier = c;
        }
      }
      if (frontier == nullptr && any_survives_root) {
        part.answer_deemed_present = true;
      }
    }

    if (frontier != nullptr) {
      part.frontier_picky = frontier;
      bool already = false;
      for (const OperatorNode* node : result.answer) {
        if (node == frontier) already = true;
      }
      if (!already) result.answer.push_back(frontier);
    }
    result.per_ctuple.push_back(std::move(part));
  }
  return result;
}

}  // namespace ned
